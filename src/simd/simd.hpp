#pragma once
// Umbrella header for the mf::simd subsystem.
//
//   pack.hpp     Pack<T, W> vector value type (scalar fallback + SSE2/AVX2/
//                AVX-512/NEON specializations); opts into mf::FloatingPoint
//                so the FPAN networks instantiate over packs unchanged.
//   backend.hpp  Backend enum, CPUID detection, MF_SIMD_BACKEND override,
//                active_backend()/set_backend().
//   kernels.hpp  Width-templated pack FPAN kernels (planar and AoS) with
//                explicit scalar tail loops.
//   dispatch.hpp Runtime dispatch from the active backend to the kernels.
//   tiling.hpp   Blocked/tiled OpenMP-parallel GEMM driver on pack kernels.

#include "backend.hpp"
#include "dispatch.hpp"
#include "kernels.hpp"
#include "pack.hpp"
#include "tiling.hpp"
