#pragma once
// Runtime backend selection for the explicit-SIMD FPAN path.
//
// A Backend names an ISA level the pack kernels can target. At startup the
// dispatcher picks the *widest* backend that is both (a) compiled into this
// binary (pack.hpp's MF_SIMD_HAVE_* macros -- we never jump to intrinsics
// that were not emitted) and (b) reported by the CPU at runtime
// (__builtin_cpu_supports on x86). The choice is overridable:
//
//   * environment: MF_SIMD_BACKEND=scalar|sse2|avx2|avx512|neon, read once
//     on first use -- the reproducibility knob documented in README.md;
//   * programmatically: set_backend(), used by tests and benchmarks to
//     measure every available backend in one process.
//
// Selecting a narrower backend than the hardware supports is always safe;
// selecting an unavailable one fails (set_backend returns false, the env
// override falls back to auto-detection with a one-line stderr warning).
// Whatever backend runs, results are bit-identical: every backend executes
// the same gate sequence per lane (see pack.hpp).

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>

#include "../telemetry/events.hpp"
#include "pack.hpp"

namespace mf::simd {

enum class Backend : int { scalar = 0, sse2 = 1, avx2 = 2, avx512 = 3, neon = 4 };

[[nodiscard]] constexpr const char* backend_name(Backend b) noexcept {
    switch (b) {
        case Backend::sse2: return "sse2";
        case Backend::avx2: return "avx2";
        case Backend::avx512: return "avx512";
        case Backend::neon: return "neon";
        default: return "scalar";
    }
}

/// Natural pack width of backend `b` for base type T (lanes per register).
template <std::floating_point T>
[[nodiscard]] constexpr int backend_width(Backend b) noexcept {
    constexpr int s = static_cast<int>(sizeof(T));
    switch (b) {
        case Backend::sse2:
        case Backend::neon: return 16 / s;
        case Backend::avx2: return 32 / s;
        case Backend::avx512: return 64 / s;
        default: return 1;
    }
}

/// Were this backend's intrinsic specializations compiled into the binary?
[[nodiscard]] constexpr bool backend_compiled(Backend b) noexcept {
    switch (b) {
        case Backend::scalar: return true;
        case Backend::sse2: return MF_SIMD_HAVE_SSE2 != 0;
        case Backend::avx2: return MF_SIMD_HAVE_AVX2 != 0;
        case Backend::avx512: return MF_SIMD_HAVE_AVX512 != 0;
        case Backend::neon: return MF_SIMD_HAVE_NEON != 0;
    }
    return false;
}

/// Does the CPU we are running on support this backend's instructions?
[[nodiscard]] inline bool backend_cpu_supports(Backend b) noexcept {
    if (b == Backend::scalar) return true;
#if defined(MF_SIMD_X86) && (defined(__GNUC__) || defined(__clang__))
    switch (b) {
        case Backend::sse2: return __builtin_cpu_supports("sse2") != 0;
        case Backend::avx2:
            return __builtin_cpu_supports("avx2") != 0 &&
                   __builtin_cpu_supports("fma") != 0;
        case Backend::avx512: return __builtin_cpu_supports("avx512f") != 0;
        default: return false;
    }
#elif MF_SIMD_HAVE_NEON
    return b == Backend::neon;  // baseline ISA on aarch64, no runtime probe
#else
    return false;
#endif
}

/// Usable = compiled in AND supported by the running CPU.
[[nodiscard]] inline bool backend_available(Backend b) noexcept {
    return backend_compiled(b) && backend_cpu_supports(b);
}

[[nodiscard]] inline bool parse_backend(std::string_view name, Backend* out) noexcept {
    for (Backend b : {Backend::scalar, Backend::sse2, Backend::avx2,
                      Backend::avx512, Backend::neon}) {
        if (name == backend_name(b)) {
            *out = b;
            return true;
        }
    }
    return false;
}

namespace detail {

/// One selection/override event per decision, so an exposition shows which
/// backend this process actually chose and whether an operator forced it.
inline void note_selected([[maybe_unused]] Backend b,
                          [[maybe_unused]] const char* source) noexcept {
    MF_TELEM_COUNT_DYN(std::string("mf_simd_backend_selected_total{backend=\"") +
                           backend_name(b) + "\",source=\"" + source + "\"}",
                       1);
}

/// Widest available backend, honoring a MF_SIMD_BACKEND env override.
inline Backend detect_backend() noexcept {
    Backend best = Backend::scalar;
    for (Backend b : {Backend::neon, Backend::sse2, Backend::avx2, Backend::avx512}) {
        if (backend_available(b)) best = b;
    }
    if (const char* env = std::getenv("MF_SIMD_BACKEND")) {
        Backend forced;
        if (parse_backend(env, &forced) && backend_available(forced)) {
            note_selected(forced, "env");
            return forced;
        }
        std::fprintf(stderr,
                     "mf::simd: MF_SIMD_BACKEND=%s not available, using %s\n",
                     env, backend_name(best));
        MF_TELEM_COUNT_DYN("mf_simd_backend_override_rejected_total", 1);
    }
    note_selected(best, "auto");
    return best;
}

inline std::atomic<Backend>& active_backend_slot() noexcept {
    static std::atomic<Backend> slot{detect_backend()};
    return slot;
}

}  // namespace detail

/// The backend the dispatched kernels currently run on.
[[nodiscard]] inline Backend active_backend() noexcept {
    return detail::active_backend_slot().load(std::memory_order_relaxed);
}

/// Switch the dispatched kernels to `b`. Fails (returns false, no change)
/// if `b` is not compiled in or not supported by this CPU.
inline bool set_backend(Backend b) noexcept {
    if (!backend_available(b)) return false;
    detail::active_backend_slot().store(b, std::memory_order_relaxed);
    detail::note_selected(b, "set_backend");
    return true;
}

inline bool set_backend(std::string_view name) noexcept {
    Backend b;
    return parse_backend(name, &b) && set_backend(b);
}

}  // namespace mf::simd
