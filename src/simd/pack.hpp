#pragma once
// Pack<T, W>: a fixed-width SIMD vector of W lanes of the IEEE scalar T.
//
// This is the value type the explicit-SIMD FPAN path is built on. A Pack
// behaves exactly like a scalar under +, -, unary -, * and fma() -- each lane
// performs the identical correctly rounded IEEE operation -- so the existing
// accumulation networks in mf/add.hpp and mf/mul.hpp instantiate over packs
// unchanged (Pack opts into the mf::FloatingPoint concept below) and produce
// bit-for-bit the same limbs per lane as the scalar kernels. That is the
// whole correctness story: no separate "vectorized algorithm" exists to
// diverge from the scalar one.
//
// The primary template is a portable scalar-loop fallback that works for any
// (T, W) and is what the compiler sees when no SIMD ISA is enabled (or when
// MF_SIMD_FORCE_SCALAR is defined). Specializations map the natural widths
// onto SSE2, AVX/AVX2, AVX-512 and NEON intrinsics when the translation unit
// is compiled for those ISAs. TwoProd requires a *fused* multiply-add: every
// specialization uses the hardware FMA instruction when the ISA provides one
// and falls back to the (correct, slower) per-lane std::fma otherwise.

#include <cmath>
#include <concepts>

#include "../mf/eft.hpp"

#if !defined(MF_SIMD_FORCE_SCALAR)
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#include <immintrin.h>
#define MF_SIMD_X86 1
#elif defined(__ARM_NEON) || defined(__aarch64__)
#include <arm_neon.h>
#define MF_SIMD_ARM 1
#endif
#endif

// Which intrinsic specializations exist in this translation unit. These feed
// the backend_compiled() predicate in backend.hpp; runtime dispatch never
// routes to a backend whose specializations were not compiled in.
#if defined(MF_SIMD_X86) && defined(__SSE2__)
#define MF_SIMD_HAVE_SSE2 1
#else
#define MF_SIMD_HAVE_SSE2 0
#endif
#if defined(MF_SIMD_X86) && defined(__AVX__) && defined(__AVX2__)
#define MF_SIMD_HAVE_AVX2 1
#else
#define MF_SIMD_HAVE_AVX2 0
#endif
#if defined(MF_SIMD_X86) && defined(__AVX512F__)
#define MF_SIMD_HAVE_AVX512 1
#else
#define MF_SIMD_HAVE_AVX512 0
#endif
#if defined(MF_SIMD_ARM) && defined(__aarch64__)
#define MF_SIMD_HAVE_NEON 1
#else
#define MF_SIMD_HAVE_NEON 0
#endif

namespace mf::simd {

/// Portable scalar-loop pack: correct for any width, on any target. The
/// small fixed-trip loops fully unroll; with vector ISAs disabled this is
/// also the reference implementation the intrinsic specializations must
/// agree with bit-for-bit (tests/simd_pack_test.cpp).
template <std::floating_point T, int W>
    requires(W >= 1)
struct Pack {
    using value_type = T;
    static constexpr int width = W;

    T lane[W];

    MF_ALWAYS_INLINE constexpr Pack() noexcept : lane{} {}

    [[nodiscard]] static MF_ALWAYS_INLINE Pack broadcast(T v) noexcept {
        Pack r;
        for (int i = 0; i < W; ++i) r.lane[i] = v;
        return r;
    }
    /// Unaligned load of W consecutive lanes.
    [[nodiscard]] static MF_ALWAYS_INLINE Pack load(const T* p) noexcept {
        Pack r;
        for (int i = 0; i < W; ++i) r.lane[i] = p[i];
        return r;
    }
    MF_ALWAYS_INLINE void store(T* p) const noexcept {
        for (int i = 0; i < W; ++i) p[i] = lane[i];
    }
    [[nodiscard]] MF_ALWAYS_INLINE T operator[](int i) const noexcept { return lane[i]; }

    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator+(Pack a, Pack b) noexcept {
        Pack r;
        for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] + b.lane[i];
        return r;
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator-(Pack a, Pack b) noexcept {
        Pack r;
        for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] - b.lane[i];
        return r;
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator*(Pack a, Pack b) noexcept {
        Pack r;
        for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] * b.lane[i];
        return r;
    }
    /// Lane-wise IEEE negation (sign-bit flip, exact for -0.0 and NaN too).
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator-(Pack a) noexcept {
        Pack r;
        for (int i = 0; i < W; ++i) r.lane[i] = -a.lane[i];
        return r;
    }
    /// Fused multiply-add, correctly rounded per lane (required by TwoProd).
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack fma(Pack a, Pack b, Pack c) noexcept {
        Pack r;
        for (int i = 0; i < W; ++i) r.lane[i] = std::fma(a.lane[i], b.lane[i], c.lane[i]);
        return r;
    }
};

// ---------------------------------------------------------------------------
// x86 specializations. Each one is the same five operations + load/store on
// the ISA's natural register; fma() uses the fused instruction when compiled
// with FMA support and per-lane std::fma otherwise (SSE2-era parts).
// ---------------------------------------------------------------------------

#if MF_SIMD_HAVE_SSE2

template <>
struct Pack<float, 4> {
    using value_type = float;
    static constexpr int width = 4;
    __m128 v;
    MF_ALWAYS_INLINE Pack() noexcept : v(_mm_setzero_ps()) {}
    MF_ALWAYS_INLINE explicit Pack(__m128 x) noexcept : v(x) {}
    [[nodiscard]] static MF_ALWAYS_INLINE Pack broadcast(float x) noexcept {
        return Pack(_mm_set1_ps(x));
    }
    [[nodiscard]] static MF_ALWAYS_INLINE Pack load(const float* p) noexcept {
        return Pack(_mm_loadu_ps(p));
    }
    MF_ALWAYS_INLINE void store(float* p) const noexcept { _mm_storeu_ps(p, v); }
    [[nodiscard]] MF_ALWAYS_INLINE float operator[](int i) const noexcept {
        float t[4];
        _mm_storeu_ps(t, v);
        return t[i];
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator+(Pack a, Pack b) noexcept {
        return Pack(_mm_add_ps(a.v, b.v));
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator-(Pack a, Pack b) noexcept {
        return Pack(_mm_sub_ps(a.v, b.v));
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator*(Pack a, Pack b) noexcept {
        return Pack(_mm_mul_ps(a.v, b.v));
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator-(Pack a) noexcept {
        return Pack(_mm_xor_ps(a.v, _mm_set1_ps(-0.0f)));
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack fma(Pack a, Pack b, Pack c) noexcept {
#if defined(__FMA__)
        return Pack(_mm_fmadd_ps(a.v, b.v, c.v));
#else
        float x[4], y[4], z[4];
        a.store(x);
        b.store(y);
        c.store(z);
        for (int i = 0; i < 4; ++i) x[i] = std::fma(x[i], y[i], z[i]);
        return load(x);
#endif
    }
};

template <>
struct Pack<double, 2> {
    using value_type = double;
    static constexpr int width = 2;
    __m128d v;
    MF_ALWAYS_INLINE Pack() noexcept : v(_mm_setzero_pd()) {}
    MF_ALWAYS_INLINE explicit Pack(__m128d x) noexcept : v(x) {}
    [[nodiscard]] static MF_ALWAYS_INLINE Pack broadcast(double x) noexcept {
        return Pack(_mm_set1_pd(x));
    }
    [[nodiscard]] static MF_ALWAYS_INLINE Pack load(const double* p) noexcept {
        return Pack(_mm_loadu_pd(p));
    }
    MF_ALWAYS_INLINE void store(double* p) const noexcept { _mm_storeu_pd(p, v); }
    [[nodiscard]] MF_ALWAYS_INLINE double operator[](int i) const noexcept {
        double t[2];
        _mm_storeu_pd(t, v);
        return t[i];
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator+(Pack a, Pack b) noexcept {
        return Pack(_mm_add_pd(a.v, b.v));
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator-(Pack a, Pack b) noexcept {
        return Pack(_mm_sub_pd(a.v, b.v));
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator*(Pack a, Pack b) noexcept {
        return Pack(_mm_mul_pd(a.v, b.v));
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator-(Pack a) noexcept {
        return Pack(_mm_xor_pd(a.v, _mm_set1_pd(-0.0)));
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack fma(Pack a, Pack b, Pack c) noexcept {
#if defined(__FMA__)
        return Pack(_mm_fmadd_pd(a.v, b.v, c.v));
#else
        double x[2], y[2], z[2];
        a.store(x);
        b.store(y);
        c.store(z);
        for (int i = 0; i < 2; ++i) x[i] = std::fma(x[i], y[i], z[i]);
        return load(x);
#endif
    }
};

#endif  // MF_SIMD_HAVE_SSE2

#if MF_SIMD_HAVE_AVX2

template <>
struct Pack<float, 8> {
    using value_type = float;
    static constexpr int width = 8;
    __m256 v;
    MF_ALWAYS_INLINE Pack() noexcept : v(_mm256_setzero_ps()) {}
    MF_ALWAYS_INLINE explicit Pack(__m256 x) noexcept : v(x) {}
    [[nodiscard]] static MF_ALWAYS_INLINE Pack broadcast(float x) noexcept {
        return Pack(_mm256_set1_ps(x));
    }
    [[nodiscard]] static MF_ALWAYS_INLINE Pack load(const float* p) noexcept {
        return Pack(_mm256_loadu_ps(p));
    }
    MF_ALWAYS_INLINE void store(float* p) const noexcept { _mm256_storeu_ps(p, v); }
    [[nodiscard]] MF_ALWAYS_INLINE float operator[](int i) const noexcept {
        float t[8];
        _mm256_storeu_ps(t, v);
        return t[i];
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator+(Pack a, Pack b) noexcept {
        return Pack(_mm256_add_ps(a.v, b.v));
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator-(Pack a, Pack b) noexcept {
        return Pack(_mm256_sub_ps(a.v, b.v));
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator*(Pack a, Pack b) noexcept {
        return Pack(_mm256_mul_ps(a.v, b.v));
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator-(Pack a) noexcept {
        return Pack(_mm256_xor_ps(a.v, _mm256_set1_ps(-0.0f)));
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack fma(Pack a, Pack b, Pack c) noexcept {
#if defined(__FMA__)
        return Pack(_mm256_fmadd_ps(a.v, b.v, c.v));
#else
        float x[8], y[8], z[8];
        a.store(x);
        b.store(y);
        c.store(z);
        for (int i = 0; i < 8; ++i) x[i] = std::fma(x[i], y[i], z[i]);
        return load(x);
#endif
    }
};

template <>
struct Pack<double, 4> {
    using value_type = double;
    static constexpr int width = 4;
    __m256d v;
    MF_ALWAYS_INLINE Pack() noexcept : v(_mm256_setzero_pd()) {}
    MF_ALWAYS_INLINE explicit Pack(__m256d x) noexcept : v(x) {}
    [[nodiscard]] static MF_ALWAYS_INLINE Pack broadcast(double x) noexcept {
        return Pack(_mm256_set1_pd(x));
    }
    [[nodiscard]] static MF_ALWAYS_INLINE Pack load(const double* p) noexcept {
        return Pack(_mm256_loadu_pd(p));
    }
    MF_ALWAYS_INLINE void store(double* p) const noexcept { _mm256_storeu_pd(p, v); }
    [[nodiscard]] MF_ALWAYS_INLINE double operator[](int i) const noexcept {
        double t[4];
        _mm256_storeu_pd(t, v);
        return t[i];
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator+(Pack a, Pack b) noexcept {
        return Pack(_mm256_add_pd(a.v, b.v));
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator-(Pack a, Pack b) noexcept {
        return Pack(_mm256_sub_pd(a.v, b.v));
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator*(Pack a, Pack b) noexcept {
        return Pack(_mm256_mul_pd(a.v, b.v));
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator-(Pack a) noexcept {
        return Pack(_mm256_xor_pd(a.v, _mm256_set1_pd(-0.0)));
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack fma(Pack a, Pack b, Pack c) noexcept {
#if defined(__FMA__)
        return Pack(_mm256_fmadd_pd(a.v, b.v, c.v));
#else
        double x[4], y[4], z[4];
        a.store(x);
        b.store(y);
        c.store(z);
        for (int i = 0; i < 4; ++i) x[i] = std::fma(x[i], y[i], z[i]);
        return load(x);
#endif
    }
};

#endif  // MF_SIMD_HAVE_AVX2

#if MF_SIMD_HAVE_AVX512

template <>
struct Pack<float, 16> {
    using value_type = float;
    static constexpr int width = 16;
    __m512 v;
    MF_ALWAYS_INLINE Pack() noexcept : v(_mm512_setzero_ps()) {}
    MF_ALWAYS_INLINE explicit Pack(__m512 x) noexcept : v(x) {}
    [[nodiscard]] static MF_ALWAYS_INLINE Pack broadcast(float x) noexcept {
        return Pack(_mm512_set1_ps(x));
    }
    [[nodiscard]] static MF_ALWAYS_INLINE Pack load(const float* p) noexcept {
        return Pack(_mm512_loadu_ps(p));
    }
    MF_ALWAYS_INLINE void store(float* p) const noexcept { _mm512_storeu_ps(p, v); }
    [[nodiscard]] MF_ALWAYS_INLINE float operator[](int i) const noexcept {
        float t[16];
        _mm512_storeu_ps(t, v);
        return t[i];
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator+(Pack a, Pack b) noexcept {
        return Pack(_mm512_add_ps(a.v, b.v));
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator-(Pack a, Pack b) noexcept {
        return Pack(_mm512_sub_ps(a.v, b.v));
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator*(Pack a, Pack b) noexcept {
        return Pack(_mm512_mul_ps(a.v, b.v));
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator-(Pack a) noexcept {
        return Pack(_mm512_castsi512_ps(_mm512_xor_si512(
            _mm512_castps_si512(a.v), _mm512_castps_si512(_mm512_set1_ps(-0.0f)))));
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack fma(Pack a, Pack b, Pack c) noexcept {
        return Pack(_mm512_fmadd_ps(a.v, b.v, c.v));
    }
};

template <>
struct Pack<double, 8> {
    using value_type = double;
    static constexpr int width = 8;
    __m512d v;
    MF_ALWAYS_INLINE Pack() noexcept : v(_mm512_setzero_pd()) {}
    MF_ALWAYS_INLINE explicit Pack(__m512d x) noexcept : v(x) {}
    [[nodiscard]] static MF_ALWAYS_INLINE Pack broadcast(double x) noexcept {
        return Pack(_mm512_set1_pd(x));
    }
    [[nodiscard]] static MF_ALWAYS_INLINE Pack load(const double* p) noexcept {
        return Pack(_mm512_loadu_pd(p));
    }
    MF_ALWAYS_INLINE void store(double* p) const noexcept { _mm512_storeu_pd(p, v); }
    [[nodiscard]] MF_ALWAYS_INLINE double operator[](int i) const noexcept {
        double t[8];
        _mm512_storeu_pd(t, v);
        return t[i];
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator+(Pack a, Pack b) noexcept {
        return Pack(_mm512_add_pd(a.v, b.v));
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator-(Pack a, Pack b) noexcept {
        return Pack(_mm512_sub_pd(a.v, b.v));
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator*(Pack a, Pack b) noexcept {
        return Pack(_mm512_mul_pd(a.v, b.v));
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator-(Pack a) noexcept {
        return Pack(_mm512_castsi512_pd(_mm512_xor_si512(
            _mm512_castpd_si512(a.v), _mm512_castpd_si512(_mm512_set1_pd(-0.0)))));
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack fma(Pack a, Pack b, Pack c) noexcept {
        return Pack(_mm512_fmadd_pd(a.v, b.v, c.v));
    }
};

#endif  // MF_SIMD_HAVE_AVX512

#if MF_SIMD_HAVE_NEON

template <>
struct Pack<float, 4> {
    using value_type = float;
    static constexpr int width = 4;
    float32x4_t v;
    MF_ALWAYS_INLINE Pack() noexcept : v(vdupq_n_f32(0.0f)) {}
    MF_ALWAYS_INLINE explicit Pack(float32x4_t x) noexcept : v(x) {}
    [[nodiscard]] static MF_ALWAYS_INLINE Pack broadcast(float x) noexcept {
        return Pack(vdupq_n_f32(x));
    }
    [[nodiscard]] static MF_ALWAYS_INLINE Pack load(const float* p) noexcept {
        return Pack(vld1q_f32(p));
    }
    MF_ALWAYS_INLINE void store(float* p) const noexcept { vst1q_f32(p, v); }
    [[nodiscard]] MF_ALWAYS_INLINE float operator[](int i) const noexcept {
        float t[4];
        vst1q_f32(t, v);
        return t[i];
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator+(Pack a, Pack b) noexcept {
        return Pack(vaddq_f32(a.v, b.v));
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator-(Pack a, Pack b) noexcept {
        return Pack(vsubq_f32(a.v, b.v));
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator*(Pack a, Pack b) noexcept {
        return Pack(vmulq_f32(a.v, b.v));
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator-(Pack a) noexcept {
        return Pack(vnegq_f32(a.v));
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack fma(Pack a, Pack b, Pack c) noexcept {
        return Pack(vfmaq_f32(c.v, a.v, b.v));  // c + a*b, fused
    }
};

template <>
struct Pack<double, 2> {
    using value_type = double;
    static constexpr int width = 2;
    float64x2_t v;
    MF_ALWAYS_INLINE Pack() noexcept : v(vdupq_n_f64(0.0)) {}
    MF_ALWAYS_INLINE explicit Pack(float64x2_t x) noexcept : v(x) {}
    [[nodiscard]] static MF_ALWAYS_INLINE Pack broadcast(double x) noexcept {
        return Pack(vdupq_n_f64(x));
    }
    [[nodiscard]] static MF_ALWAYS_INLINE Pack load(const double* p) noexcept {
        return Pack(vld1q_f64(p));
    }
    MF_ALWAYS_INLINE void store(double* p) const noexcept { vst1q_f64(p, v); }
    [[nodiscard]] MF_ALWAYS_INLINE double operator[](int i) const noexcept {
        double t[2];
        vst1q_f64(t, v);
        return t[i];
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator+(Pack a, Pack b) noexcept {
        return Pack(vaddq_f64(a.v, b.v));
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator-(Pack a, Pack b) noexcept {
        return Pack(vsubq_f64(a.v, b.v));
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator*(Pack a, Pack b) noexcept {
        return Pack(vmulq_f64(a.v, b.v));
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack operator-(Pack a) noexcept {
        return Pack(vnegq_f64(a.v));
    }
    [[nodiscard]] friend MF_ALWAYS_INLINE Pack fma(Pack a, Pack b, Pack c) noexcept {
        return Pack(vfmaq_f64(c.v, a.v, b.v));  // c + a*b, fused
    }
};

#endif  // MF_SIMD_HAVE_NEON

}  // namespace mf::simd

namespace mf {

/// Packs are valid FPAN wire values: every gate in eft.hpp applies the
/// identical IEEE operation to each lane independently.
template <std::floating_point T, int W>
inline constexpr bool is_fpan_value_v<simd::Pack<T, W>> = true;

}  // namespace mf
