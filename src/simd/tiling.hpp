#pragma once
// Blocked/tiled GEMM driver on top of the pack kernels: the multicore x SIMD
// combination (cf. Verschelde, "Multiword Arithmetic and Parallel Computing")
// layered over the planar layout.
//
// C += A B with A (n x k), B (k x m), C (n x m), all planar row-major views.
// The iteration space is partitioned into (ti x tj) output tiles with the
// k dimension blocked by tk; within a tile the update is the ikj-order
// fused multiply-add sweep c[i, j0:j1] += a[i,kk] * b[kk, j0:j1], executed
// by the dispatched pack fma_range.
//
// Determinism: for every output element c[i, j] the kk updates execute in
// ascending order exactly as in planar::gemm (tiles only re-group the i/j
// dimensions and split kk into ascending blocks), and OpenMP threads
// partition whole row-tiles, so each c element is owned by one thread. The
// tiled result is therefore bit-identical to planar::gemm, threaded or not
// (tests/simd_kernel_test.cpp asserts this).
//
// Degenerate shapes are no-ops: any zero dimension returns immediately, and
// tile dims larger than the matrix clamp to a single tile (the loop bounds
// take min() everywhere), so there is no UB to hit
// (tests/blas_views_test.cpp regression-tests both).
//
// Nested parallelism: the omp parallel-for is suppressed when already inside
// a parallel region (same guard discipline as mf::blas; see kernels.hpp
// there), so composing this driver with parallel callers cannot oversubscribe.
//
// For large problems prefer mf::blas::gemm_packed (blas/engine/), which adds
// BLIS-style packing and a register-blocked micro-kernel on top of the same
// determinism contract.

#include <cstddef>

#include "../blas/planar.hpp"
#include "../telemetry/events.hpp"
#include "dispatch.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace mf::simd {

namespace detail {
inline bool in_parallel() noexcept {
#if defined(_OPENMP)
    return omp_in_parallel() != 0;
#else
    return false;
#endif
}
}  // namespace detail

/// Tile shape: rows x columns of one C tile, and the k-block length.
/// Defaults keep one tile's working set (a-block + b-block + c-tile) inside
/// a few hundred KiB of L2 for double x N<=4.
struct TileShape {
    std::size_t ti = 32;
    std::size_t tj = 256;
    std::size_t tk = 64;
};

/// C += A B, planar views, tiled, OpenMP-parallel over row-tiles.
template <FloatingPoint T, int N>
void gemm_tiled(planar::ConstMatrixView<T, N> a, planar::ConstMatrixView<T, N> b,
                planar::MatrixView<T, N> c, TileShape tile = {}) {
    const std::size_t n = c.rows;
    const std::size_t m = c.cols;
    const std::size_t k = a.cols;
    if (n == 0 || m == 0 || k == 0) return;  // degenerate: nothing to update
    const std::size_t ti = tile.ti ? tile.ti : 1;
    const std::size_t tj = tile.tj ? tile.tj : 1;
    const std::size_t tk = tile.tk ? tile.tk : 1;
    const std::size_t n_itiles = (n + ti - 1) / ti;
    // Backend dispatch hoisted out of the tile loops (one resolve per call,
    // not one per fma sweep).
    with_active_width<T>([&](auto w) {
#pragma omp parallel for schedule(static) \
    if (n_itiles > 1 && !mf::simd::detail::in_parallel())
        for (std::size_t it = 0; it < n_itiles; ++it) {
            // One span per row-tile per worker thread: the chrome trace of
            // these is the GEMM's load-imbalance picture, and the latency
            // histogram its tile-cost distribution. Telemetry-off builds
            // compile both lines away.
            MF_TELEM_SPAN_TIMED("gemm_row_tile", "mf_gemm_tile_ns");
            MF_TELEM_COUNT("mf_gemm_tiles_total");
            const std::size_t i1 = (it * ti + ti < n) ? it * ti + ti : n;
            for (std::size_t j0 = 0; j0 < m; j0 += tj) {
                const std::size_t j1 = (j0 + tj < m) ? j0 + tj : m;
                for (std::size_t k0 = 0; k0 < k; k0 += tk) {
                    const std::size_t k1 = (k0 + tk < k) ? k0 + tk : k;
                    for (std::size_t i = it * ti; i < i1; ++i) {
                        T* crow[N];
                        for (int p = 0; p < N; ++p) crow[p] = c.row(p, i);
                        for (std::size_t kk = k0; kk < k1; ++kk) {
                            MultiFloat<T, N> aik;
                            for (int p = 0; p < N; ++p) aik.limb[p] = a.row(p, i)[kk];
                            const T* brow[N];
                            for (int p = 0; p < N; ++p) brow[p] = b.row(p, kk);
                            kernels::fma_range<T, N, w()>(aik, brow, crow, j0, j1);
                        }
                    }
                }
            }
        }
    });
}

/// All-mutable-view overload: template deduction cannot cross the
/// MatrixView -> ConstMatrixView conversion, so the common case of freshly
/// built (mutable) views gets its own forwarder.
template <FloatingPoint T, int N>
void gemm_tiled(planar::MatrixView<T, N> a, planar::MatrixView<T, N> b,
                planar::MatrixView<T, N> c, TileShape tile = {}) {
    gemm_tiled<T, N>(planar::ConstMatrixView<T, N>(a),
                     planar::ConstMatrixView<T, N>(b), c, tile);
}

/// Deprecated pre-view signature: positional sizes over whole planar Vectors.
template <FloatingPoint T, int N>
[[deprecated("use gemm_tiled(planar::ConstMatrixView, planar::ConstMatrixView, planar::MatrixView)")]]
void gemm_tiled(const planar::Vector<T, N>& a, const planar::Vector<T, N>& b,
                planar::Vector<T, N>& c, std::size_t n, std::size_t k,
                std::size_t m, TileShape tile = {}) {
    gemm_tiled<T, N>(planar::ConstMatrixView<T, N>(a, n, k),
                     planar::ConstMatrixView<T, N>(b, k, m),
                     planar::MatrixView<T, N>(c, n, m), tile);
}

}  // namespace mf::simd
