#pragma once
// Runtime dispatch from the active Backend to width-templated pack kernels.
//
// The switch compiles one instantiation per backend that pack.hpp compiled
// intrinsics for (guarded by the same MF_SIMD_HAVE_* macros), plus the
// always-present scalar fallback, and jumps to the one active_backend()
// names. The branch is per-*range*, not per-element: each callee is a long
// straight-line pack loop, so dispatch cost is noise.

#include <cstddef>
#include <type_traits>
#include <utility>

#include "../telemetry/events.hpp"
#include "backend.hpp"
#include "kernels.hpp"

namespace mf::simd {

namespace detail {

#if MF_TELEMETRY_ENABLED
/// One dispatch-decision event per dispatched *range* (not per element).
/// All five series are pre-registered so the exposition always shows the
/// roads not taken; ids resolve once, the steady-state cost is one
/// thread-local increment per kernel call.
inline void note_dispatch(Backend b) {
    static const std::array<telemetry::CounterId, 5> ids = [] {
        std::array<telemetry::CounterId, 5> a{};
        for (int i = 0; i < 5; ++i) {
            a[static_cast<std::size_t>(i)] = telemetry::Registry::instance().counter(
                std::string("mf_simd_dispatch_total{backend=\"") +
                backend_name(static_cast<Backend>(i)) + "\"}");
        }
        return a;
    }();
    telemetry::Registry::instance().add(ids[static_cast<std::size_t>(b)]);
}
#endif

/// Invoke f(integral_constant<int, W>) with the active backend's pack width
/// for base type T. Only widths whose intrinsic specializations are compiled
/// in are reachable; anything else falls back to width 1 (scalar packs).
template <std::floating_point T, typename F>
MF_ALWAYS_INLINE decltype(auto) with_pack_width(F&& f) {
    [[maybe_unused]] constexpr int S = static_cast<int>(sizeof(T));
    const Backend active = active_backend();
#if MF_TELEMETRY_ENABLED
    note_dispatch(active);
#endif
    switch (active) {
#if MF_SIMD_HAVE_AVX512
        case Backend::avx512:
            return std::forward<F>(f)(std::integral_constant<int, 64 / S>{});
#endif
#if MF_SIMD_HAVE_AVX2
        case Backend::avx2:
            return std::forward<F>(f)(std::integral_constant<int, 32 / S>{});
#endif
#if MF_SIMD_HAVE_SSE2
        case Backend::sse2:
            return std::forward<F>(f)(std::integral_constant<int, 16 / S>{});
#endif
#if MF_SIMD_HAVE_NEON
        case Backend::neon:
            return std::forward<F>(f)(std::integral_constant<int, 16 / S>{});
#endif
        default:
            return std::forward<F>(f)(std::integral_constant<int, 1>{});
    }
}

}  // namespace detail

/// Pack width the dispatched kernels currently run at for base type T.
template <std::floating_point T>
[[nodiscard]] inline int active_width() noexcept {
    return detail::with_pack_width<T>([](auto w) { return w(); });
}

/// Resolve the active pack width ONCE and run f(integral_constant<int, W>).
/// Callers issuing many short kernel calls (e.g. a GEMM's per-row fma
/// sweeps) hoist the backend switch out of their loop nest with this and
/// call the width-templated kernels:: entry points directly inside f.
template <std::floating_point T, typename F>
MF_ALWAYS_INLINE decltype(auto) with_active_width(F&& f) {
    return detail::with_pack_width<T>(std::forward<F>(f));
}

/// Planar z = x + y elementwise on the active backend.
template <std::floating_point T, int N>
void add_range(const T* const* xp, const T* const* yp, T* const* zp,
               std::size_t i0, std::size_t i1) {
    detail::with_pack_width<T>([&](auto w) {
        kernels::add_range<T, N, w()>(xp, yp, zp, i0, i1);
    });
}

/// Planar y = alpha * x + y elementwise on the active backend.
template <std::floating_point T, int N>
void fma_range(const MultiFloat<T, N>& alpha, const T* const* xp, T* const* yp,
               std::size_t i0, std::size_t i1) {
    detail::with_pack_width<T>([&](auto w) {
        kernels::fma_range<T, N, w()>(alpha, xp, yp, i0, i1);
    });
}

/// Planar <x, y> on the active backend.
template <std::floating_point T, int N>
[[nodiscard]] MultiFloat<T, N> dot(const T* const* xp, const T* const* yp,
                                   std::size_t n) {
    return detail::with_pack_width<T>([&](auto w) {
        return kernels::dot<T, N, w()>(xp, yp, n);
    });
}

/// AoS y = alpha * x + y on the active backend.
template <std::floating_point T, int N>
void axpy_aos(const MultiFloat<T, N>& alpha, const MultiFloat<T, N>* x,
              MultiFloat<T, N>* y, std::size_t n) {
    detail::with_pack_width<T>([&](auto w) {
        kernels::axpy_aos<T, N, w()>(alpha, x, y, n);
    });
}

/// AoS <x, y> on the active backend.
template <std::floating_point T, int N>
[[nodiscard]] MultiFloat<T, N> dot_aos(const MultiFloat<T, N>* x,
                                       const MultiFloat<T, N>* y, std::size_t n) {
    return detail::with_pack_width<T>([&](auto w) {
        return kernels::dot_aos<T, N, w()>(x, y, n);
    });
}

}  // namespace mf::simd
