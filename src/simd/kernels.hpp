#pragma once
// Pack-level FPAN kernels: the scalar accumulation networks of mf/add.hpp
// and mf/mul.hpp instantiated over MultiFloat<Pack<T, W>, N> -- W elements
// march through the SAME gate sequence in lock-step, one lane each. Every
// kernel processes the bulk in W-wide steps and finishes with an explicit
// scalar tail loop running the ordinary MultiFloat<T, N> network, so the
// result is bit-identical to the scalar kernel for every element, including
// the tail (tests/simd_kernel_test.cpp).
//
// Two memory layouts are served:
//  * planar (SoA) raw plane pointers, as used by mf::planar::Vector -- packs
//    load W consecutive elements of one limb with a single unaligned load;
//  * AoS spans of MultiFloat<T, N>, as used by mf::blas -- limbs are
//    interleaved, so packs are filled through a small per-lane transpose
//    buffer. The networks cost dozens to hundreds of flops per element, so
//    the transpose overhead amortizes and the SIMD win survives.

#include <cstddef>

#include "../mf/add.hpp"
#include "../mf/mul.hpp"
#include "../telemetry/events.hpp"
#include "pack.hpp"

namespace mf::simd::kernels {

/// Load lanes [i, i+W) of an N-limb planar range into a pack MultiFloat.
template <typename P, std::floating_point T, int N>
MF_ALWAYS_INLINE MultiFloat<P, N> load_planar(const T* const* planes, std::size_t i) noexcept {
    MultiFloat<P, N> r;
    for (int k = 0; k < N; ++k) r.limb[k] = P::load(planes[k] + i);
    return r;
}

template <typename P, std::floating_point T, int N>
MF_ALWAYS_INLINE void store_planar(const MultiFloat<P, N>& v, T* const* planes,
                                   std::size_t i) noexcept {
    for (int k = 0; k < N; ++k) v.limb[k].store(planes[k] + i);
}

/// Broadcast one scalar expansion across all W lanes.
template <typename P, std::floating_point T, int N>
MF_ALWAYS_INLINE MultiFloat<P, N> broadcast(const MultiFloat<T, N>& x) noexcept {
    MultiFloat<P, N> r;
    for (int k = 0; k < N; ++k) r.limb[k] = P::broadcast(x.limb[k]);
    return r;
}

/// Transpose W consecutive AoS elements into a pack MultiFloat.
template <typename P, std::floating_point T, int N>
MF_ALWAYS_INLINE MultiFloat<P, N> load_aos(const MultiFloat<T, N>* p) noexcept {
    constexpr int W = P::width;
    MultiFloat<P, N> r;
    T buf[W];
    for (int k = 0; k < N; ++k) {
        for (int j = 0; j < W; ++j) buf[j] = p[j].limb[k];
        r.limb[k] = P::load(buf);
    }
    return r;
}

template <typename P, std::floating_point T, int N>
MF_ALWAYS_INLINE void store_aos(const MultiFloat<P, N>& v, MultiFloat<T, N>* p) noexcept {
    constexpr int W = P::width;
    T buf[W];
    for (int k = 0; k < N; ++k) {
        v.limb[k].store(buf);
        for (int j = 0; j < W; ++j) p[j].limb[k] = buf[j];
    }
}

/// Extract lane j of a pack expansion as a scalar expansion.
template <std::floating_point T, int N, typename P>
MF_ALWAYS_INLINE MultiFloat<T, N> lane(const MultiFloat<P, N>& v, int j) noexcept {
    MultiFloat<T, N> r;
    for (int k = 0; k < N; ++k) r.limb[k] = v.limb[k][j];
    return r;
}

// ---------------------------------------------------------------------------
// Planar (SoA) kernels
// ---------------------------------------------------------------------------

/// z[i] = x[i] + y[i] over planes, for i in [i0, i1).
template <std::floating_point T, int N, int W>
void add_range(const T* const* xp, const T* const* yp, T* const* zp,
               std::size_t i0, std::size_t i1) {
    MF_TELEM_COUNT_N("mf_simd_kernel_ops_total{kernel=\"add_range\"}", i1 - i0);
    using P = Pack<T, W>;
    std::size_t i = i0;
    for (; i + W <= i1; i += W) {
        const MultiFloat<P, N> x = load_planar<P, T, N>(xp, i);
        const MultiFloat<P, N> y = load_planar<P, T, N>(yp, i);
        store_planar<P, T, N>(add(x, y), zp, i);
    }
    for (; i < i1; ++i) {  // scalar tail: same network, one lane
        MultiFloat<T, N> x;
        MultiFloat<T, N> y;
        for (int k = 0; k < N; ++k) {
            x.limb[k] = xp[k][i];
            y.limb[k] = yp[k][i];
        }
        const MultiFloat<T, N> z = add(x, y);
        for (int k = 0; k < N; ++k) zp[k][i] = z.limb[k];
    }
}

/// y[i] = alpha * x[i] + y[i] over planes, for i in [i0, i1).
template <std::floating_point T, int N, int W>
void fma_range(const MultiFloat<T, N>& alpha, const T* const* xp, T* const* yp,
               std::size_t i0, std::size_t i1) {
    MF_TELEM_COUNT_N("mf_simd_kernel_ops_total{kernel=\"fma_range\"}", i1 - i0);
    using P = Pack<T, W>;
    const MultiFloat<P, N> av = broadcast<P, T, N>(alpha);
    std::size_t i = i0;
    for (; i + W <= i1; i += W) {
        const MultiFloat<P, N> x = load_planar<P, T, N>(xp, i);
        const MultiFloat<P, N> y = load_planar<P, T, N>(yp, i);
        store_planar<P, T, N>(add(mul(av, x), y), yp, i);
    }
    for (; i < i1; ++i) {
        MultiFloat<T, N> x;
        MultiFloat<T, N> y;
        for (int k = 0; k < N; ++k) {
            x.limb[k] = xp[k][i];
            y.limb[k] = yp[k][i];
        }
        const MultiFloat<T, N> z = add(mul(alpha, x), y);
        for (int k = 0; k < N; ++k) yp[k][i] = z.limb[k];
    }
}

/// <x, y> over planes. Accumulator layout: BLK = max(8, W) independent
/// accumulator lanes held in BLK/W packs. For W <= 8 this reproduces the
/// seed planar::dot exactly -- eight accumulators, lane j of each 8-block
/// feeding accumulator j, final merge in lane order then a scalar tail --
/// so the result is bit-identical to the pre-SIMD path.
template <std::floating_point T, int N, int W>
[[nodiscard]] MultiFloat<T, N> dot(const T* const* xp, const T* const* yp, std::size_t n) {
    MF_TELEM_COUNT_N("mf_simd_kernel_ops_total{kernel=\"dot\"}", n);
    using P = Pack<T, W>;
    constexpr std::size_t BLK = W > 8 ? W : 8;
    constexpr std::size_t A = BLK / W;
    MultiFloat<P, N> part[A];
    for (std::size_t blk = 0; blk + BLK <= n; blk += BLK) {
        for (std::size_t a = 0; a < A; ++a) {
            const std::size_t i = blk + a * W;
            const MultiFloat<P, N> x = load_planar<P, T, N>(xp, i);
            const MultiFloat<P, N> y = load_planar<P, T, N>(yp, i);
            part[a] = add(part[a], mul(x, y));
        }
    }
    MultiFloat<T, N> acc{};
    for (std::size_t j = 0; j < BLK; ++j) {
        acc = add(acc, lane<T, N>(part[j / W], static_cast<int>(j % W)));
    }
    for (std::size_t i = n - n % BLK; i < n; ++i) {
        MultiFloat<T, N> x;
        MultiFloat<T, N> y;
        for (int k = 0; k < N; ++k) {
            x.limb[k] = xp[k][i];
            y.limb[k] = yp[k][i];
        }
        acc = add(acc, mul(x, y));
    }
    return acc;
}

// ---------------------------------------------------------------------------
// AoS (interleaved MultiFloat span) kernels for mf::blas
// ---------------------------------------------------------------------------

/// y[i] = alpha * x[i] + y[i] over AoS arrays of n elements.
template <std::floating_point T, int N, int W>
void axpy_aos(const MultiFloat<T, N>& alpha, const MultiFloat<T, N>* x,
              MultiFloat<T, N>* y, std::size_t n) {
    MF_TELEM_COUNT_N("mf_simd_kernel_ops_total{kernel=\"axpy_aos\"}", n);
    using P = Pack<T, W>;
    const MultiFloat<P, N> av = broadcast<P, T, N>(alpha);
    std::size_t i = 0;
    for (; i + W <= n; i += W) {
        const MultiFloat<P, N> xv = load_aos<P, T, N>(x + i);
        const MultiFloat<P, N> yv = load_aos<P, T, N>(y + i);
        store_aos<P, T, N>(add(mul(av, xv), yv), y + i);
    }
    for (; i < n; ++i) y[i] = add(mul(alpha, x[i]), y[i]);
}

/// <x, y> over AoS arrays; same BLK-accumulator discipline as planar dot.
template <std::floating_point T, int N, int W>
[[nodiscard]] MultiFloat<T, N> dot_aos(const MultiFloat<T, N>* x,
                                       const MultiFloat<T, N>* y, std::size_t n) {
    MF_TELEM_COUNT_N("mf_simd_kernel_ops_total{kernel=\"dot_aos\"}", n);
    using P = Pack<T, W>;
    constexpr std::size_t BLK = W > 8 ? W : 8;
    constexpr std::size_t A = BLK / W;
    MultiFloat<P, N> part[A];
    for (std::size_t blk = 0; blk + BLK <= n; blk += BLK) {
        for (std::size_t a = 0; a < A; ++a) {
            const std::size_t i = blk + a * W;
            part[a] = add(part[a], mul(load_aos<P, T, N>(x + i), load_aos<P, T, N>(y + i)));
        }
    }
    MultiFloat<T, N> acc{};
    for (std::size_t j = 0; j < BLK; ++j) {
        acc = add(acc, lane<T, N>(part[j / W], static_cast<int>(j % W)));
    }
    for (std::size_t i = n - n % BLK; i < n; ++i) {
        acc = add(acc, mul(x[i], y[i]));
    }
    return acc;
}

}  // namespace mf::simd::kernels
