#pragma once
// Umbrella for mf::guard -- FP-environment sentinels, guard policy, and
// fault injection (DESIGN.md §12).
//
//   #include "guard/guard.hpp"
//
//   guard::FpEnvSnapshot s = guard::fp_env_snapshot();  // probe this thread
//   guard::ScopedFpEnv clean;           // enforce RN/no-FTZ for a scope
//   MF_GUARD_SENTINEL("my.entry");      // policy-driven entry/exit sentinel
//   guard::inject::arm_alloc(0);        // fault injection (tests only)

#include "fp_env.hpp"
#include "inject.hpp"
#include "policy.hpp"
