#pragma once
// Fault injection for the robustness test matrix (DESIGN.md §12).
//
// Three injectable fault classes, each a countdown armed by a test harness
// (or `mf_fuzz --inject ...`):
//
//   alloc  -- the Nth AlignedBuffer allocation throws std::bad_alloc, as a
//             real aligned `operator new` would under memory pressure;
//   spawn  -- the Nth std::thread construction in engine::run_pool throws
//             std::system_error(resource_unavailable_try_again), as a real
//             spawn does at the pthread limit;
//   env    -- at the Nth mid-GEMM checkpoint the calling thread's FP
//             environment is perturbed (and deliberately NOT restored):
//             detecting the leftover hostile state is what's under test.
//
// Disarmed state is a single relaxed atomic load on every hook -- negative
// countdown means "never fire", so production code pays one predictable
// branch. Countdowns disarm themselves after firing (fire-once semantics),
// so a degraded retry path does not re-trip the same fault.

#include <atomic>

#include "fp_env.hpp"

namespace mf::guard::inject {

namespace detail {

struct State {
    std::atomic<long> alloc_countdown{-1};
    std::atomic<long> spawn_countdown{-1};
    std::atomic<long> env_countdown{-1};
    std::atomic<unsigned> env_mask{0};
};

inline State& state() noexcept {
    static State s;
    return s;
}

/// Fire-once countdown: returns true exactly when the counter crosses zero,
/// then leaves it disarmed (-1). CAS loop only while armed.
inline bool countdown_hit(std::atomic<long>& c) noexcept {
    long v = c.load(std::memory_order_relaxed);
    while (v >= 0) {
        if (c.compare_exchange_weak(v, v - 1, std::memory_order_relaxed)) {
            return v == 0;
        }
    }
    return false;
}

}  // namespace detail

/// Arm: the Nth (0-based) AlignedBuffer allocation after this call fails.
inline void arm_alloc(long nth) noexcept {
    detail::state().alloc_countdown.store(nth, std::memory_order_relaxed);
}

/// Arm: the Nth (0-based) std::thread spawn after this call fails.
inline void arm_spawn(long nth) noexcept {
    detail::state().spawn_countdown.store(nth, std::memory_order_relaxed);
}

/// Arm: the Nth (0-based) mid-call env checkpoint applies `p` to the
/// checkpoint's thread and leaves it applied.
inline void arm_env(long nth, Perturb p) noexcept {
    detail::state().env_mask.store(static_cast<unsigned>(p),
                                   std::memory_order_relaxed);
    detail::state().env_countdown.store(nth, std::memory_order_relaxed);
}

/// Disarm everything.
inline void reset() noexcept {
    detail::state().alloc_countdown.store(-1, std::memory_order_relaxed);
    detail::state().spawn_countdown.store(-1, std::memory_order_relaxed);
    detail::state().env_countdown.store(-1, std::memory_order_relaxed);
    detail::state().env_mask.store(0, std::memory_order_relaxed);
}

/// Hook: called by AlignedBuffer::ensure before allocating.
[[nodiscard]] inline bool should_fail_alloc() noexcept {
    return detail::countdown_hit(detail::state().alloc_countdown);
}

/// Hook: called by engine::run_pool before each std::thread construction.
[[nodiscard]] inline bool should_fail_spawn() noexcept {
    return detail::countdown_hit(detail::state().spawn_countdown);
}

/// Hook: mid-call environment checkpoint (e.g. after each pack_b in
/// gemm_packed). Perturbs the calling thread's live FP environment when
/// armed; the enclosing Sentinel's exit probe is expected to notice.
inline void maybe_perturb_env() noexcept {
    if (detail::countdown_hit(detail::state().env_countdown)) {
        apply_perturb(static_cast<Perturb>(
            detail::state().env_mask.load(std::memory_order_relaxed)));
    }
}

}  // namespace mf::guard::inject
