#pragma once
// Guard policy: what to DO when a sentinel finds a hostile FP environment.
//
//   MF_GUARD_POLICY=ignore   no probing at all (one relaxed load per entry)
//   MF_GUARD_POLICY=warn     probe, count a telemetry violation, rate-limited
//                            stderr note; run in the caller's environment
//   MF_GUARD_POLICY=enforce  warn + install ScopedFpEnv for the call: the
//                            guarded region runs under nominal RN/no-FTZ and
//                            the caller's environment is restored on exit
//   MF_GUARD_POLICY=abort    warn + std::abort() -- for harnesses where a
//                            hostile environment means the run is garbage
//
// Default is `warn`: detection must never change numerics behind the
// caller's back unless they opted in.
//
// The sentinel probes on entry AND exit. The exit probe is what catches an
// environment flipped mid-call (a callback, a signal handler, a buggy thread
// pool): it reports when the exit environment is hostile and either the
// entry was clean (so the flip happened inside) or enforcement was active
// (so anything non-nominal at exit is inside-the-call damage by definition).

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string_view>

#include "fp_env.hpp"
#include "../telemetry/events.hpp"

#define MF_GUARD_CAT_IMPL(a, b) a##b
#define MF_GUARD_CAT(a, b) MF_GUARD_CAT_IMPL(a, b)

namespace mf::guard {

enum class Policy { ignore, warn, enforce, abort_on_violation };

namespace detail {

inline std::atomic<int>& policy_cell() noexcept {
    static std::atomic<int> cell{-1};  // -1 = environment not parsed yet
    return cell;
}

inline Policy parse_policy() noexcept {
    const char* v = std::getenv("MF_GUARD_POLICY");
    if (!v) return Policy::warn;
    const std::string_view s{v};
    if (s == "ignore") return Policy::ignore;
    if (s == "warn") return Policy::warn;
    if (s == "enforce") return Policy::enforce;
    if (s == "abort") return Policy::abort_on_violation;
    std::fprintf(stderr,
                 "mf::guard: unknown MF_GUARD_POLICY=%s (want "
                 "ignore|warn|enforce|abort); defaulting to warn\n",
                 v);
    return Policy::warn;
}

}  // namespace detail

[[nodiscard]] inline Policy policy() noexcept {
    int p = detail::policy_cell().load(std::memory_order_relaxed);
    if (p < 0) {
        p = static_cast<int>(detail::parse_policy());
        detail::policy_cell().store(p, std::memory_order_relaxed);
    }
    return static_cast<Policy>(p);
}

/// Test hook: override the environment-derived policy for this process.
inline void set_policy(Policy p) noexcept {
    detail::policy_cell().store(static_cast<int>(p), std::memory_order_relaxed);
}

[[nodiscard]] constexpr const char* policy_name(Policy p) noexcept {
    switch (p) {
        case Policy::ignore: return "ignore";
        case Policy::warn: return "warn";
        case Policy::enforce: return "enforce";
        default: return "abort";
    }
}

namespace detail {

/// Record one violation: telemetry counters per hazard kind, plus a
/// rate-limited stderr note (never more than ~8 lines per process -- a
/// hostile host environment fires on every guarded call).
inline void note_violation(const char* site, const char* when,
                           const FpEnvSnapshot& s) {
#if MF_TELEMETRY_ENABLED
    const auto count_kind = [when](const char* kind) {
        MF_TELEM_COUNT_DYN(std::string("mf_guard_violation_total{kind=\"") +
                               kind + "\",when=\"" + when + "\"}",
                           1);
    };
    if (s.rounding != Rounding::nearest) count_kind("rounding");
    if (s.ftz) count_kind("ftz");
    if (s.daz) count_kind("daz");
#endif
    static std::atomic<int> budget{8};
    if (budget.fetch_sub(1, std::memory_order_relaxed) > 0) {
        std::fprintf(stderr,
                     "mf::guard: hostile FP environment at %s (%s): %s "
                     "[policy=%s]\n",
                     site, when, fp_env_string(s).c_str(),
                     policy_name(policy()));
    }
}

}  // namespace detail

/// RAII environment sentinel for a guarded entry point. Probes the calling
/// thread's FP environment on construction; under `enforce` it swaps in the
/// nominal environment for the lifetime of the scope; on destruction it
/// re-probes to catch mid-call flips, then (enforce) restores the caller's
/// environment via the embedded ScopedFpEnv.
class Sentinel {
public:
    explicit Sentinel(const char* site) noexcept : site_(site) {
        const Policy p = policy();
        if (p == Policy::ignore) return;
        armed_ = true;
        MF_TELEM_COUNT("mf_guard_check_total");
        const FpEnvSnapshot entry = fp_env_snapshot();
        entry_nominal_ = env_nominal(entry);
        if (!entry_nominal_) {
            detail::note_violation(site_, "entry", entry);
            if (p == Policy::abort_on_violation) {
                std::fprintf(stderr,
                             "mf::guard: aborting (MF_GUARD_POLICY=abort)\n");
                std::abort();
            }
        }
        if (p == Policy::enforce) {
            env_.emplace();
            enforced_ = true;
            if (!entry_nominal_) MF_TELEM_COUNT("mf_guard_enforced_total");
        }
    }

    ~Sentinel() {
        if (!armed_) return;
        const FpEnvSnapshot exit = fp_env_snapshot();
        // Hostile at exit is a mid-call flip iff entry was clean, or iff we
        // enforced a clean environment ourselves (then ANY exit damage
        // happened inside the guarded region).
        if (!env_nominal(exit) && (entry_nominal_ || enforced_)) {
            detail::note_violation(site_, "exit", exit);
            if (policy() == Policy::abort_on_violation) {
                std::fprintf(stderr,
                             "mf::guard: aborting (MF_GUARD_POLICY=abort)\n");
                std::abort();
            }
        }
        // env_ (if engaged) destructs after this body: caller env restored.
    }

    Sentinel(const Sentinel&) = delete;
    Sentinel& operator=(const Sentinel&) = delete;

    [[nodiscard]] bool enforced() const noexcept { return enforced_; }

private:
    const char* site_;
    bool armed_ = false;
    bool entry_nominal_ = true;
    bool enforced_ = false;
    std::optional<ScopedFpEnv> env_;
};

}  // namespace mf::guard

/// Drop an environment sentinel at a guarded entry point.
#define MF_GUARD_SENTINEL(site) \
    ::mf::guard::Sentinel MF_GUARD_CAT(mf_guard_sentinel_, __LINE__) { site }
