#pragma once
// Floating-point environment sentinels (DESIGN.md §12).
//
// Every error bound the conformance layer enforces, and every bit-identity
// guarantee the differ proves, holds only in the NOMINAL environment:
// round-to-nearest-even with subnormals enabled. Nothing stops a host
// process from violating that contract behind the library's back -- game
// engines ship with FTZ/DAZ set, a single -ffast-math DSO linked anywhere in
// the process can flip MXCSR at load time, and GPU interop layers are known
// to leave directed rounding modes behind. "On the robustness of double-word
// addition algorithms" (PAPERS.md) works out exactly how TwoSum-based
// algorithms degrade outside the nominal environment; this header is the
// detection half of the defense (policy.hpp decides what to do about it).
//
// Two complementary mechanisms:
//   * behavioral probes -- a handful of volatile flops whose rounded results
//     differ by environment. Portable ground truth: they observe what the
//     hardware actually does, including environments no register read can
//     name (x87 precision control, emulated FPUs).
//   * register reads -- MXCSR on x86, FPCR on AArch64. Near-free, kept in
//     the snapshot as raw provenance and used to *set* bits the C standard
//     gives no portable access to (FTZ/DAZ).
//
// All probes go through volatile locals: the values must be computed by the
// machine at call time, in the caller's live environment, not constant-folded
// under the compiler's compile-time round-to-nearest.

#include <cfenv>
#include <cstdint>
#include <limits>
#include <string>

#if defined(__x86_64__) || (defined(__i386__) && defined(__SSE__))
#define MF_GUARD_HAVE_MXCSR 1
#include <immintrin.h>
#else
#define MF_GUARD_HAVE_MXCSR 0
#endif
#if defined(__aarch64__)
#define MF_GUARD_HAVE_FPCR 1
#else
#define MF_GUARD_HAVE_FPCR 0
#endif

namespace mf::guard {

/// Rounding direction as observed by the behavioral probe.
enum class Rounding { nearest, toward_zero, upward, downward, unknown };

[[nodiscard]] constexpr const char* rounding_name(Rounding r) noexcept {
    switch (r) {
        case Rounding::nearest: return "rn";
        case Rounding::toward_zero: return "rz";
        case Rounding::upward: return "ru";
        case Rounding::downward: return "rd";
        default: return "r?";
    }
}

/// Does this build have a control register it can read AND write (the
/// prerequisite for perturbing or clearing FTZ/DAZ)?
inline constexpr bool have_control_register =
    MF_GUARD_HAVE_MXCSR != 0 || MF_GUARD_HAVE_FPCR != 0;

/// Raw FP control register: MXCSR (x86), FPCR (AArch64), 0 elsewhere.
[[nodiscard]] inline std::uint64_t read_control_register() noexcept {
#if MF_GUARD_HAVE_MXCSR
    return _mm_getcsr();
#elif MF_GUARD_HAVE_FPCR
    std::uint64_t v;
    __asm__ volatile("mrs %0, fpcr" : "=r"(v));
    return v;
#else
    return 0;
#endif
}

inline void write_control_register(std::uint64_t v) noexcept {
#if MF_GUARD_HAVE_MXCSR
    _mm_setcsr(static_cast<unsigned>(v));
#elif MF_GUARD_HAVE_FPCR
    __asm__ volatile("msr fpcr, %0" : : "r"(v));
#else
    (void)v;
#endif
}

namespace detail {

// Control-register bit masks for the flush-to-zero family. MXCSR separates
// output flushing (FTZ, bit 15) from input flushing (DAZ, bit 6); AArch64's
// FPCR has a single FZ bit (24) doing both, plus FZ16 (19) for half floats.
#if MF_GUARD_HAVE_MXCSR
inline constexpr std::uint64_t kFtzBits = 1u << 15;
inline constexpr std::uint64_t kDazBits = 1u << 6;
#elif MF_GUARD_HAVE_FPCR
inline constexpr std::uint64_t kFtzBits = (1ull << 24) | (1ull << 19);
inline constexpr std::uint64_t kDazBits = (1ull << 24) | (1ull << 19);
#else
inline constexpr std::uint64_t kFtzBits = 0;
inline constexpr std::uint64_t kDazBits = 0;
#endif

}  // namespace detail

/// Behavioral probe: does a subnormal RESULT survive? min_normal/2 is an
/// exact subnormal in every rounding mode; FTZ (or FPCR.FZ) flushes it to 0.
[[nodiscard]] inline bool probe_subnormal_outputs() noexcept {
    volatile double x = std::numeric_limits<double>::min();
    volatile double y = x * 0.5;
    return y != 0.0;
}

/// Behavioral probe: is a subnormal INPUT read as nonzero? denorm_min scaled
/// up to a normal magnitude isolates DAZ from FTZ: the product is normal, so
/// output flushing cannot mask the result -- only input flushing zeroes it.
[[nodiscard]] inline bool probe_subnormal_inputs() noexcept {
    volatile double d = std::numeric_limits<double>::denorm_min();
    volatile double y = d * 0x1p600;
    return y != 0.0;
}

/// Behavioral probe of the rounding direction, no <cfenv> involved: three
/// quarter-ulp additions whose rounded results differ per mode.
///   1 + 2^-54  rounds up only toward +inf;
///  -1 - 2^-54  rounds down only toward -inf;
///   1 - 2^-54  is a tie (half of the below-1 ulp 2^-53): to-even keeps 1.0,
///              truncation and toward -inf drop to 1 - 2^-53.
[[nodiscard]] inline Rounding probe_rounding() noexcept {
    volatile double one = 1.0;
    volatile double u = 0x1p-54;
    volatile double mone = -1.0;
    volatile double p1 = one + u;
    volatile double p2 = one - u;
    volatile double p3 = mone - u;
    if (p1 > 1.0) return Rounding::upward;
    if (p3 < -1.0) return Rounding::downward;
    if (p2 < 1.0) return Rounding::toward_zero;
    return Rounding::nearest;
}

/// Behavioral probe: did the compiler contract a*a - b into an FMA in THIS
/// translation unit? a = 1 + 2^-27 squares to 1 + 2^-26 + 2^-54; separately
/// rounded that is exactly b = 1 + 2^-26, so the difference is 0 -- an FMA
/// keeps the 2^-54 residual. Only meaningful under round-to-nearest (the
/// caller gates it): directed modes shift the product's rounding too.
[[nodiscard]] inline bool probe_fma_contraction() noexcept {
    volatile double va = 1.0 + 0x1p-27;
    volatile double vb = 1.0 + 0x1p-26;
    const double a = va;
    const double b = vb;
    volatile double r = a * a - b;
    return r != 0.0;
}

/// What the sentinels learned about the calling thread's FP environment.
/// `rounding`/`ftz`/`daz` are behavioral observations (ground truth);
/// `raw_control` is the register word for provenance dumps.
struct FpEnvSnapshot {
    Rounding rounding = Rounding::unknown;
    bool ftz = false;             ///< subnormal outputs flushed
    bool daz = false;             ///< subnormal inputs read as zero
    bool subnormals_ok = true;    ///< !ftz && !daz
    bool fma_contraction = false; ///< this TU contracts mul+add (probe, RN only)
    std::uint64_t raw_control = 0;
};

[[nodiscard]] inline FpEnvSnapshot fp_env_snapshot() noexcept {
    FpEnvSnapshot s;
    s.raw_control = read_control_register();
    s.rounding = probe_rounding();
    s.ftz = !probe_subnormal_outputs();
    s.daz = !probe_subnormal_inputs();
    s.subnormals_ok = !s.ftz && !s.daz;
    s.fma_contraction =
        s.rounding == Rounding::nearest && probe_fma_contraction();
    return s;
}

/// The environment every paper bound and bit-identity guarantee assumes:
/// round-to-nearest with subnormals fully enabled. FMA contraction is
/// excluded on purpose: the build pins -ffp-contract=off, TwoSum has no
/// multiplies and TwoProd uses std::fma explicitly, so contraction is a
/// provenance fact, not a correctness violation.
[[nodiscard]] inline bool env_nominal(const FpEnvSnapshot& s) noexcept {
    return s.rounding == Rounding::nearest && s.subnormals_ok;
}

/// Compact provenance string: "rn", "rz+ftz", "rn+daz+fmac", ...
[[nodiscard]] inline std::string fp_env_string(const FpEnvSnapshot& s) {
    std::string r = rounding_name(s.rounding);
    if (s.ftz) r += "+ftz";
    if (s.daz) r += "+daz";
    if (s.fma_contraction) r += "+fmac";
    return r;
}

[[nodiscard]] inline std::string fp_env_string() {
    return fp_env_string(fp_env_snapshot());
}

/// RAII: save the caller's FP environment verbatim, restore it on scope
/// exit. No enforcement -- the building block for the perturbing and
/// enforcing guards below, and for test harnesses that must leave the
/// process exactly as they found it.
class FpEnvSaver {
public:
    FpEnvSaver() noexcept : control_(read_control_register()) {
        std::fegetenv(&env_);
    }
    ~FpEnvSaver() {
        std::fesetenv(&env_);
        // fesetenv restores the control word on glibc targets already; the
        // explicit write keeps libcs honest that track less state in fenv_t.
        if constexpr (have_control_register) write_control_register(control_);
    }
    FpEnvSaver(const FpEnvSaver&) = delete;
    FpEnvSaver& operator=(const FpEnvSaver&) = delete;

private:
    std::fenv_t env_;
    std::uint64_t control_;
};

/// RAII: save the caller's FP environment, switch THIS THREAD to the nominal
/// one (round-to-nearest, FTZ/DAZ cleared), restore the caller's on exit.
/// This is what `MF_GUARD_POLICY=enforce` installs for the duration of a
/// guarded call. Per-thread by nature: the FP environment is thread state,
/// and worker threads spawned while enforcement is active inherit the
/// enforced (clean) environment.
class ScopedFpEnv {
public:
    ScopedFpEnv() noexcept {
        std::fesetround(FE_TONEAREST);
        if constexpr (have_control_register) {
            write_control_register(read_control_register() &
                                   ~(detail::kFtzBits | detail::kDazBits));
        }
    }

private:
    // Constructed (= saves) before the constructor body runs; destroyed (=
    // restores) after everything else in the enclosing scope.
    FpEnvSaver saved_;
};

/// Hostile-environment perturbations, for tests and fault injection -- the
/// inverse of ScopedFpEnv. Flags combine; at most one rounding direction.
enum class Perturb : unsigned {
    none = 0,
    round_toward_zero = 1u << 0,
    round_upward = 1u << 1,
    round_downward = 1u << 2,
    ftz = 1u << 3,
    daz = 1u << 4,
};

[[nodiscard]] constexpr Perturb operator|(Perturb a, Perturb b) noexcept {
    return static_cast<Perturb>(static_cast<unsigned>(a) | static_cast<unsigned>(b));
}
[[nodiscard]] constexpr bool has(Perturb mask, Perturb flag) noexcept {
    return (static_cast<unsigned>(mask) & static_cast<unsigned>(flag)) != 0;
}

/// Can this build actually apply the perturbation? Rounding is portable
/// (<cfenv>); the flush bits need a writable control register.
[[nodiscard]] inline bool perturb_supported(Perturb p) noexcept {
    if ((has(p, Perturb::ftz) || has(p, Perturb::daz)) && !have_control_register) {
        return false;
    }
    return true;
}

/// Apply a perturbation to the calling thread's live environment (no save).
/// Used by ScopedFpPerturb and by the mid-call fault injector, which
/// deliberately does NOT restore -- detection of the leftover state is the
/// point.
inline void apply_perturb(Perturb p) noexcept {
    if (has(p, Perturb::round_toward_zero)) std::fesetround(FE_TOWARDZERO);
    if (has(p, Perturb::round_upward)) std::fesetround(FE_UPWARD);
    if (has(p, Perturb::round_downward)) std::fesetround(FE_DOWNWARD);
    if constexpr (have_control_register) {
        std::uint64_t cr = read_control_register();
        if (has(p, Perturb::ftz)) cr |= detail::kFtzBits;
        if (has(p, Perturb::daz)) cr |= detail::kDazBits;
        write_control_register(cr);
    }
}

/// RAII: run a scope under a hostile environment, restore the caller's after.
class ScopedFpPerturb {
public:
    explicit ScopedFpPerturb(Perturb p) noexcept { apply_perturb(p); }

private:
    FpEnvSaver saved_;  // saves before the constructor body, restores last
};

}  // namespace mf::guard
