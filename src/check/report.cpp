// JSON serialization and console rendering of conformance telemetry.

#include "report.hpp"

#include <cinttypes>
#include <cstdio>

#include "../telemetry/build_info.hpp"

namespace mf::check {

namespace {

// All strings here are check-layer-controlled ASCII (op/category/backend
// names); strip quotes/backslashes defensively, as bench/harness.cpp does.
std::string json_clean(const std::string& s) {
    std::string r;
    for (char c : s) {
        if (c != '"' && c != '\\' && c >= 0x20) r.push_back(c);
    }
    return r;
}

// -inf / inf never appear in valid JSON; clamp to sentinel numbers.
double finite_or(double v, double fallback) {
    return std::isfinite(v) ? v : fallback;
}

}  // namespace

bool ConformanceReport::write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "ConformanceReport: cannot write %s\n", path.c_str());
        return false;
    }
    // Provenance stamp shared with bench's JsonReport: the same fields from
    // the same build_info(), so trajectory tooling can join BENCH and CHECK
    // documents on identical keys. fp_env records the PROBED rounding/flush
    // state of the writing thread -- "rn" certifies the run's environment
    // contract held; anything else flags the whole document as suspect.
    const telemetry::BuildInfo info = telemetry::build_info();
    std::fprintf(f,
                 "{\n  \"check\": \"conformance\",\n  \"seed\": %" PRIu64
                 ",\n  \"iters_per_run\": %" PRIu64 ",\n  \"backend\": \"%s\",\n"
                 "  \"git_sha\": \"%s\",\n  \"compiler\": \"%s\",\n"
                 "  \"threads\": %d,\n  \"fp_env\": \"%s\",\n"
                 "  \"clean\": %s,\n  \"runs\": [",
                 seed, iters_per_run, json_clean(backend).c_str(),
                 json_clean(info.git_sha).c_str(), json_clean(info.compiler).c_str(),
                 info.threads, json_clean(info.fp_env).c_str(),
                 clean() ? "true" : "false");
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const RunStats& r = runs[i];
        std::fprintf(f,
                     "%s\n    {\"op\": \"%s\", \"type\": \"%s\", \"limbs\": %d, "
                     "\"bound_bits\": %d, \"iters\": %" PRIu64 ", \"checked\": %" PRIu64
                     ", \"skipped_domain\": %" PRIu64 ", \"special_checked\": %" PRIu64
                     ", \"special_failures\": %" PRIu64 ", \"violations\": %" PRIu64
                     ", \"invariant_violations\": %" PRIu64
                     ", \"worst_err_log2\": %.4f, \"worst_slack_bits\": %.4f, "
                     "\"hist_exact\": %" PRIu64 ", \"hist_slack\": [",
                     i ? "," : "", op_name(r.op), json_clean(r.type).c_str(), r.limbs,
                     r.bound, r.iters, r.checked, r.skipped_domain, r.special_checked,
                     r.special_failures, r.violations, r.invariant_violations,
                     finite_or(r.worst_err_log2, 0.0),
                     finite_or(r.worst_slack, 9999.0), r.hist.exact);
        for (int b = 0; b < SlackHistogram::buckets; ++b) {
            std::fprintf(f, "%s%" PRIu64, b ? ", " : "", r.hist.bucket[b]);
        }
        std::fprintf(f, "]}");
    }
    std::fprintf(f, "\n  ],\n  \"diffs\": [");
    for (std::size_t i = 0; i < diffs.size(); ++i) {
        const DiffRecord& d = diffs[i];
        std::fprintf(f,
                     "%s\n    {\"kernel\": \"%s\", \"type\": \"%s\", \"limbs\": %d, "
                     "\"backend\": \"%s\", \"width\": %d, \"elements\": %" PRIu64
                     ", \"mismatches\": %" PRIu64 "}",
                     i ? "," : "", json_clean(d.kernel).c_str(), json_clean(d.type).c_str(),
                     d.limbs, json_clean(d.backend).c_str(), d.width, d.elements,
                     d.mismatches);
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    return true;
}

void ConformanceReport::print() const {
    std::printf("%-5s %-7s %2s %6s %10s %10s %8s %5s %10s %10s\n", "op", "type", "N",
                "bound", "checked", "skipped", "special", "viol", "worst2^", "slack");
    for (const RunStats& r : runs) {
        std::printf("%-5s %-7s %2d %6d %10" PRIu64 " %10" PRIu64 " %8" PRIu64
                    " %5" PRIu64 " %10.2f %10.2f\n",
                    op_name(r.op), r.type.c_str(), r.limbs, r.bound, r.checked,
                    r.skipped_domain, r.special_checked,
                    r.violations + r.invariant_violations + r.special_failures,
                    finite_or(r.worst_err_log2, 0.0), finite_or(r.worst_slack, 9999.0));
    }
    if (!diffs.empty()) {
        std::printf("\n%-10s %-7s %2s %-14s %5s %10s %10s\n", "kernel", "type", "N",
                    "backend", "width", "elements", "mismatch");
        for (const DiffRecord& d : diffs) {
            std::printf("%-10s %-7s %2d %-14s %5d %10" PRIu64 " %10" PRIu64 "\n",
                        d.kernel.c_str(), d.type.c_str(), d.limbs, d.backend.c_str(),
                        d.width, d.elements, d.mismatches);
        }
    }
}

}  // namespace mf::check
