#pragma once
// Counterexample shrinking: reduce a failing input pair to a minimal form
// while a caller-supplied predicate (pred(x, y) == true means "still fails")
// keeps holding. Deterministic greedy descent to a fixpoint over four move
// families, cheapest-to-read first:
//
//   1. zero a limb                 (fewer terms)
//   2. strip a limb's mantissa     (limb -> +-2^ilogb, one significant bit)
//   3. halve a limb's mantissa     (clear the low half of the fraction bits)
//   4. rescale both operands       (shift the common exponent toward zero)
//
// The result is 1-minimal under limb deletion: no single limb of either
// operand can be zeroed without losing the failure. Since an expansion has
// at most N limbs per operand, the shrunk counterexample is a <= N-limb
// witness by construction -- and usually far smaller, with single-bit limbs
// and exponents near zero, which makes the failing gate sequence readable
// by hand. The fault-injection self-test (tests/conformance_test.cpp,
// tools/mf_fuzz --self-test) verifies both properties on a deliberately
// broken kernel.

#include <cmath>
#include <limits>
#include <utility>

#include "../mf/multifloats.hpp"

namespace mf::check {

namespace detail {

/// Keep only the top `keep` significand bits of a finite nonzero limb.
template <FloatingPoint T>
[[nodiscard]] T truncate_mantissa(T v, int keep) {
    constexpr int p = std::numeric_limits<T>::digits;
    if (keep >= p || v == T(0) || !std::isfinite(v)) return v;
    const int e = std::ilogb(v);
    // Scale the significand to an integer with `keep` bits, drop the rest.
    const T scaled = std::ldexp(v, keep - 1 - e);
    return std::ldexp(std::trunc(scaled), e - keep + 1);
}

template <FloatingPoint T, int N>
[[nodiscard]] int nonzero_limbs(const MultiFloat<T, N>& v) {
    int c = 0;
    for (int i = 0; i < N; ++i) c += (v.limb[i] != T(0));
    return c;
}

}  // namespace detail

/// Number of nonzero limbs across both operands: the shrinker's size metric.
template <FloatingPoint T, int N>
[[nodiscard]] int shrink_size(const MultiFloat<T, N>& x, const MultiFloat<T, N>& y) {
    return detail::nonzero_limbs(x) + detail::nonzero_limbs(y);
}

/// Shrink (x, y) while pred(x, y) stays true. Returns the shrunk pair;
/// pred(result) is guaranteed true (the input itself must satisfy pred).
template <FloatingPoint T, int N, typename Pred>
[[nodiscard]] std::pair<MultiFloat<T, N>, MultiFloat<T, N>> shrink(
    MultiFloat<T, N> x, MultiFloat<T, N> y, Pred&& pred, int max_rounds = 64) {
    constexpr int p = std::numeric_limits<T>::digits;
    const auto try_move = [&](MultiFloat<T, N> nx, MultiFloat<T, N> ny) {
        if (pred(nx, ny)) {
            x = nx;
            y = ny;
            return true;
        }
        return false;
    };
    for (int round = 0; round < max_rounds; ++round) {
        bool changed = false;
        // Move 1: zero limbs, least significant first (most likely to be
        // inessential), then most significant (drops whole magnitude tiers).
        for (MultiFloat<T, N>* v : {&x, &y}) {
            for (int i = N - 1; i >= 0; --i) {
                if (v->limb[i] == T(0)) continue;
                MultiFloat<T, N> nx = x;
                MultiFloat<T, N> ny = y;
                (v == &x ? nx : ny).limb[i] = T(0);
                changed |= try_move(nx, ny);
            }
        }
        // Move 2: strip a limb to a single significant bit.
        for (MultiFloat<T, N>* v : {&x, &y}) {
            for (int i = 0; i < N; ++i) {
                const T l = v->limb[i];
                if (l == T(0) || !std::isfinite(l)) continue;
                const T stripped = std::copysign(std::ldexp(T(1), std::ilogb(l)), l);
                if (stripped == l) continue;
                MultiFloat<T, N> nx = x;
                MultiFloat<T, N> ny = y;
                (v == &x ? nx : ny).limb[i] = stripped;
                changed |= try_move(nx, ny);
            }
        }
        // Move 3: halve a limb's mantissa width.
        for (MultiFloat<T, N>* v : {&x, &y}) {
            for (int i = 0; i < N; ++i) {
                const T l = v->limb[i];
                if (l == T(0) || !std::isfinite(l)) continue;
                const T halved = detail::truncate_mantissa(l, (p + 1) / 2);
                if (halved == l || halved == T(0)) continue;
                MultiFloat<T, N> nx = x;
                MultiFloat<T, N> ny = y;
                (v == &x ? nx : ny).limb[i] = halved;
                changed |= try_move(nx, ny);
            }
        }
        // Move 4: rescale toward exponent zero. Scaling both operands by the
        // same power of two is exact and commutes with add/sub (and rescales
        // mul/div results exactly), so failures usually survive it.
        if (x.limb[0] != T(0) && std::isfinite(x.limb[0])) {
            const int e = std::ilogb(x.limb[0]);
            if (e != 0) {
                for (int step : {e, e / 2, (e > 0 ? 1 : -1)}) {
                    if (step == 0) continue;
                    changed |= try_move(mf::ldexp(x, -step), mf::ldexp(y, -step));
                }
            }
        }
        if (!changed) break;
    }
    return {x, y};
}

/// Is (x, y) 1-minimal for pred under limb deletion? (Every single-limb
/// zeroing loses the failure.) The self-test asserts this on shrink output.
template <FloatingPoint T, int N, typename Pred>
[[nodiscard]] bool shrink_is_minimal(const MultiFloat<T, N>& x, const MultiFloat<T, N>& y,
                                     Pred&& pred) {
    for (int side = 0; side < 2; ++side) {
        for (int i = 0; i < N; ++i) {
            MultiFloat<T, N> nx = x;
            MultiFloat<T, N> ny = y;
            MultiFloat<T, N>& v = side == 0 ? nx : ny;
            if (v.limb[i] == T(0)) continue;
            v.limb[i] = T(0);
            if (pred(nx, ny)) return false;
        }
    }
    return true;
}

}  // namespace mf::check
