// Line-oriented seed-corpus parser/writer (format in corpus.hpp).

#include "corpus.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace mf::check {

namespace {

bool parse_limb(const std::string& tok, double* out) {
    if (tok == "inf") {
        *out = std::numeric_limits<double>::infinity();
        return true;
    }
    if (tok == "-inf") {
        *out = -std::numeric_limits<double>::infinity();
        return true;
    }
    if (tok == "nan") {
        *out = std::numeric_limits<double>::quiet_NaN();
        return true;
    }
    char* end = nullptr;
    *out = std::strtod(tok.c_str(), &end);
    return end && *end == '\0' && end != tok.c_str();
}

void format_limb(std::FILE* f, double v) {
    if (std::isnan(v)) {
        std::fprintf(f, " nan");
    } else if (std::isinf(v)) {
        std::fprintf(f, " %s", v > 0 ? "inf" : "-inf");
    } else {
        std::fprintf(f, " %a", v);  // hex float: exact round-trip
    }
}

}  // namespace

bool load_corpus(const std::string& path, std::vector<CorpusEntry>* out) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (!f) return false;
    char buf[4096];
    int lineno = 0;
    while (std::fgets(buf, sizeof buf, f)) {
        ++lineno;
        std::istringstream line(buf);
        std::string tok;
        if (!(line >> tok) || tok[0] == '#') continue;
        CorpusEntry e;
        bool ok = parse_op(tok, &e.op);
        ok = ok && (line >> e.type) && (e.type == "double" || e.type == "float");
        ok = ok && (line >> e.limbs) && e.limbs >= 1 && e.limbs <= 8;
        for (int side = 0; ok && side < 2; ++side) {
            std::vector<double>& limbs = side == 0 ? e.x : e.y;
            for (int i = 0; ok && i < e.limbs; ++i) {
                double v;
                ok = static_cast<bool>(line >> tok) && parse_limb(tok, &v);
                if (ok) limbs.push_back(v);
            }
        }
        if (!ok) {
            std::fprintf(stderr, "corpus %s:%d: malformed line skipped\n",
                         path.c_str(), lineno);
            continue;
        }
        out->push_back(std::move(e));
    }
    std::fclose(f);
    return true;
}

bool save_corpus(const std::string& path, const std::vector<CorpusEntry>& entries,
                 const std::string& header) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "corpus: cannot write %s\n", path.c_str());
        return false;
    }
    std::fprintf(f, "# mf::check seed corpus v1\n");
    if (!header.empty()) std::fprintf(f, "# %s\n", header.c_str());
    std::fprintf(f, "# <op> <type> <N> <x limbs...> <y limbs...>\n");
    for (const CorpusEntry& e : entries) {
        std::fprintf(f, "%s %s %d", op_name(e.op), e.type.c_str(), e.limbs);
        for (double v : e.x) format_limb(f, v);
        for (double v : e.y) format_limb(f, v);
        std::fputc('\n', f);
    }
    std::fclose(f);
    return true;
}

}  // namespace mf::check
