#pragma once
// Seed-corpus IO for the conformance layer. A corpus file is a line-oriented
// text format, one replayable input per line:
//
//   # comment
//   <op> <type> <N> <x limb 0> ... <x limb N-1> <y limb 0> ... <y limb N-1>
//
// Limbs are hexadecimal floating-point literals (%a), which round-trip every
// finite value exactly and read back with strtod; non-finite limbs are the
// strings inf/-inf/nan. float-typed entries store their limbs as the exact
// double embedding. The committed corpus lives in tests/corpus/ and is
// replayed by tests/conformance_test.cpp and tools/mf_fuzz before any random
// fuzzing, so once a counterexample is found and shrunk it stays found.

#include <cstdint>
#include <string>
#include <vector>

#include "conformance.hpp"

namespace mf::check {

/// One corpus line, type-erased to double limbs.
struct CorpusEntry {
    Op op = Op::add;
    std::string type;  ///< "double" | "float"
    int limbs = 0;
    std::vector<double> x;  ///< `limbs` values
    std::vector<double> y;  ///< `limbs` values
};

/// Parse a corpus file. Returns false if the file cannot be read; malformed
/// lines are skipped with a warning on stderr.
bool load_corpus(const std::string& path, std::vector<CorpusEntry>* out);

/// Append entries to a corpus file (creating it), with a header comment.
bool save_corpus(const std::string& path, const std::vector<CorpusEntry>& entries,
                 const std::string& header);

/// Typed view of an entry (entries of other type/N yield no value).
template <FloatingPoint T, int N>
[[nodiscard]] bool entry_as(const CorpusEntry& e, MultiFloat<T, N>* x,
                            MultiFloat<T, N>* y) {
    const char* want_type = sizeof(T) == 8 ? "double" : "float";
    if (e.type != want_type || e.limbs != N) return false;
    if (e.x.size() != static_cast<std::size_t>(N) ||
        e.y.size() != static_cast<std::size_t>(N)) {
        return false;
    }
    for (int i = 0; i < N; ++i) {
        x->limb[i] = static_cast<T>(e.x[i]);
        y->limb[i] = static_cast<T>(e.y[i]);
    }
    return true;
}

template <FloatingPoint T, int N>
[[nodiscard]] CorpusEntry make_entry(Op op, const MultiFloat<T, N>& x,
                                     const MultiFloat<T, N>& y) {
    CorpusEntry e;
    e.op = op;
    e.type = sizeof(T) == 8 ? "double" : "float";
    e.limbs = N;
    for (int i = 0; i < N; ++i) {
        e.x.push_back(static_cast<double>(x.limb[i]));
        e.y.push_back(static_cast<double>(y.limb[i]));
    }
    return e;
}

/// Replay every matching corpus entry through the same per-sample check the
/// random runner applies. Returns the number of entries replayed.
template <FloatingPoint T, int N>
std::uint64_t replay_corpus(const std::vector<CorpusEntry>& entries, Op op,
                            RunStats* stats, Counterexample<T, N>* worst = nullptr) {
    std::uint64_t replayed = 0;
    const auto fn = [](Op o, const MultiFloat<T, N>& a, const MultiFloat<T, N>& b) {
        return apply_op(o, a, b);
    };
    for (const CorpusEntry& e : entries) {
        if (e.op != op) continue;
        MultiFloat<T, N> x, y;
        if (!entry_as<T, N>(e, &x, &y)) continue;
        ++replayed;
        check_sample(fn, op, x, y, Category::ladder, stats, worst);
    }
    return replayed;
}

}  // namespace mf::check
