#pragma once
// Per-op conformance runner: hammer one kernel with structure-aware inputs,
// measure the observed relative error against the enforced bound table
// (oracle.hpp), and keep a slack histogram plus the worst counterexample.
//
// Domain discipline: the paper's bounds hold when every intermediate of the
// straight-line network stays strictly normal and finite (§4.4 -- expansions
// extend precision, not exponent range). The runner therefore classifies
// each generated input:
//
//   * in-domain      -> bound check against the oracle + nonoverlap check;
//   * out-of-domain  -> the kernel must still be safe to call; specials are
//                       additionally checked against the strict-IEEE
//                       restoration layer (mf/ieee.hpp), which promises the
//                       base type's own special-value semantics.
//
// Every run is reproducible from (op, type, N, seed, iters, cfg); the
// counterexample carries the raw limbs so tools/mf_fuzz can re-shrink and
// replay it.

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <string>

#include "../mf/ieee.hpp"
#include "../telemetry/events.hpp"
#include "generators.hpp"
#include "oracle.hpp"

namespace mf::check {

/// Histogram of bound slack: for each checked sample,
/// slack = bound_bits - observed error bits = -rel_err_log2 - bound_bits...
/// i.e. how many bits of headroom the kernel had below its contract.
/// Bucket b counts samples with slack in [b, b+1); the last bucket absorbs
/// everything wider. Exactly-representable results and violations are
/// counted separately.
struct SlackHistogram {
    static constexpr int buckets = 32;
    std::uint64_t bucket[buckets]{};
    std::uint64_t exact = 0;       ///< error identically zero
    std::uint64_t violations = 0;  ///< slack < 0: bound exceeded

    void record(double slack_bits) noexcept {
        if (std::isinf(slack_bits) && slack_bits > 0) {
            ++exact;
            return;
        }
        if (slack_bits < 0) {
            ++violations;
            return;
        }
        int b = static_cast<int>(slack_bits);
        if (b >= buckets) b = buckets - 1;
        ++bucket[b];
    }
};

/// The raw limbs of the worst (or any failing) input pair, replayable.
template <FloatingPoint T, int N>
struct Counterexample {
    MultiFloat<T, N> x{};
    MultiFloat<T, N> y{};
    double err_log2 = -std::numeric_limits<double>::infinity();
    Category category = Category::ladder;
    bool valid = false;
};

/// Aggregate result of one conformance run.
struct RunStats {
    Op op = Op::add;
    std::string type;  ///< "double" | "float"
    int limbs = 0;
    int bound = 0;  ///< enforced bound in bits
    std::uint64_t seed = 0;
    std::uint64_t iters = 0;
    std::uint64_t checked = 0;            ///< in-domain, bound-compared samples
    std::uint64_t skipped_domain = 0;     ///< out-of-domain, safety-only samples
    std::uint64_t special_checked = 0;    ///< special-input samples
    std::uint64_t special_failures = 0;   ///< *_ieee propagation failures
    std::uint64_t invariant_violations = 0;  ///< output not nonoverlapping
    std::uint64_t violations = 0;            ///< bound exceeded
    std::uint64_t per_category[category_count]{};
    double worst_err_log2 = -std::numeric_limits<double>::infinity();
    double worst_slack = std::numeric_limits<double>::infinity();
    SlackHistogram hist;

    [[nodiscard]] bool clean() const noexcept {
        return violations == 0 && invariant_violations == 0 && special_failures == 0;
    }
};

namespace detail {

/// Every nonzero limb finite and far enough above the subnormal border that
/// the EFT error terms it spawns stay normal too.
template <FloatingPoint T, int N>
[[nodiscard]] bool limbs_bound_safe(const MultiFloat<T, N>& v, int headroom_bits) {
    constexpr int emin = std::numeric_limits<T>::min_exponent;
    for (int i = 0; i < N; ++i) {
        const T l = v.limb[i];
        if (l == T(0)) continue;
        if (!std::isfinite(l)) return false;
        if (std::ilogb(l) < emin + headroom_bits) return false;
    }
    return true;
}

template <FloatingPoint T, int N>
[[nodiscard]] int min_nonzero_ilogb(const MultiFloat<T, N>& v) {
    int m = std::numeric_limits<int>::max();
    for (int i = 0; i < N; ++i) {
        if (v.limb[i] != T(0) && std::isfinite(v.limb[i])) {
            m = std::min(m, std::ilogb(v.limb[i]));
        }
    }
    return m;
}

}  // namespace detail

/// Conservative classification: true iff (x, y) is inside the exponent
/// window where every intermediate of `op`'s network provably stays normal
/// and finite, so the paper bound is contractual.
template <FloatingPoint T, int N>
[[nodiscard]] bool bound_domain(Op op, const MultiFloat<T, N>& x, const MultiFloat<T, N>& y) {
    constexpr int p = std::numeric_limits<T>::digits;
    constexpr int emin = std::numeric_limits<T>::min_exponent;
    constexpr int emax = std::numeric_limits<T>::max_exponent;
    const bool xz = x.is_zero();
    const bool yz = y.is_zero();
    switch (op) {
        case Op::add:
        case Op::sub: {
            // TwoSum error terms are exact at any magnitude (no products), so
            // addition only needs normal input limbs: every exact partial sum
            // then lives on a representable grid, and truncating to N limbs
            // is within the bound by the nonoverlap telescope. Headroom 2
            // keeps the grid clear of the very last subnormal quantum.
            if (!detail::limbs_bound_safe(x, 2) || !detail::limbs_bound_safe(y, 2))
                return false;
            const int ex = xz ? 0 : std::ilogb(x.limb[0]);
            const int ey = yz ? 0 : std::ilogb(y.limb[0]);
            return ex <= emax - 3 && ey <= emax - 3;
        }
        case Op::mul: {
            if (!detail::limbs_bound_safe(x, 2) || !detail::limbs_bound_safe(y, 2))
                return false;
            if (xz || yz) return true;  // exact zero product
            const int ex = std::ilogb(x.limb[0]);
            const int ey = std::ilogb(y.limb[0]);
            // Highest product above, lowest TwoProd error term and its
            // accumulation error below: keep both strictly in range.
            const int lo = detail::min_nonzero_ilogb(x) + detail::min_nonzero_ilogb(y);
            return ex + ey <= emax - 3 && lo - 3 * p - 8 >= emin;
        }
        case Op::div: {
            if (yz) return false;  // pole: handled as a special, not a bound
            if (!detail::limbs_bound_safe(x, 2) || !detail::limbs_bound_safe(y, 2))
                return false;
            // The Newton/Karp-Markstein chain works in three frames: the
            // reciprocal (~2^-ey), the quotient (~2^(ex-ey)), and the
            // remainder (~2^ex). In each frame, terms more than bound+2 bits
            // below the frame lead are irrelevant to the bound, and the only
            // inexactness products can introduce is at the subnormal quantum
            // 2^(emin-p). So the bound is contractual when each frame lead
            // clears the quantum by bound + guard bits -- and nothing
            // overflows. (A fixed window would be empty for float N=4, whose
            // bound eats most of the type's sub-1.0 normal range.)
            const int b = bound_bits(Op::div, p, N);
            const int floor_e = emin - p + b + 4;  // min admissible frame lead
            const int ey = std::ilogb(y.limb[0]);
            if (-ey < floor_e || -ey > emax - 4 || ey > emax - 4 || ey < floor_e)
                return false;
            if (xz) return true;  // 0 / y: exact zero through a finite recip
            const int ex = std::ilogb(x.limb[0]);
            const int eq = ex - ey;  // quotient frame lead
            if (ex > emax - 4 || eq > emax - 4) return false;
            return ex >= floor_e && eq >= floor_e;
        }
        case Op::sqrt: {
            if (xz) return true;  // exact: sqrt(0) == 0
            if (x.limb[0] < T(0) || !detail::limbs_bound_safe(x, 2)) return false;
            // Frames: remainder/radicand ~2^e, result ~2^(e/2), rsqrt
            // ~2^(-e/2), and the iteration's squared term r*r ~2^-e. The
            // binding ones are the symmetric pair (e, -e); the half-exponent
            // frames are automatically inside them.
            const int b = bound_bits(Op::sqrt, p, N);
            const int floor_e = emin - p + b + 4;
            const int e = std::ilogb(x.limb[0]);
            return e <= emax - 4 && e >= floor_e && -e >= floor_e;
        }
    }
    return false;
}

namespace detail {

/// Does z faithfully embed what the base type would say about this special
/// case? Checked through the strict-IEEE restoration layer, which is the
/// documented contract for non-finite / signed-zero operands (§4.4).
template <FloatingPoint T, int N>
[[nodiscard]] bool special_semantics_ok(Op op, const MultiFloat<T, N>& x,
                                        const MultiFloat<T, N>& y) {
    T want{};
    MultiFloat<T, N> z;
    switch (op) {
        case Op::add: want = x.limb[0] + y.limb[0]; z = add_ieee(x, y); break;
        case Op::sub: want = x.limb[0] - y.limb[0]; z = sub_ieee(x, y); break;
        case Op::mul: want = x.limb[0] * y.limb[0]; z = mul_ieee(x, y); break;
        case Op::div: want = x.limb[0] / y.limb[0]; z = div_ieee(x, y); break;
        case Op::sqrt: want = std::sqrt(x.limb[0]); z = sqrt_ieee(x); break;
    }
    if (std::isnan(want)) return std::isnan(z.limb[0]);
    if (std::isinf(want)) return z.limb[0] == want;
    if (want == T(0) && std::signbit(want)) {
        return z.limb[0] == T(0) && std::signbit(z.limb[0]);
    }
    return true;  // finite, unsigned-zero results are the bound check's job
}

}  // namespace detail

/// Fresh stats block for one (op, T, N) run.
template <FloatingPoint T, int N>
[[nodiscard]] RunStats make_stats(Op op, std::uint64_t seed) {
    RunStats s;
    s.op = op;
    s.type = (sizeof(T) == 8) ? "double" : "float";
    s.limbs = N;
    s.bound = bound_bits(op, std::numeric_limits<T>::digits, N);
    s.seed = seed;
    return s;
}

/// Classify and check one sample, updating `s` (and the worst-case record
/// if given). Shared by the random runner and the corpus replayer.
template <FloatingPoint T, int N, typename Fn>
void check_sample(Fn&& fn, Op op, const MultiFloat<T, N>& x, const MultiFloat<T, N>& y,
                  Category cat, RunStats* s, Counterexample<T, N>* worst = nullptr) {
    ++s->iters;
    ++s->per_category[static_cast<int>(cat)];
    MF_TELEM_COUNT("mf_check_samples_total");

    if (!bound_domain(op, x, y)) {
        ++s->skipped_domain;
        // Out-of-domain calls must still be safe, and specials must
        // round-trip the strict-IEEE layer faithfully.
        (void)fn(op, x, y);
        if (!x.is_finite() || !y.is_finite() || (op == Op::div && y.is_zero()) ||
            (op == Op::sqrt && x.limb[0] < T(0))) {
            ++s->special_checked;
            if (!detail::special_semantics_ok(op, x, y)) ++s->special_failures;
        }
        return;
    }

    const MultiFloat<T, N> z = fn(op, x, y);
    const BigFloat want = oracle(op, x, y);
    ++s->checked;

    bool failed = false;
    double err = -std::numeric_limits<double>::infinity();
    if (want.is_zero()) {
        // Exact-zero reference: the branch-free networks compute it exactly
        // (TwoSum/TwoProd are exact), so anything else is a violation with
        // no meaningful relative error.
        if (exact(z).is_zero()) {
            s->hist.record(std::numeric_limits<double>::infinity());
        } else {
            ++s->violations;
            ++s->hist.violations;
            failed = true;
            err = std::numeric_limits<double>::infinity();
        }
    } else {
        err = rel_err_log2(z, want);
        const double slack = -err - s->bound;
        s->hist.record(slack);
        // Live mirror of the per-run SlackHistogram: how many bits of
        // headroom the kernel had below its contract, process-wide across
        // runs, scrapeable mid-fuzz (negative slack, i.e. a violation,
        // clamps into bucket 0 alongside sub-1-bit headroom).
        MF_TELEM_HIST("mf_check_slack_bits", slack);
        if (err > s->worst_err_log2) s->worst_err_log2 = err;
        if (slack < s->worst_slack) s->worst_slack = slack;
        if (slack < 0) {
            ++s->violations;
            failed = true;
        }
    }
    if (worst && (failed || !worst->valid || err > worst->err_log2)) {
        worst->x = x;
        worst->y = y;
        worst->err_log2 = err;
        worst->category = cat;
        worst->valid = true;
    }
    MF_TELEM_COUNT_N("mf_check_violations_total", failed);
    if (!is_nonoverlapping(z)) ++s->invariant_violations;
}

/// Run `iters` fuzz iterations of `op` implemented by `fn` (signature of
/// apply_op) at base type T, expansion length N. `fn` is a parameter so the
/// fault-injection self-test can hand in a deliberately broken kernel and
/// watch the runner catch it.
template <FloatingPoint T, int N, typename Fn>
[[nodiscard]] RunStats run_conformance_with(Fn&& fn, Op op, std::uint64_t seed,
                                            std::uint64_t iters, const GenConfig& cfg = {},
                                            Counterexample<T, N>* worst = nullptr) {
    RunStats s = make_stats<T, N>(op, seed);
    std::mt19937_64 rng(seed);
    for (std::uint64_t it = 0; it < iters; ++it) {
        const Category cat = pick_category(rng, cfg);
        auto [x, y] = gen_pair<T, N>(rng, cat, cfg);
        if (op == Op::sqrt) {
            // Principal domain for bound checks; special-category inputs stay
            // raw so sqrt(-Inf) etc. exercise the strict-IEEE path.
            if (cat != Category::special) x = mf::abs(x);
            y = MultiFloat<T, N>{};
        }
        if (op == Op::div && y.is_zero() && cat != Category::special) {
            y = MultiFloat<T, N>(T(3));
        }
        check_sample(fn, op, x, y, cat, &s, worst);
    }
    return s;
}

/// Fuzz the library's own kernels.
template <FloatingPoint T, int N>
[[nodiscard]] RunStats run_conformance(Op op, std::uint64_t seed, std::uint64_t iters,
                                       const GenConfig& cfg = {},
                                       Counterexample<T, N>* worst = nullptr) {
    return run_conformance_with<T, N>(
        [](Op o, const MultiFloat<T, N>& x, const MultiFloat<T, N>& y) {
            return apply_op(o, x, y);
        },
        op, seed, iters, cfg, worst);
}

}  // namespace mf::check
