#pragma once
// Error-bound telemetry output: one self-describing JSON document per
// mf_fuzz run, in the same committed-artifact style as the BENCH_*.json
// performance trajectories (bench/harness.hpp). CHECK_conformance.json at
// the repo root is the tracked instance; CI-style runs diff it for trend
// regressions in worst-case slack.

#include <cstdint>
#include <string>
#include <vector>

#include "conformance.hpp"
#include "differ.hpp"

namespace mf::check {

/// Everything one fuzzing session learned, serializable.
struct ConformanceReport {
    std::uint64_t seed = 0;
    std::uint64_t iters_per_run = 0;
    std::string backend;  ///< active SIMD backend during the run
    std::vector<RunStats> runs;
    std::vector<DiffRecord> diffs;

    [[nodiscard]] bool clean() const noexcept {
        for (const RunStats& r : runs) {
            if (!r.clean()) return false;
        }
        for (const DiffRecord& d : diffs) {
            if (d.mismatches != 0) return false;
        }
        return true;
    }

    /// Write {"check": "conformance", ...} to `path`. Returns false (and
    /// prints to stderr) if the file cannot be written.
    bool write(const std::string& path) const;

    /// Human-readable per-run summary table to stdout.
    void print() const;
};

}  // namespace mf::check
