#pragma once
// Oracle glue and the enforced error-bound table for the mf::check
// conformance layer.
//
// Every fuzzed operation is compared against the exact BigFloat oracle
// (src/bigfloat/), which is itself cross-validated bit-for-bit against IEEE
// hardware and __float128 (tests/bigfloat_test.cpp). The bound table below
// is the paper's worst-case relative-error claim per kernel, in bits below
// the result:
//
//   op    N=2        N>=3         source
//   add   2p-1       Np-N         Fig. 2 proof / §4.1 empirical bounds
//   mul   2p-3       Np-N         Fig. 5 proof / §4.2 empirical bounds
//   div   Np-N-4     Np-N-4       §4.3 Newton + Karp-Markstein correction
//   sqrt  Np-N-4     Np-N-4       §4.3 (same convergence argument)
//
// div/sqrt concede 4 bits to the final correction step -- the same margin
// the seed test suite has always enforced (tests/divsqrt_test.cpp).

#include <cmath>
#include <cstdint>
#include <limits>
#include <string_view>

#include "../bigfloat/bigfloat.hpp"
#include "../mf/multifloats.hpp"

namespace mf::check {

using big::BigFloat;

/// The fuzzable kernels.
enum class Op : int { add = 0, sub, mul, div, sqrt };
inline constexpr int op_count = 5;

[[nodiscard]] constexpr const char* op_name(Op op) noexcept {
    switch (op) {
        case Op::add: return "add";
        case Op::sub: return "sub";
        case Op::mul: return "mul";
        case Op::div: return "div";
        case Op::sqrt: return "sqrt";
    }
    return "?";
}

[[nodiscard]] inline bool parse_op(std::string_view name, Op* out) noexcept {
    for (Op op : {Op::add, Op::sub, Op::mul, Op::div, Op::sqrt}) {
        if (name == op_name(op)) {
            *out = op;
            return true;
        }
    }
    return false;
}

/// Is the operation unary (ignores its second operand)?
[[nodiscard]] constexpr bool op_is_unary(Op op) noexcept { return op == Op::sqrt; }

/// Enforced worst-case relative error bound, in bits: |err| <= 2^-bound |z|.
[[nodiscard]] constexpr int bound_bits(Op op, int p, int N) noexcept {
    switch (op) {
        case Op::add:
        case Op::sub:
            return N == 2 ? 2 * p - 1 : N * p - N;
        case Op::mul:
            return N == 2 ? 2 * p - 3 : N * p - N;
        case Op::div:
        case Op::sqrt:
            return N * p - N - 4;
    }
    return 0;
}

/// Exact value of an expansion as a BigFloat (non-finite limbs excluded;
/// callers must gate on is_finite() for bound checks).
template <FloatingPoint T, int N>
[[nodiscard]] BigFloat exact(const MultiFloat<T, N>& x) {
    BigFloat acc;
    for (int i = 0; i < N; ++i) {
        if (std::isfinite(x.limb[i])) {
            acc = acc + BigFloat::from_double(static_cast<double>(x.limb[i]));
        }
    }
    return acc;
}

/// log2 of |value(z) - want| / |want|: -inf if exact, +inf if want == 0 but
/// z != 0 (a categorical failure for an exact-cancellation case).
template <FloatingPoint T, int N>
[[nodiscard]] double rel_err_log2(const MultiFloat<T, N>& z, const BigFloat& want) {
    const BigFloat err = exact(z) - want;
    if (err.is_zero()) return -std::numeric_limits<double>::infinity();
    if (want.is_zero()) return std::numeric_limits<double>::infinity();
    const BigFloat rel = BigFloat::div(err.abs(), want.abs(), 64);
    return std::log2(std::abs(rel.to_double()));
}

/// Working precision for oracle div/sqrt: comfortably past every bound.
[[nodiscard]] constexpr std::int64_t oracle_prec(int p, int N) noexcept {
    return static_cast<std::int64_t>(N) * p + 24;
}

/// The exact (or correctly rounded at oracle_prec) reference result.
template <FloatingPoint T, int N>
[[nodiscard]] BigFloat oracle(Op op, const MultiFloat<T, N>& x, const MultiFloat<T, N>& y) {
    constexpr int p = std::numeric_limits<T>::digits;
    switch (op) {
        case Op::add: return exact(x) + exact(y);
        case Op::sub: return exact(x) - exact(y);
        case Op::mul: return exact(x) * exact(y);
        case Op::div: return BigFloat::div(exact(x), exact(y), oracle_prec(p, N));
        case Op::sqrt: return BigFloat::sqrt(exact(x), oracle_prec(p, N));
    }
    return {};
}

/// The implementation under test.
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> apply_op(Op op, const MultiFloat<T, N>& x,
                                        const MultiFloat<T, N>& y) {
    switch (op) {
        case Op::add: return mf::add(x, y);
        case Op::sub: return mf::sub(x, y);
        case Op::mul: return mf::mul(x, y);
        case Op::div: return mf::div(x, y);
        case Op::sqrt: return mf::sqrt(x);
    }
    return {};
}

}  // namespace mf::check
