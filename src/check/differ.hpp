#pragma once
// Cross-backend differential checker: the scalar FPAN kernels are the
// reference semantics; every compiled SIMD backend, every pack width, and
// every parallel schedule must reproduce them bit-for-bit (DESIGN.md §8's
// bit-exactness rationale, checked here over the same structure-aware corpus
// the conformance runner fuzzes with).
//
// Three surfaces are diffed:
//   * elementwise planar kernels (add_range / fma_range) dispatched per
//     runtime backend vs. the width-1 scalar kernel;
//   * the dot reduction, which additionally pins the historical
//     eight-accumulator merge order for widths <= 8;
//   * gemm_tiled vs. sequential planar::gemm under varying OpenMP thread
//     counts and inside an enclosing parallel region (nesting guard);
//   * gemm_packed (the blas/engine packed cache-blocked GEMM) vs. sequential
//     planar::gemm across every available backend, thread count, and
//     threading substrate (OpenMP and the std::thread pool), including
//     deliberately tiny cache blocks so pack edges are exercised.
//
// Comparison is raw bit identity per limb, except that any-NaN == any-NaN:
// lanes that produce NaN must agree on NaN-ness, not on payload bits.

#include <bit>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "../blas/engine/gemm_packed.hpp"
#include "../blas/planar.hpp"
#include "../simd/simd.hpp"
#include "../simd/tiling.hpp"
#include "generators.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace mf::check {

/// One diffed (kernel, backend/schedule) combination.
struct DiffRecord {
    std::string kernel;   ///< "add_range" | "fma_range" | "dot" | "gemm_tiled" |
                          ///< "gemm_packed"
    std::string type;     ///< "double" | "float"
    int limbs = 0;
    std::string backend;  ///< backend name, or "threads=K" / "nested" for gemm
    int width = 0;        ///< pack lanes of the backend under test
    std::uint64_t elements = 0;
    std::uint64_t mismatches = 0;
};

namespace detail {

template <typename T>
using Bits = std::conditional_t<sizeof(T) == 8, std::uint64_t, std::uint32_t>;

/// Bit identity with NaN-payload tolerance.
template <typename T>
[[nodiscard]] inline bool same_bits(T a, T b) noexcept {
    if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
    return std::bit_cast<Bits<T>>(a) == std::bit_cast<Bits<T>>(b);
}

/// RAII backend save/restore.
class BackendGuard {
public:
    BackendGuard() : saved_(simd::active_backend()) {}
    ~BackendGuard() { simd::set_backend(saved_); }
    BackendGuard(const BackendGuard&) = delete;
    BackendGuard& operator=(const BackendGuard&) = delete;

private:
    simd::Backend saved_;
};

template <std::floating_point T, int N>
void fill_vectors(std::mt19937_64& rng, std::size_t n, const GenConfig& cfg,
                  planar::Vector<T, N>& v) {
    v.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const Category cat = pick_category(rng, cfg);
        v.set(i, gen<T, N>(rng, cat == Category::cancellation ? Category::ladder : cat, cfg));
    }
}

template <std::floating_point T, int N>
[[nodiscard]] std::uint64_t count_mismatches(const planar::Vector<T, N>& a,
                                             const planar::Vector<T, N>& b,
                                             std::size_t n) {
    std::uint64_t bad = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const MultiFloat<T, N> va = a.get(i);
        const MultiFloat<T, N> vb = b.get(i);
        for (int k = 0; k < N; ++k) {
            if (!same_bits(va.limb[k], vb.limb[k])) {
                ++bad;
                break;
            }
        }
    }
    return bad;
}

}  // namespace detail

/// Diff every available backend's elementwise kernels and dot reduction
/// against the scalar width-1 reference over `rounds` corpora of `n`
/// elements each (sizes are perturbed per round to exercise tails).
/// A non-empty `only` restricts the sweep to that one backend by name.
template <std::floating_point T, int N>
[[nodiscard]] std::vector<DiffRecord> diff_backends(std::uint64_t seed, std::size_t n,
                                                    int rounds, const GenConfig& cfg = {},
                                                    std::string_view only = {}) {
    const char* type = sizeof(T) == 8 ? "double" : "float";
    std::vector<DiffRecord> out;
    detail::BackendGuard guard;
    for (simd::Backend b : {simd::Backend::scalar, simd::Backend::sse2,
                            simd::Backend::avx2, simd::Backend::avx512,
                            simd::Backend::neon}) {
        if (!simd::backend_available(b)) continue;
        if (!only.empty() && only != simd::backend_name(b)) continue;
        DiffRecord add_rec{"add_range", type, N, simd::backend_name(b),
                           simd::backend_width<T>(b), 0, 0};
        DiffRecord fma_rec{"fma_range", type, N, simd::backend_name(b),
                           simd::backend_width<T>(b), 0, 0};
        DiffRecord dot_rec{"dot", type, N, simd::backend_name(b),
                           simd::backend_width<T>(b), 0, 0};
        std::mt19937_64 rng(seed);  // same corpus for every backend
        for (int r = 0; r < rounds; ++r) {
            const std::size_t len = n + static_cast<std::size_t>(rng() % 17);
            planar::Vector<T, N> x, y, y2, z_ref, z_got;
            detail::fill_vectors(rng, len, cfg, x);
            detail::fill_vectors(rng, len, cfg, y);
            const MultiFloat<T, N> alpha =
                gen<T, N>(rng, Category::ladder, cfg);
            z_ref.resize(len);
            z_got.resize(len);
            const T* xp[N];
            const T* yp[N];
            T* rp[N];
            T* gp[N];
            for (int k = 0; k < N; ++k) {
                xp[k] = x.plane(k);
                yp[k] = y.plane(k);
                rp[k] = z_ref.plane(k);
                gp[k] = z_got.plane(k);
            }
            // Reference: explicit width-1 scalar kernels.
            simd::kernels::add_range<T, N, 1>(xp, yp, rp, 0, len);
            const MultiFloat<T, N> dot_ref = simd::kernels::dot<T, N, 1>(xp, yp, len);
            planar::Vector<T, N> fma_ref = y;
            T* frp[N];
            for (int k = 0; k < N; ++k) frp[k] = fma_ref.plane(k);
            simd::kernels::fma_range<T, N, 1>(alpha, xp, frp, 0, len);

            // Under test: the dispatched path on backend b.
            simd::set_backend(b);
            simd::add_range<T, N>(xp, yp, gp, 0, len);
            add_rec.elements += len;
            add_rec.mismatches += detail::count_mismatches(z_ref, z_got, len);

            y2 = y;
            T* y2p[N];
            for (int k = 0; k < N; ++k) y2p[k] = y2.plane(k);
            simd::fma_range<T, N>(alpha, xp, y2p, 0, len);
            fma_rec.elements += len;
            fma_rec.mismatches += detail::count_mismatches(fma_ref, y2, len);

            const MultiFloat<T, N> dot_got = simd::dot<T, N>(xp, yp, len);
            ++dot_rec.elements;
            // The eight-accumulator merge order is pinned for widths <= 8;
            // wider backends legitimately reassociate the reduction.
            if (simd::backend_width<T>(b) <= 8) {
                for (int k = 0; k < N; ++k) {
                    if (!detail::same_bits(dot_got.limb[k], dot_ref.limb[k])) {
                        ++dot_rec.mismatches;
                        break;
                    }
                }
            }
        }
        out.push_back(std::move(add_rec));
        out.push_back(std::move(fma_rec));
        out.push_back(std::move(dot_rec));
    }
    return out;
}

/// Diff gemm_tiled against sequential planar::gemm under each requested
/// OpenMP thread count, plus one run nested inside an enclosing parallel
/// region (which must fall back to sequential execution, not oversubscribe).
template <std::floating_point T, int N>
[[nodiscard]] std::vector<DiffRecord> diff_gemm_threads(
    std::uint64_t seed, std::size_t n, std::size_t k, std::size_t m,
    const std::vector<int>& thread_counts, const GenConfig& cfg = {}) {
    const char* type = sizeof(T) == 8 ? "double" : "float";
    std::mt19937_64 rng(seed);
    planar::Vector<T, N> a, b;
    detail::fill_vectors(rng, n * k, cfg, a);
    detail::fill_vectors(rng, k * m, cfg, b);
    planar::Vector<T, N> want(n * m);
    planar::gemm(a, b, want, n, k, m);

    std::vector<DiffRecord> out;
    const simd::TileShape tile{4, 8, 5};  // ragged tiles: worst case for order bugs

#if defined(_OPENMP)
    const int saved_threads = omp_get_max_threads();
#endif
    for (int t : thread_counts) {
#if defined(_OPENMP)
        omp_set_num_threads(t);
#else
        if (t != 1) continue;
#endif
        planar::Vector<T, N> c(n * m);
        simd::gemm_tiled(planar::matrix_view(a, n, k), planar::matrix_view(b, k, m),
                         planar::matrix_view(c, n, m), tile);
        DiffRecord rec{"gemm_tiled", type, N, "threads=" + std::to_string(t),
                       simd::active_width<T>(), n * m,
                       detail::count_mismatches(c, want, n * m)};
        out.push_back(std::move(rec));
        // The packed engine under the same thread budget (its own worker
        // partition, not OpenMP's loop schedule -- max_threads caps it).
        planar::Vector<T, N> cp(n * m);
        blas::GemmConfig pcfg;
        pcfg.max_threads = static_cast<unsigned>(t);
        blas::gemm_packed(planar::matrix_view(a, n, k), planar::matrix_view(b, k, m),
                          planar::matrix_view(cp, n, m), pcfg);
        DiffRecord prec{"gemm_packed", type, N, "threads=" + std::to_string(t),
                        simd::active_width<T>(), n * m,
                        detail::count_mismatches(cp, want, n * m)};
        out.push_back(std::move(prec));
    }
#if defined(_OPENMP)
    omp_set_num_threads(saved_threads);
    {
        // Nested: every thread of an enclosing region issues its own GEMM;
        // the omp_in_parallel() guard must serialize each one.
        planar::Vector<T, N> c0(n * m), c1(n * m);
        planar::Vector<T, N>* cs[2] = {&c0, &c1};
        bool done[2] = {false, false};
        bool was_parallel = false;
#pragma omp parallel num_threads(2)
        {
            const int id = omp_get_thread_num();
#pragma omp critical
            was_parallel = was_parallel || omp_in_parallel() != 0;
            if (id < 2) {
                simd::gemm_tiled(planar::matrix_view(a, n, k),
                                 planar::matrix_view(b, k, m),
                                 planar::matrix_view(*cs[id], n, m), tile);
                done[id] = true;
            }
        }
        DiffRecord rec{"gemm_tiled", type, N, "nested", simd::active_width<T>(), 0, 0};
        for (int id = 0; id < 2; ++id) {
            if (!done[id]) continue;
            rec.elements += n * m;
            rec.mismatches += detail::count_mismatches(*cs[id], want, n * m);
        }
        if (!was_parallel) rec.backend = "nested(no-omp)";
        out.push_back(std::move(rec));
    }
#endif
    return out;
}

/// Diff gemm_packed against sequential planar::gemm across every available
/// backend x worker count x threading substrate (OpenMP-automatic and the
/// std::thread pool). `blocks` pins the cache blocks -- pass deliberately
/// tiny ones (e.g. {8, 8, 16}) to force many pack edges and remainder
/// micro-tiles; the default auto-selects per backend.
template <std::floating_point T, int N>
[[nodiscard]] std::vector<DiffRecord> diff_gemm_packed(
    std::uint64_t seed, std::size_t n, std::size_t k, std::size_t m,
    const std::vector<int>& thread_counts, const GenConfig& cfg = {},
    blas::BlockShape blocks = {}) {
    const char* type = sizeof(T) == 8 ? "double" : "float";
    std::mt19937_64 rng(seed);
    planar::Vector<T, N> a, b;
    detail::fill_vectors(rng, n * k, cfg, a);
    detail::fill_vectors(rng, k * m, cfg, b);
    planar::Vector<T, N> want(n * m);
    planar::gemm(a, b, want, n, k, m);

    std::vector<DiffRecord> out;
    detail::BackendGuard guard;
    for (simd::Backend bk : {simd::Backend::scalar, simd::Backend::sse2,
                             simd::Backend::avx2, simd::Backend::avx512,
                             simd::Backend::neon}) {
        if (!simd::backend_available(bk)) continue;
        simd::set_backend(bk);
        for (int t : thread_counts) {
            for (blas::engine::ThreadMode mode :
                 {blas::engine::ThreadMode::automatic,
                  blas::engine::ThreadMode::pool}) {
                planar::Vector<T, N> c(n * m);
                blas::GemmConfig pcfg;
                pcfg.blocks = blocks;
                pcfg.threads = mode;
                pcfg.max_threads = static_cast<unsigned>(t);
                blas::gemm_packed(planar::matrix_view(a, n, k),
                                  planar::matrix_view(b, k, m),
                                  planar::matrix_view(c, n, m), pcfg);
                std::string label = std::string(simd::backend_name(bk)) +
                                    "/threads=" + std::to_string(t) +
                                    (mode == blas::engine::ThreadMode::pool
                                         ? "/pool"
                                         : "/auto");
                DiffRecord rec{"gemm_packed", type, N, std::move(label),
                               simd::backend_width<T>(bk), n * m,
                               detail::count_mismatches(c, want, n * m)};
                out.push_back(std::move(rec));
            }
        }
    }
    return out;
}

}  // namespace mf::check
