#pragma once
// Umbrella header for mf::check, the oracle-driven differential-fuzzing and
// conformance subsystem:
//
//   #include <check/check.hpp>
//
//   auto stats = mf::check::run_conformance<double, 4>(
//       mf::check::Op::mul, /*seed=*/1, /*iters=*/100000);
//   assert(stats.clean());
//
// Layers (each usable on its own):
//   generators.hpp   structure-aware adversarial input generation
//   oracle.hpp       BigFloat oracle glue + the enforced error-bound table
//   conformance.hpp  per-op bound checking, slack histograms, counterexamples
//   differ.hpp       scalar-vs-SIMD and sequential-vs-tiled bit differs
//   shrink.hpp       counterexample minimization
//   corpus.hpp       replayable seed-corpus IO (tests/corpus/)
//   report.hpp       CHECK_*.json error-bound telemetry
//   robustness.hpp   mf::guard fault-injection matrix (env/alloc/thread)
//
// Driven by tools/mf_fuzz (CLI) and tests/conformance_test.cpp (ctest smoke
// tier, label `fuzz-smoke`; scale it up with MF_FUZZ_ITERS).

#include "conformance.hpp"
#include "corpus.hpp"
#include "differ.hpp"
#include "generators.hpp"
#include "oracle.hpp"
#include "report.hpp"
#include "robustness.hpp"
#include "shrink.hpp"
