#pragma once
// Robustness fault matrix: drives mf::guard's fault injection against the
// packed GEMM engine and verifies the DESIGN.md §12 contract case by case --
// every injected fault is either DETECTED (a sentinel violation counter
// fires) or ABSORBED (a degradation counter fires and the result stays
// bit-identical to the clean run). Zero crashes either way.
//
// Cases (all over one shared corpus and one clean-environment reference):
//
//   env-entry-{rz,ftz,daz}  hostile environment installed before the call;
//                           policy=enforce must detect it (violation counter,
//                           when="entry") AND neutralize it (bit-identical)
//   env-mid-rz              environment flipped at a mid-GEMM checkpoint;
//                           the sentinel's exit probe must detect it
//                           (when="exit") -- detection-only: work done after
//                           the flip legitimately rounds differently
//   alloc[k]                the k-th panel reservation throws bad_alloc;
//                           must degrade to the sequential unpacked path
//                           (mf_guard_degraded_total{path="alloc"}),
//                           bit-identical
//   thread[k]               the k-th worker spawn throws system_error; the
//                           calling thread must absorb the orphaned blocks
//                           (mf_guard_degraded_total{path="thread"}),
//                           bit-identical
//
// Used by tests/guard_degrade_test.cpp and `mf_fuzz --inject ...`.

#include <cstdio>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "../blas/engine/gemm_packed.hpp"
#include "../guard/guard.hpp"
#include "../telemetry/registry.hpp"
#include "differ.hpp"

namespace mf::check {

/// Outcome of one injected-fault case.
struct FaultCase {
    std::string name;
    bool expectation_met = false;  ///< detected/absorbed as the contract demands
    bool bit_identical = false;    ///< result bits match the clean-env run
    std::string detail;            ///< counter delta + mismatch count
};

/// Which fault classes to exercise (mf_fuzz --inject selects a subset).
struct RobustnessOptions {
    bool env = true;
    bool alloc = true;
    bool thread = true;
    std::uint64_t seed = 20250807;
};

namespace detail {

/// Sum of every telemetry counter whose name contains `needle`. With
/// telemetry compiled out the registry is empty and this returns 0 -- the
/// caller gates counter expectations on MF_TELEMETRY_ENABLED.
[[nodiscard]] inline std::uint64_t counters_containing(std::string_view needle) {
    std::uint64_t total = 0;
    for (const auto& c : telemetry::Registry::instance().snapshot().counters) {
        if (c.name.find(needle) != std::string::npos) total += c.value;
    }
    return total;
}

}  // namespace detail

/// Run the fault matrix. Restores policy, injection state, and the FP
/// environment on return; never throws, never crashes -- that IS the claim
/// under test.
[[nodiscard]] inline std::vector<FaultCase> run_fault_matrix(
    const RobustnessOptions& opt = {}) {
    using T = double;
    constexpr int N = 2;
    constexpr std::size_t n = 40, k = 9, m = 13;
    // Tiny pinned blocks: 5 macro-panels (many pack edges), 2 reservations
    // in serial mode, nw reservations + nw-1 spawns in pool mode.
    const blas::BlockShape tiny{8, 8, 16};

    const guard::Policy saved_policy = guard::policy();
    guard::inject::reset();

    GenConfig cfg;
    std::mt19937_64 rng(opt.seed);
    planar::Vector<T, N> a, b;
    detail::fill_vectors(rng, n * k, cfg, a);
    detail::fill_vectors(rng, k * m, cfg, b);
    planar::Vector<T, N> want(n * m);
    {
        guard::ScopedFpEnv clean;  // the reference is the nominal-env result
        planar::gemm(a, b, want, n, k, m);
    }

    std::vector<FaultCase> out;
    const auto run_case = [&](std::string name, std::string_view counter_needle,
                              bool require_identical, const blas::GemmConfig& gcfg,
                              auto&& inject_fault) {
        FaultCase fc;
        fc.name = std::move(name);
        const std::uint64_t before = detail::counters_containing(counter_needle);
        planar::Vector<T, N> c(n * m);
        {
            guard::FpEnvSaver restore;  // undo whatever the fault leaves behind
            inject_fault();
            blas::gemm_packed(planar::matrix_view(a, n, k),
                              planar::matrix_view(b, k, m),
                              planar::matrix_view(c, n, m), gcfg);
        }
        guard::inject::reset();
        const std::uint64_t delta =
            detail::counters_containing(counter_needle) - before;
        const std::uint64_t bad = detail::count_mismatches(c, want, n * m);
        fc.bit_identical = bad == 0;
#if MF_TELEMETRY_ENABLED
        const bool counted = delta >= 1;
#else
        const bool counted = true;  // counters compiled out: only bits checkable
#endif
        fc.expectation_met = counted && (!require_identical || fc.bit_identical);
        fc.detail = "counter_delta=" + std::to_string(delta) +
                    " mismatches=" + std::to_string(bad);
        out.push_back(std::move(fc));
    };

    blas::GemmConfig serial;
    serial.blocks = tiny;
    serial.threads = blas::engine::ThreadMode::serial;
    blas::GemmConfig pool;
    pool.blocks = tiny;
    pool.threads = blas::engine::ThreadMode::pool;
    pool.max_threads = 4;  // 5 blocks -> 4 planned workers, 3 spawns

    if (opt.env) {
        // Detection + neutralization needs enforce; warn would (correctly)
        // leave the hostile environment in place.
        guard::set_policy(guard::Policy::enforce);
        const struct {
            const char* tag;
            guard::Perturb p;
        } kinds[] = {
            {"rz", guard::Perturb::round_toward_zero},
            {"ftz", guard::Perturb::ftz},
            {"daz", guard::Perturb::daz},
        };
        for (const auto& kind : kinds) {
            if (!guard::perturb_supported(kind.p)) continue;
            run_case(std::string("env-entry-") + kind.tag, "when=\"entry\"",
                     /*require_identical=*/true, serial,
                     [&] { guard::apply_perturb(kind.p); });
        }
        run_case("env-mid-rz", "when=\"exit\"", /*require_identical=*/false,
                 serial, [&] {
                     guard::inject::arm_env(0,
                                            guard::Perturb::round_toward_zero);
                 });
        guard::set_policy(saved_policy);
    }

    if (opt.alloc) {
        // Serial: reservation order is B panel (0), slot-0 A block (1).
        for (long nth : {0L, 1L}) {
            run_case("alloc[" + std::to_string(nth) + "]-serial",
                     "path=\"alloc\"", /*require_identical=*/true, serial,
                     [&] { guard::inject::arm_alloc(nth); });
        }
        // Pool: B panel (0) then one A block per planned slot (1..4); fail
        // the last one so every earlier reservation has already succeeded.
        run_case("alloc[4]-pool", "path=\"alloc\"", /*require_identical=*/true,
                 pool, [&] { guard::inject::arm_alloc(4); });
    }

    if (opt.thread) {
        for (long nth : {0L, 1L}) {
            run_case("thread[" + std::to_string(nth) + "]-pool",
                     "path=\"thread\"", /*require_identical=*/true, pool,
                     [&] { guard::inject::arm_spawn(nth); });
        }
    }

    guard::set_policy(saved_policy);
    guard::inject::reset();
    return out;
}

/// All cases met their expectation (empty matrix counts as failure: the
/// caller asked for classes this build cannot exercise).
[[nodiscard]] inline bool fault_matrix_clean(const std::vector<FaultCase>& cases) {
    if (cases.empty()) return false;
    for (const FaultCase& fc : cases) {
        if (!fc.expectation_met) return false;
    }
    return true;
}

inline void print_fault_matrix(const std::vector<FaultCase>& cases,
                               std::FILE* outf = stdout) {
    for (const FaultCase& fc : cases) {
        std::fprintf(outf, "  [%s] %-18s %s (%s)\n",
                     fc.expectation_met ? "ok" : "FAIL", fc.name.c_str(),
                     fc.bit_identical ? "bit-identical" : "divergent",
                     fc.detail.c_str());
    }
}

}  // namespace mf::check
