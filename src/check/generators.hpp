#pragma once
// Structure-aware input generation for the mf::check conformance layer.
//
// The FPAN error bounds are worst-case claims, and the companion CAV'25
// verification work shows the worst cases live in narrow structural corners:
// sums that straddle a power of two, near-total cancellation, limbs parked
// exactly on the half-ulp nonoverlap boundary, and expansions whose tails
// descend into gradual underflow (where termwise EFTs stop being exact,
// paper §4.4). Uniform random inputs almost never land there, so every
// generator here manufactures one corner deliberately and the conformance
// runner mixes them by weight.
//
// All generators return *valid* strictly nonoverlapping expansions (Eq. 8)
// unless the category is Category::special, which produces the Inf/NaN/
// signed-zero embeddings the raw kernels explicitly do not promise to
// handle (the *_ieee wrappers do; see mf/ieee.hpp).

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <utility>

#include "../mf/multifloat.hpp"

namespace mf::check {

/// Structural corner a generated input aims at.
enum class Category : int {
    ladder = 0,     ///< random gap ladder, tight to sparse (the general case)
    straddle,       ///< leading limb hugs a power of two from either side
    cancellation,   ///< pairwise: y ~ -x with one limb nudged
    boundary,       ///< |limb[i]| == (1/2) ulp(limb[i-1]) exactly (Eq. 8 edge)
    subnormal,      ///< tail (or lead) limbs inside gradual underflow
    near_overflow,  ///< leading exponent a few steps below overflow
    special,        ///< Inf / NaN / signed-zero embeddings
};
inline constexpr int category_count = 7;

[[nodiscard]] constexpr const char* category_name(Category c) noexcept {
    switch (c) {
        case Category::ladder: return "ladder";
        case Category::straddle: return "straddle";
        case Category::cancellation: return "cancellation";
        case Category::boundary: return "boundary";
        case Category::subnormal: return "subnormal";
        case Category::near_overflow: return "near_overflow";
        case Category::special: return "special";
    }
    return "?";
}

/// Knobs for the generators. The three domain extensions are off by default
/// because the paper's bounds assume every limb stays strictly normal and
/// finite (§4.4): callers that only want bound-checkable inputs get exactly
/// the historical adversarial distribution, callers probing the full domain
/// opt in.
struct GenConfig {
    int lead_min = -30;  ///< leading-limb exponent range (ldexp scale)
    int lead_max = 30;
    bool subnormals = false;     ///< emit Category::subnormal inputs
    bool near_overflow = false;  ///< emit Category::near_overflow inputs
    bool specials = false;       ///< emit Category::special inputs
};

namespace detail {

template <FloatingPoint T>
[[nodiscard]] inline T uniform_mantissa(std::mt19937_64& rng) {
    std::uniform_real_distribution<T> u(T(1), T(2));
    return u(rng);
}

}  // namespace detail

/// Clamp trailing limbs so the expansion satisfies strict nonoverlap
/// (|lo| < (1/2) ulp(hi)), occasionally placing a limb exactly on the
/// allowed |lo| == (1/2) ulp(hi) boundary (a power of two). Limbs after a
/// zero limb are zeroed (canonical form). Safe on subnormal limbs: ldexp
/// below the subnormal floor flushes the limb to zero.
template <FloatingPoint T, int N>
void enforce_nonoverlap(MultiFloat<T, N>& x, std::mt19937_64& rng,
                        bool exact_boundary_jitter = true) {
    constexpr int p = std::numeric_limits<T>::digits;
    for (int i = 1; i < N; ++i) {
        const T hi = x.limb[i - 1];
        T& lo = x.limb[i];
        if (hi == T(0) || !std::isfinite(hi)) {
            lo = T(0);
            continue;
        }
        if (lo == T(0)) continue;
        const int cap = std::ilogb(hi) - p - 1;
        if (std::ilogb(lo) > cap) lo = std::ldexp(lo, cap - std::ilogb(lo));
        if (exact_boundary_jitter && rng() % 17 == 0) {
            lo = std::copysign(std::ldexp(T(1), cap + 1), lo);
        }
    }
}

/// Random gap ladder: random signs, limb-to-limb exponent gaps from tight
/// (p) to sparse (2p + 12), occasional zero tails. This is the historical
/// tests/support.hpp adversarial distribution, with the hardcoded
/// "stay clear of subnormals" cutoff now governed by cfg.subnormals.
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> gen_ladder(std::mt19937_64& rng, const GenConfig& cfg,
                                          int lead_exp) {
    constexpr int p = std::numeric_limits<T>::digits;
    std::uniform_int_distribution<int> gapd(0, 12);
    MultiFloat<T, N> x{};
    int e = lead_exp;
    for (int i = 0; i < N; ++i) {
        if (i > 0 && rng() % 6 == 0) break;
        // Without the subnormal extension, stop before any limb could land
        // in gradual underflow: termwise EFTs are only exact on normals.
        if (!cfg.subnormals && e < std::numeric_limits<T>::min_exponent + p) break;
        if (e < std::numeric_limits<T>::min_exponent - p) break;  // would flush to 0
        x.limb[i] = std::ldexp(detail::uniform_mantissa<T>(rng) * (rng() % 2 ? T(1) : T(-1)), e);
        e -= p + gapd(rng) + (rng() % 3 == 0 ? p : 0);
    }
    enforce_nonoverlap(x, rng);
    return x;
}

template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> gen_ladder(std::mt19937_64& rng, const GenConfig& cfg) {
    std::uniform_int_distribution<int> lead(cfg.lead_min, cfg.lead_max);
    return gen_ladder<T, N>(rng, cfg, lead(rng));
}

/// Leading limb parked right at a power of two: either 2^e * (1 + k ulps)
/// just above, or nextafter(2^e, 0) side just below. Sums and products of
/// such values straddle the exponent boundary where ulp() halves -- the
/// regime where renormalization carries propagate furthest.
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> gen_straddle(std::mt19937_64& rng, const GenConfig& cfg) {
    constexpr int p = std::numeric_limits<T>::digits;
    std::uniform_int_distribution<int> lead(cfg.lead_min, cfg.lead_max);
    const int e = lead(rng);
    const int k = static_cast<int>(rng() % 4);  // ulps of offset from 2^e
    T m;
    if (rng() % 2) {
        m = T(1) + std::ldexp(T(k), -(p - 1));  // just above 2^e
    } else {
        m = T(2) - std::ldexp(T(1 + k), -(p - 1));  // just below 2^(e+1)
    }
    MultiFloat<T, N> x{};
    x.limb[0] = std::copysign(std::ldexp(m, e), rng() % 2 ? T(1) : T(-1));
    int le = e - p - static_cast<int>(rng() % 3);
    for (int i = 1; i < N; ++i) {
        if (rng() % 4 == 0) break;
        if (!cfg.subnormals && le < std::numeric_limits<T>::min_exponent + p) break;
        x.limb[i] = std::ldexp(detail::uniform_mantissa<T>(rng) * (rng() % 2 ? T(1) : T(-1)), le);
        le -= p + static_cast<int>(rng() % 3);
    }
    enforce_nonoverlap(x, rng, /*exact_boundary_jitter=*/false);
    return x;
}

/// Every trailing limb exactly on the Eq. 8 equality edge:
/// |limb[i]| == (1/2) ulp(limb[i-1]) == 2^(ilogb(limb[i-1]) - p).
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> gen_boundary(std::mt19937_64& rng, const GenConfig& cfg) {
    constexpr int p = std::numeric_limits<T>::digits;
    std::uniform_int_distribution<int> lead(cfg.lead_min, cfg.lead_max);
    MultiFloat<T, N> x{};
    int e = lead(rng);
    x.limb[0] = std::ldexp(detail::uniform_mantissa<T>(rng) * (rng() % 2 ? T(1) : T(-1)), e);
    for (int i = 1; i < N; ++i) {
        const int be = std::ilogb(x.limb[i - 1]) - p;
        if (be < std::numeric_limits<T>::min_exponent - 1 ||
            (!cfg.subnormals && be < std::numeric_limits<T>::min_exponent + p)) {
            break;
        }
        x.limb[i] = std::copysign(std::ldexp(T(1), be), rng() % 2 ? T(1) : T(-1));
    }
    return x;
}

/// Gradual underflow: either the tail descends through the subnormal range,
/// or (1 in 4) the leading limb itself is subnormal. Requires cfg.subnormals
/// semantics from the caller -- the paper's bounds do NOT apply here.
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> gen_subnormal(std::mt19937_64& rng, const GenConfig& cfg) {
    constexpr int p = std::numeric_limits<T>::digits;
    constexpr int emin = std::numeric_limits<T>::min_exponent;  // e.g. -1021 for double
    GenConfig sub = cfg;
    sub.subnormals = true;
    if (rng() % 4 == 0) {
        // Subnormal-leading: value in (0, 2^emin).
        MultiFloat<T, N> x{};
        const int e = emin - 2 - static_cast<int>(rng() % static_cast<unsigned>(p - 1));
        x.limb[0] = std::ldexp(detail::uniform_mantissa<T>(rng) * (rng() % 2 ? T(1) : T(-1)), e);
        return x;  // tail below a subnormal lead flushes to zero anyway
    }
    // Normal lead chosen so limb N-1 lands at or below the subnormal border.
    const int span = (N - 1) * (p + 4) + static_cast<int>(rng() % p);
    return gen_ladder<T, N>(rng, sub, emin + span - static_cast<int>(rng() % (2 * p)));
}

/// Leading exponent a few doublings below overflow; sums/products of two of
/// these probe the effective overflow threshold ("one machine epsilon below
/// the base type's", README semantics caveats).
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> gen_near_overflow(std::mt19937_64& rng, const GenConfig& cfg) {
    constexpr int emax = std::numeric_limits<T>::max_exponent;  // 1024 for double
    GenConfig wide = cfg;
    const int e = emax - 1 - static_cast<int>(rng() % 6);  // ilogb in [emax-6, emax-1]
    return gen_ladder<T, N>(rng, wide, e);
}

/// Inf / NaN / signed-zero embeddings: a special leading limb with a zero
/// tail (the canonical embedding of the special into an expansion).
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> gen_special(std::mt19937_64& rng, const GenConfig&) {
    MultiFloat<T, N> x{};
    switch (rng() % 5) {
        case 0: x.limb[0] = std::numeric_limits<T>::infinity(); break;
        case 1: x.limb[0] = -std::numeric_limits<T>::infinity(); break;
        case 2: x.limb[0] = std::numeric_limits<T>::quiet_NaN(); break;
        case 3: x.limb[0] = T(0); break;
        case 4: x.limb[0] = -T(0); break;
    }
    return x;
}

/// y ~ -x with one limb nudged: maximal cancellation through the networks.
/// The nudged limb may land one ulp past the strict Eq. 8 boundary -- an
/// intentional stressor (the kernels must renormalize such
/// boundary-straddling inputs, and the bounds must survive them), so the
/// partner is the one non-special generator output that is not guaranteed
/// strictly nonoverlapping.
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> cancellation_partner(const MultiFloat<T, N>& x,
                                                    std::mt19937_64& rng) {
    MultiFloat<T, N> y = -x;
    const auto k = static_cast<int>(rng() % static_cast<unsigned>(N));
    if (y.limb[k] != T(0) && std::isfinite(y.limb[k])) {
        y.limb[k] = std::nextafter(y.limb[k], rng() % 2 ? T(4) : T(-4));
    }
    return y;
}

/// Weighted category pick honoring the cfg domain extensions. Disabled
/// categories fold back into the ladder bucket, so the weights of the
/// always-on structural corners are unchanged by the flags.
[[nodiscard]] inline Category pick_category(std::mt19937_64& rng, const GenConfig& cfg) {
    const unsigned r = static_cast<unsigned>(rng() % 100);
    if (r < 45) return Category::ladder;
    if (r < 60) return Category::straddle;
    if (r < 75) return Category::cancellation;
    if (r < 85) return Category::boundary;
    if (r < 91) return cfg.subnormals ? Category::subnormal : Category::ladder;
    if (r < 96) return cfg.near_overflow ? Category::near_overflow : Category::ladder;
    return cfg.specials ? Category::special : Category::ladder;
}

/// One expansion of the requested category.
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> gen(std::mt19937_64& rng, Category cat,
                                   const GenConfig& cfg = {}) {
    switch (cat) {
        case Category::straddle: return gen_straddle<T, N>(rng, cfg);
        case Category::boundary: return gen_boundary<T, N>(rng, cfg);
        case Category::subnormal: return gen_subnormal<T, N>(rng, cfg);
        case Category::near_overflow: return gen_near_overflow<T, N>(rng, cfg);
        case Category::special: return gen_special<T, N>(rng, cfg);
        case Category::ladder:
        case Category::cancellation:  // pairwise structure; x itself is a ladder
            break;
    }
    return gen_ladder<T, N>(rng, cfg);
}

/// An operand pair of the given category. For Category::cancellation the
/// second operand is the nudged negation of the first (maximal cancellation
/// through an addition network); for Category::straddle the pair brackets
/// the same power of two from both sides so x + y crosses it.
template <FloatingPoint T, int N>
[[nodiscard]] std::pair<MultiFloat<T, N>, MultiFloat<T, N>> gen_pair(
    std::mt19937_64& rng, Category cat, const GenConfig& cfg = {}) {
    MultiFloat<T, N> x = gen<T, N>(rng, cat, cfg);
    if (cat == Category::cancellation) {
        return {x, cancellation_partner(x, rng)};
    }
    if (cat == Category::straddle && rng() % 2 == 0 && std::isfinite(x.limb[0]) &&
        x.limb[0] != T(0)) {
        // Bracket the power of two 2^e nearest x's lead from the other side.
        MultiFloat<T, N> y = gen<T, N>(rng, Category::ladder, cfg);
        y.limb[0] = std::copysign(std::ldexp(T(1), std::ilogb(x.limb[0])), -x.limb[0]);
        enforce_nonoverlap(y, rng, false);
        return {x, y};
    }
    return {x, gen<T, N>(rng, cat, cfg)};
}

}  // namespace mf::check
