#include "bigint.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace mf::big {

void normalize(Limbs& v) {
    while (!v.empty() && v.back() == 0) v.pop_back();
}

bool is_zero(const Limbs& v) {
    for (Limb l : v)
        if (l != 0) return false;
    return true;
}

std::int64_t bit_length(const Limbs& v) {
    for (std::size_t i = v.size(); i-- > 0;) {
        if (v[i] != 0) {
            return static_cast<std::int64_t>(i) * limb_bits +
                   (limb_bits - std::countl_zero(v[i]));
        }
    }
    return 0;
}

bool get_bit(const Limbs& v, std::int64_t i) {
    if (i < 0) return false;
    const auto limb = static_cast<std::size_t>(i / limb_bits);
    if (limb >= v.size()) return false;
    return (v[limb] >> (i % limb_bits)) & 1u;
}

void set_bit(Limbs& v, std::int64_t i) {
    assert(i >= 0);
    const auto limb = static_cast<std::size_t>(i / limb_bits);
    if (limb >= v.size()) v.resize(limb + 1, 0);
    v[limb] |= Limb(1) << (i % limb_bits);
}

bool any_below(const Limbs& v, std::int64_t i) {
    if (i <= 0) return false;
    const auto whole = static_cast<std::size_t>(i / limb_bits);
    const int part = static_cast<int>(i % limb_bits);
    for (std::size_t k = 0; k < whole && k < v.size(); ++k)
        if (v[k] != 0) return true;
    if (part != 0 && whole < v.size()) {
        const Limb mask = (Limb(1) << part) - 1;
        if (v[whole] & mask) return true;
    }
    return false;
}

int ucmp(const Limbs& a, const Limbs& b) {
    const std::int64_t la = bit_length(a);
    const std::int64_t lb = bit_length(b);
    if (la != lb) return la < lb ? -1 : 1;
    const std::size_t n = static_cast<std::size_t>((la + limb_bits - 1) / limb_bits);
    for (std::size_t i = n; i-- > 0;) {
        const Limb x = i < a.size() ? a[i] : 0;
        const Limb y = i < b.size() ? b[i] : 0;
        if (x != y) return x < y ? -1 : 1;
    }
    return 0;
}

Limbs uadd(const Limbs& a, const Limbs& b) {
    const std::size_t n = std::max(a.size(), b.size());
    Limbs r(n + 1, 0);
    unsigned __int128 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
        unsigned __int128 s = carry;
        if (i < a.size()) s += a[i];
        if (i < b.size()) s += b[i];
        r[i] = static_cast<Limb>(s);
        carry = s >> limb_bits;
    }
    r[n] = static_cast<Limb>(carry);
    normalize(r);
    return r;
}

Limbs usub(const Limbs& a, const Limbs& b) {
    assert(ucmp(a, b) >= 0);
    Limbs r(a.size(), 0);
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const Limb bi = i < b.size() ? b[i] : 0;
        const Limb ai = a[i];
        Limb d = ai - bi;
        const std::int64_t next_borrow = (ai < bi) || (borrow && d == 0) ? 1 : 0;
        d -= static_cast<Limb>(borrow);
        r[i] = d;
        borrow = next_borrow;
    }
    assert(borrow == 0);
    normalize(r);
    return r;
}

void uinc(Limbs& a) {
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (++a[i] != 0) return;
    }
    a.push_back(1);
}

Limbs ushl(const Limbs& a, std::int64_t bits) {
    assert(bits >= 0);
    if (is_zero(a) || bits == 0) {
        Limbs r = a;
        normalize(r);
        return r;
    }
    const auto whole = static_cast<std::size_t>(bits / limb_bits);
    const int part = static_cast<int>(bits % limb_bits);
    Limbs r(a.size() + whole + 1, 0);
    for (std::size_t i = 0; i < a.size(); ++i) {
        r[i + whole] |= part == 0 ? a[i] : (a[i] << part);
        if (part != 0) r[i + whole + 1] |= a[i] >> (limb_bits - part);
    }
    normalize(r);
    return r;
}

Limbs ushr(const Limbs& a, std::int64_t bits, bool* sticky) {
    assert(bits >= 0);
    if (sticky) *sticky = any_below(a, bits);
    const auto whole = static_cast<std::size_t>(bits / limb_bits);
    const int part = static_cast<int>(bits % limb_bits);
    if (whole >= a.size()) return {};
    Limbs r(a.size() - whole, 0);
    for (std::size_t i = 0; i < r.size(); ++i) {
        r[i] = part == 0 ? a[i + whole] : (a[i + whole] >> part);
        if (part != 0 && i + whole + 1 < a.size())
            r[i] |= a[i + whole + 1] << (limb_bits - part);
    }
    normalize(r);
    return r;
}

Limbs umul(const Limbs& a, const Limbs& b) {
    if (is_zero(a) || is_zero(b)) return {};
    Limbs r(a.size() + b.size(), 0);
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] == 0) continue;
        Limb carry = 0;
        for (std::size_t j = 0; j < b.size(); ++j) {
            const unsigned __int128 cur =
                static_cast<unsigned __int128>(a[i]) * b[j] + r[i + j] + carry;
            r[i + j] = static_cast<Limb>(cur);
            carry = static_cast<Limb>(cur >> limb_bits);
        }
        r[i + b.size()] += carry;
    }
    normalize(r);
    return r;
}

DivResult udivrem(const Limbs& a, const Limbs& b) {
    assert(!is_zero(b));
    DivResult res;
    if (ucmp(a, b) < 0) {
        res.rem = a;
        normalize(res.rem);
        return res;
    }
    const std::int64_t la = bit_length(a);
    const std::int64_t lb = bit_length(b);
    // Restoring shift-subtract division, one quotient bit per step.
    Limbs rem;
    Limbs quot;
    for (std::int64_t i = la - 1; i >= 0; --i) {
        rem = ushl(rem, 1);
        if (get_bit(a, i)) {
            if (rem.empty()) rem.push_back(1);
            else rem[0] |= 1;
        }
        if (ucmp(rem, b) >= 0) {
            rem = usub(rem, b);
            set_bit(quot, i);
        }
    }
    (void)lb;
    res.quot = std::move(quot);
    res.rem = std::move(rem);
    normalize(res.quot);
    normalize(res.rem);
    return res;
}

SqrtResult usqrt(const Limbs& a) {
    SqrtResult res;
    if (is_zero(a)) return res;
    const std::int64_t la = bit_length(a);
    // Classical digit-by-digit method in base 2: process bit pairs from the
    // top; invariant rem = a_high - root^2 over the processed prefix.
    Limbs root;
    Limbs rem;
    std::int64_t i = la - 1;
    if (i % 2 == 0) ++i;  // make the window [i, i-1] cover an even boundary
    for (; i >= 1; i -= 2) {
        // Bring down two bits.
        rem = ushl(rem, 2);
        if (get_bit(a, i)) set_bit(rem, 1);
        if (get_bit(a, i - 1)) set_bit(rem, 0);
        // Trial subtrahend: (root << 2) + 1.
        Limbs trial = ushl(root, 2);
        if (trial.empty()) trial.push_back(1);
        else trial[0] |= 1;
        root = ushl(root, 1);
        if (ucmp(rem, trial) >= 0) {
            rem = usub(rem, trial);
            if (root.empty()) root.push_back(1);
            else root[0] |= 1;
        }
    }
    normalize(root);
    normalize(rem);
    res.root = std::move(root);
    res.rem = std::move(rem);
    return res;
}

Limbs from_u64(std::uint64_t x) {
    if (x == 0) return {};
    return {x};
}

}  // namespace mf::big
