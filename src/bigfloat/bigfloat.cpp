#include "bigfloat.hpp"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

namespace mf::big {

BigFloat::BigFloat(int sign, Limbs mag, std::int64_t exp)
    : sign_(sign), mag_(std::move(mag)), exp_(exp) {
    canonicalize();
}

void BigFloat::canonicalize() {
    normalize(mag_);
    if (mag_.empty()) {
        sign_ = 0;
        exp_ = 0;
        return;
    }
    // Strip trailing zero bits into the exponent so that equal values have
    // equal representations.
    std::int64_t tz = 0;
    while (!get_bit(mag_, tz)) ++tz;
    if (tz > 0) {
        mag_ = ushr(mag_, tz);
        exp_ += tz;
    }
}

BigFloat BigFloat::from_double(double x) {
    if (x == 0.0) return {};
    assert(std::isfinite(x));
    int sign = 1;
    if (x < 0) {
        sign = -1;
        x = -x;
    }
    int e = 0;
    const double frac = std::frexp(x, &e);  // x = frac * 2^e, frac in [0.5, 1)
    // frac * 2^53 is an integer <= 2^53 - ... (exact for any double).
    const auto mant = static_cast<std::uint64_t>(std::ldexp(frac, 53));
    return BigFloat(sign, from_u64(mant), static_cast<std::int64_t>(e) - 53);
}

BigFloat BigFloat::from_int(std::int64_t x) {
    if (x == 0) return {};
    const int sign = x < 0 ? -1 : 1;
    const auto mag = static_cast<std::uint64_t>(x < 0 ? -(x + 1) + 1 : x);
    return BigFloat(sign, from_u64(mag), 0);
}

BigFloat BigFloat::from_expansion(std::span<const double> limbs) {
    BigFloat acc;
    for (double l : limbs) acc = acc + from_double(l);
    return acc;
}

BigFloat BigFloat::from_expansion(std::span<const float> limbs) {
    BigFloat acc;
    for (float l : limbs) acc = acc + from_double(static_cast<double>(l));
    return acc;
}

std::int64_t BigFloat::ilogb() const {
    assert(!is_zero());
    return exp_ + bit_length(mag_) - 1;
}

std::int64_t BigFloat::mantissa_bits() const { return bit_length(mag_); }

BigFloat BigFloat::operator-() const {
    BigFloat r = *this;
    r.sign_ = -r.sign_;
    return r;
}

BigFloat BigFloat::abs() const {
    BigFloat r = *this;
    if (r.sign_ < 0) r.sign_ = 1;
    return r;
}

BigFloat operator+(const BigFloat& a, const BigFloat& b) {
    if (a.is_zero()) return b;
    if (b.is_zero()) return a;
    // Align to the smaller exponent; exact (magnitudes grow).
    const std::int64_t e = std::min(a.exp_, b.exp_);
    const Limbs ma = ushl(a.mag_, a.exp_ - e);
    const Limbs mb = ushl(b.mag_, b.exp_ - e);
    if (a.sign_ == b.sign_) return BigFloat(a.sign_, uadd(ma, mb), e);
    const int c = ucmp(ma, mb);
    if (c == 0) return {};
    if (c > 0) return BigFloat(a.sign_, usub(ma, mb), e);
    return BigFloat(b.sign_, usub(mb, ma), e);
}

BigFloat operator-(const BigFloat& a, const BigFloat& b) { return a + (-b); }

BigFloat operator*(const BigFloat& a, const BigFloat& b) {
    if (a.is_zero() || b.is_zero()) return {};
    return BigFloat(a.sign_ * b.sign_, umul(a.mag_, b.mag_), a.exp_ + b.exp_);
}

BigFloat BigFloat::ldexp(std::int64_t e) const {
    if (is_zero()) return {};
    return BigFloat(sign_, mag_, exp_ + e);
}

BigFloat BigFloat::round(std::int64_t prec) const {
    assert(prec >= 1);
    if (is_zero()) return {};
    const std::int64_t nbits = bit_length(mag_);
    if (nbits <= prec) return *this;
    const std::int64_t drop = nbits - prec;
    bool sticky = false;
    Limbs kept = ushr(mag_, drop, &sticky);
    const bool guard = get_bit(mag_, drop - 1);
    // "sticky" from ushr includes the guard bit; recompute below the guard.
    const bool below = any_below(mag_, drop - 1);
    const bool lsb = get_bit(kept, 0);
    if (guard && (below || lsb)) uinc(kept);
    return BigFloat(sign_, std::move(kept), exp_ + drop);
}

BigFloat BigFloat::div(const BigFloat& a, const BigFloat& b, std::int64_t prec) {
    assert(!b.is_zero());
    if (a.is_zero()) return {};
    // Scale the dividend so the integer quotient has prec + 1 significant
    // bits; the remainder then decides the final rounding exactly.
    const std::int64_t la = bit_length(a.mag_);
    const std::int64_t lb = bit_length(b.mag_);
    const std::int64_t shift = lb - la + prec + 1;
    const Limbs num = shift >= 0 ? ushl(a.mag_, shift) : Limbs(a.mag_);
    // (shift < 0 cannot occur when prec >= 1 and la <= lb + prec, and when it
    // would, shifting the denominator instead keeps everything integral.)
    Limbs den = b.mag_;
    const std::int64_t qexp = a.exp_ - b.exp_ - shift;
    if (shift < 0) den = ushl(den, -shift);
    auto [q, r] = udivrem(num, den);
    // Fold the remainder into a sticky bit one position below the quotient's
    // lsb (the quotient has >= prec + 1 bits, so the sticky sits below the
    // rounding guard), then round to nearest even.
    std::int64_t qe = qexp;
    if (!mf::big::is_zero(r)) {
        q = ushl(q, 1);
        q[0] |= 1;
        qe -= 1;
    }
    return BigFloat(a.sign_ * b.sign_, std::move(q), qe).round(prec);
}

BigFloat BigFloat::sqrt(const BigFloat& a, std::int64_t prec) {
    assert(a.sign_ >= 0);
    if (a.is_zero()) return {};
    // Scale a by an even power of two so that the integer square root has
    // at least prec + 1 bits.
    const std::int64_t la = bit_length(a.mag_);
    std::int64_t shift = 2 * (prec + 2) - la;
    if (shift < 0) shift = 0;
    if ((shift + a.exp_) % 2 != 0) ++shift;  // keep the scaled exponent even
    const Limbs scaled = ushl(a.mag_, shift);
    auto [s, r] = usqrt(scaled);
    std::int64_t se = (a.exp_ - shift) / 2;
    if (!mf::big::is_zero(r)) {
        // Inexact: append a sticky bit below the root before rounding.
        s = ushl(s, 1);
        s[0] |= 1;
        se -= 1;
    }
    return BigFloat(1, std::move(s), se).round(prec);
}

double BigFloat::to_double() const {
    if (is_zero()) return 0.0;
    const BigFloat r = round(53);
    const std::int64_t nbits = bit_length(r.mag_);
    // Reassemble the top (<= 53) bits into a uint64 and scale.
    std::uint64_t m = 0;
    for (std::int64_t i = nbits - 1; i >= 0 && i >= nbits - 53; --i) {
        m = (m << 1) | (get_bit(r.mag_, i) ? 1u : 0u);
    }
    const std::int64_t e = r.exp_ + (nbits > 53 ? nbits - 53 : 0);
    double d = static_cast<double>(m);
    d = std::ldexp(d, static_cast<int>(std::clamp<std::int64_t>(e, -4000, 4000)));
    return sign_ < 0 ? -d : d;
}

int BigFloat::cmp(const BigFloat& a, const BigFloat& b) {
    if (a.sign_ != b.sign_) return a.sign_ < b.sign_ ? -1 : 1;
    if (a.sign_ == 0) return 0;
    const BigFloat d = a - b;
    return d.sign_;
}

BigFloat ulp_at(const BigFloat& x, std::int64_t prec) {
    assert(!x.is_zero());
    BigFloat one = BigFloat::from_int(1);
    return one.ldexp(x.ilogb() - prec + 1);
}

// ---------------------------------------------------------------------------
// Decimal conversion.
// ---------------------------------------------------------------------------

namespace {

/// mag * 10, in place.
Limbs mul10(const Limbs& v) {
    return uadd(ushl(v, 3), ushl(v, 1));
}

/// Decimal digits of a bigint (most significant first), via repeated
/// division by 10^19.
std::string to_decimal(Limbs v) {
    if (is_zero(v)) return "0";
    const Limbs ten19 = from_u64(10000000000000000000ull);
    std::string out;
    while (!is_zero(v)) {
        auto [q, r] = udivrem(v, ten19);
        std::uint64_t chunk = r.empty() ? 0 : r[0];
        for (int i = 0; i < 19; ++i) {
            out.push_back(static_cast<char>('0' + chunk % 10));
            chunk /= 10;
        }
        v = std::move(q);
    }
    while (out.size() > 1 && out.back() == '0') out.pop_back();
    std::reverse(out.begin(), out.end());
    return out;
}

}  // namespace

std::string BigFloat::to_string(int digits10) const {
    if (is_zero()) return "0";
    if (digits10 < 1) digits10 = 1;
    // Find the decimal exponent d10 with |value| in [10^d10, 10^(d10+1)).
    const double approx_log10 = static_cast<double>(ilogb()) * 0.3010299956639812;
    auto d10 = static_cast<std::int64_t>(std::floor(approx_log10));
    // Compute digits = round(|value| * 10^(digits10 - 1 - d10)) with a
    // verification step in case the log10 estimate was off by one.
    for (int attempt = 0; attempt < 3; ++attempt) {
        const std::int64_t k = digits10 - 1 - d10;
        // scaled = mag * 2^exp * 10^k, evaluated exactly as a rational and
        // rounded to nearest integer.
        Limbs num = mag_;
        Limbs den = from_u64(1);
        if (k >= 0) {
            for (std::int64_t i = 0; i < k; ++i) num = mul10(num);
        } else {
            for (std::int64_t i = 0; i < -k; ++i) den = mul10(den);
        }
        if (exp_ >= 0) {
            num = ushl(num, exp_);
        } else {
            den = ushl(den, -exp_);
        }
        auto [q, r] = udivrem(num, den);
        // Round half up (presentation only).
        const Limbs r2 = ushl(r, 1);
        if (ucmp(r2, den) >= 0) uinc(q);
        std::string digits = to_decimal(q);
        if (static_cast<std::int64_t>(digits.size()) == digits10 + 1) {
            // Rounding overflowed into one extra digit (e.g. 999.9 -> 1000).
            ++d10;
            continue;
        }
        if (static_cast<std::int64_t>(digits.size()) < digits10) {
            --d10;
            continue;
        }
        std::ostringstream os;
        if (sign_ < 0) os << '-';
        os << digits[0];
        if (digits.size() > 1) os << '.' << digits.substr(1);
        os << 'e' << (d10 >= 0 ? "+" : "") << d10;
        return os.str();
    }
    return "<to_string failed>";
}

BigFloat BigFloat::from_string(const std::string& s, std::int64_t prec) {
    // Parse [-]ddd[.ddd][(e|E)[+-]ddd]
    std::size_t i = 0;
    int sign = 1;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) {
        if (s[i] == '-') sign = -1;
        ++i;
    }
    Limbs digits;
    std::int64_t frac_digits = 0;
    bool seen_digit = false;
    bool in_frac = false;
    for (; i < s.size(); ++i) {
        const char c = s[i];
        if (c >= '0' && c <= '9') {
            digits = uadd(mul10(digits), from_u64(static_cast<std::uint64_t>(c - '0')));
            if (in_frac) ++frac_digits;
            seen_digit = true;
        } else if (c == '.' && !in_frac) {
            in_frac = true;
        } else {
            break;
        }
    }
    if (!seen_digit) return {};
    std::int64_t e10 = 0;
    if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
        ++i;
        int esign = 1;
        if (i < s.size() && (s[i] == '+' || s[i] == '-')) {
            if (s[i] == '-') esign = -1;
            ++i;
        }
        std::int64_t ev = 0;
        for (; i < s.size() && s[i] >= '0' && s[i] <= '9'; ++i) {
            ev = ev * 10 + (s[i] - '0');
        }
        e10 = esign * ev;
    }
    e10 -= frac_digits;
    if (mf::big::is_zero(digits)) return {};
    // value = sign * digits * 10^e10; evaluate as a correctly rounded binary.
    if (e10 >= 0) {
        Limbs num = digits;
        for (std::int64_t k = 0; k < e10; ++k) num = mul10(num);
        BigFloat r(sign, std::move(num), 0);
        return r.round(prec);
    }
    Limbs den = from_u64(1);
    for (std::int64_t k = 0; k < -e10; ++k) den = mul10(den);
    const BigFloat num(sign, digits, 0);
    const BigFloat d(1, std::move(den), 0);
    return div(num, d, prec);
}

}  // namespace mf::big
