#pragma once
// Unsigned arbitrary-precision integer magnitudes: the digit layer beneath
// BigFloat. Little-endian vectors of 64-bit limbs, mirroring the
// representation the paper attributes to GMP/MPFR-class libraries
// ("big integers in base 2^64 using arrays of machine words as digits").
//
// Only the operations BigFloat needs are provided; all are value-semantic
// free functions over Limbs.

#include <cstdint>
#include <vector>

namespace mf::big {

using Limb = std::uint64_t;
using Limbs = std::vector<Limb>;

inline constexpr int limb_bits = 64;

/// Strip high-order zero limbs (canonical form; empty vector == 0).
void normalize(Limbs& v);

[[nodiscard]] bool is_zero(const Limbs& v);

/// Number of significant bits (0 for zero).
[[nodiscard]] std::int64_t bit_length(const Limbs& v);

/// Value of bit i (0 if beyond the top).
[[nodiscard]] bool get_bit(const Limbs& v, std::int64_t i);

/// Set bit i, growing as needed.
void set_bit(Limbs& v, std::int64_t i);

/// True if any bit strictly below position i is set.
[[nodiscard]] bool any_below(const Limbs& v, std::int64_t i);

/// -1 / 0 / +1 three-way magnitude comparison.
[[nodiscard]] int ucmp(const Limbs& a, const Limbs& b);

/// a + b.
[[nodiscard]] Limbs uadd(const Limbs& a, const Limbs& b);

/// a - b; requires a >= b.
[[nodiscard]] Limbs usub(const Limbs& a, const Limbs& b);

/// a += 1 (in place).
void uinc(Limbs& a);

/// a << bits (bits >= 0).
[[nodiscard]] Limbs ushl(const Limbs& a, std::int64_t bits);

/// a >> bits (bits >= 0); if sticky is non-null, *sticky reports whether any
/// shifted-out bit was set.
[[nodiscard]] Limbs ushr(const Limbs& a, std::int64_t bits, bool* sticky = nullptr);

/// a * b (schoolbook, 128-bit partials).
[[nodiscard]] Limbs umul(const Limbs& a, const Limbs& b);

/// Quotient and remainder of a / b; b != 0.
struct DivResult {
    Limbs quot;
    Limbs rem;
};
[[nodiscard]] DivResult udivrem(const Limbs& a, const Limbs& b);

/// Integer square root with remainder: s = floor(sqrt(a)), r = a - s*s.
struct SqrtResult {
    Limbs root;
    Limbs rem;
};
[[nodiscard]] SqrtResult usqrt(const Limbs& a);

/// Construct from a machine word.
[[nodiscard]] Limbs from_u64(std::uint64_t x);

}  // namespace mf::big
