#pragma once
// BigFloat: an arbitrary-precision binary floating-point number with
// MPFR-style semantics, used both as
//
//   (1) the exact oracle for the entire test suite (every MultiFloat
//       operation is compared against correctly rounded BigFloat results),
//   (2) the "software FPU emulation" baseline of the paper's evaluation
//       (the GMP/MPFR/FLINT/Boost.Multiprecision library class: big-integer
//       mantissas plus branching alignment/normalization/rounding logic).
//
// Representation: value = sign * mag * 2^exp, where mag is an arbitrary-size
// unsigned integer (bigint.hpp) and exp a signed binary exponent. Arithmetic
// (+, -, *) is EXACT -- the magnitude simply grows -- and `round(prec)`
// performs a single correct round-to-nearest-even at any requested precision.
// Division and square root take an explicit precision and are correctly
// rounded using remainder information.

#include <cstdint>
#include <span>
#include <string>

#include "bigint.hpp"

namespace mf::big {

class BigFloat {
public:
    /// Zero.
    BigFloat() = default;

    /// Exact conversion from a machine double (every finite double is a
    /// dyadic rational).
    static BigFloat from_double(double x);

    /// Exact conversion from an integer.
    static BigFloat from_int(std::int64_t x);

    /// Exact sum of a floating-point expansion (the value a MultiFloat
    /// represents).
    static BigFloat from_expansion(std::span<const double> limbs);
    static BigFloat from_expansion(std::span<const float> limbs);

    /// value = sign * mag * 2^exp
    [[nodiscard]] int sign() const noexcept { return sign_; }
    [[nodiscard]] bool is_zero() const noexcept { return sign_ == 0; }

    /// Exponent of the leading bit: value in [2^e, 2^(e+1)) for positives.
    [[nodiscard]] std::int64_t ilogb() const;

    /// Number of significant bits in the magnitude.
    [[nodiscard]] std::int64_t mantissa_bits() const;

    [[nodiscard]] BigFloat operator-() const;
    [[nodiscard]] BigFloat abs() const;

    /// Exact arithmetic (no rounding; magnitudes grow as needed).
    friend BigFloat operator+(const BigFloat& a, const BigFloat& b);
    friend BigFloat operator-(const BigFloat& a, const BigFloat& b);
    friend BigFloat operator*(const BigFloat& a, const BigFloat& b);

    /// Exact scale by a power of two.
    [[nodiscard]] BigFloat ldexp(std::int64_t e) const;

    /// Correct round-to-nearest-even at `prec` significant bits.
    [[nodiscard]] BigFloat round(std::int64_t prec) const;

    /// Correctly rounded quotient / square root at `prec` significant bits.
    static BigFloat div(const BigFloat& a, const BigFloat& b, std::int64_t prec);
    static BigFloat sqrt(const BigFloat& a, std::int64_t prec);

    /// Nearest double (RNE; overflows to +-inf). Exact if representable.
    [[nodiscard]] double to_double() const;

    /// -1 / 0 / +1 signed comparison.
    [[nodiscard]] static int cmp(const BigFloat& a, const BigFloat& b);

    friend bool operator==(const BigFloat& a, const BigFloat& b) { return cmp(a, b) == 0; }
    friend bool operator<(const BigFloat& a, const BigFloat& b) { return cmp(a, b) < 0; }
    friend bool operator>(const BigFloat& a, const BigFloat& b) { return cmp(a, b) > 0; }
    friend bool operator<=(const BigFloat& a, const BigFloat& b) { return cmp(a, b) <= 0; }
    friend bool operator>=(const BigFloat& a, const BigFloat& b) { return cmp(a, b) >= 0; }

    /// Decimal rendering with `digits10` significant digits ("1.234e-5").
    [[nodiscard]] std::string to_string(int digits10) const;

    /// Parse a decimal string ("[-]ddd[.ddd][e[+-]dd]"), correctly rounded
    /// to `prec` bits. Returns zero on malformed input.
    static BigFloat from_string(const std::string& s, std::int64_t prec);

    /// Direct access for white-box tests.
    [[nodiscard]] const Limbs& magnitude() const noexcept { return mag_; }
    [[nodiscard]] std::int64_t raw_exponent() const noexcept { return exp_; }

private:
    BigFloat(int sign, Limbs mag, std::int64_t exp);
    void canonicalize();

    int sign_ = 0;           // -1, 0, +1
    Limbs mag_;              // unsigned magnitude; empty iff zero
    std::int64_t exp_ = 0;   // value = sign_ * mag_ * 2^exp_
};

/// ulp of the leading limb position at precision p: 2^(ilogb(x) - p + 1).
[[nodiscard]] BigFloat ulp_at(const BigFloat& x, std::int64_t prec);

}  // namespace mf::big
