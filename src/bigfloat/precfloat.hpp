#pragma once
// PrecFloat: BigFloat with MPFR-style fixed working precision -- every
// operation rounds to `Prec` bits (RNE). This is the benchmarkable face of
// the software-FPU baseline ("BigFloat (MPFR-like)" rows in the evaluation
// tables): the compile-time precision mirrors how the paper statically
// configures MPFR/FLINT/Boost at 53/103/156/208 bits.

#include "bigfloat.hpp"

namespace mf::big {

template <int Prec>
class PrecFloat {
public:
    static constexpr int precision = Prec;

    PrecFloat() = default;
    PrecFloat(double x) : v_(BigFloat::from_double(x)) {}
    explicit PrecFloat(BigFloat v) : v_(v.round(Prec)) {}

    [[nodiscard]] double to_double() const { return v_.to_double(); }
    [[nodiscard]] const BigFloat& value() const { return v_; }

    friend PrecFloat operator+(const PrecFloat& a, const PrecFloat& b) {
        return PrecFloat((a.v_ + b.v_).round(Prec), kRaw);
    }
    friend PrecFloat operator-(const PrecFloat& a, const PrecFloat& b) {
        return PrecFloat((a.v_ - b.v_).round(Prec), kRaw);
    }
    friend PrecFloat operator*(const PrecFloat& a, const PrecFloat& b) {
        return PrecFloat((a.v_ * b.v_).round(Prec), kRaw);
    }
    friend PrecFloat operator/(const PrecFloat& a, const PrecFloat& b) {
        return PrecFloat(BigFloat::div(a.v_, b.v_, Prec), kRaw);
    }
    PrecFloat operator-() const { return PrecFloat(-v_, kRaw); }

    PrecFloat& operator+=(const PrecFloat& o) { return *this = *this + o; }
    PrecFloat& operator-=(const PrecFloat& o) { return *this = *this - o; }
    PrecFloat& operator*=(const PrecFloat& o) { return *this = *this * o; }
    PrecFloat& operator/=(const PrecFloat& o) { return *this = *this / o; }

    friend PrecFloat sqrt(const PrecFloat& a) {
        return PrecFloat(BigFloat::sqrt(a.v_, Prec), kRaw);
    }

    friend bool operator==(const PrecFloat& a, const PrecFloat& b) {
        return BigFloat::cmp(a.v_, b.v_) == 0;
    }
    friend bool operator<(const PrecFloat& a, const PrecFloat& b) {
        return BigFloat::cmp(a.v_, b.v_) < 0;
    }

private:
    struct Raw {};
    static constexpr Raw kRaw{};
    PrecFloat(BigFloat v, Raw) : v_(std::move(v)) {}

    BigFloat v_;
};

}  // namespace mf::big
