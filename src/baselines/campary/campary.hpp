#pragma once
// CAMPARY-style "certified" floating-point expansion arithmetic after
// Joldes, Muller, Popescu & Tucker (ICMS 2016), reimplemented as the paper's
// CAMPARY baseline (the CUDA library is not available offline; see
// DESIGN.md §2). The paper benchmarks CAMPARY's *certified* algorithms --
// provably correct but branching -- and this implementation mirrors that
// design point: magnitude merges, VecSum distillation, and the branching
// VecSumErrBranch renormalization.
//
// Accuracy is validated against the BigFloat oracle in
// tests/baselines_test.cpp.

#include <algorithm>
#include <cmath>

#include "../../mf/eft.hpp"

namespace mf::campary {

template <int N>
struct Expansion {
    double x[N] = {};

    constexpr Expansion() = default;
    constexpr Expansion(double v) { x[0] = v; }

    explicit constexpr operator double() const { return x[0]; }
};

namespace detail {

/// VecSum (Ogita-Rump-Oishi distillation): bottom-up TwoSum chain.
template <int K>
inline void vec_sum(double (&f)[K]) {
    for (int i = K - 2; i >= 0; --i) {
        const auto [s, e] = two_sum(f[i], f[i + 1]);
        f[i] = s;
        f[i + 1] = e;
    }
}

/// VecSumErrBranch: branching compaction of a distilled sequence into at
/// most M nonzero limbs (transcription of the CAMPARY kernel).
template <int K, int M>
inline void vec_sum_err_branch(const double (&f)[K], double (&r)[M]) {
    for (int i = 0; i < M; ++i) r[i] = 0.0;
    double e = f[0];
    int j = 0;
    for (int i = 0; i < K - 1; ++i) {
        const auto [ri, e2] = fast_two_sum(e, f[i + 1]);
        if (e2 != 0.0) {
            if (j >= M - 1) {
                r[j] = ri;
                return;
            }
            r[j++] = ri;
            e = e2;
        } else {
            e = ri;
        }
    }
    if (e != 0.0 && j < M) r[j] = e;
}

/// Merge two magnitude-sorted arrays into one (branch per element).
template <int A, int B>
inline void merge_by_magnitude(const double (&a)[A], const double (&b)[B],
                               double (&out)[A + B]) {
    int i = 0;
    int j = 0;
    int k = 0;
    while (i < A && j < B) {
        out[k++] = std::fabs(a[i]) >= std::fabs(b[j]) ? a[i++] : b[j++];
    }
    while (i < A) out[k++] = a[i++];
    while (j < B) out[k++] = b[j++];
}

}  // namespace detail

/// Certified addition: merge + VecSum + branching renormalization.
/// (One-term expansions degrade to native arithmetic, as in CAMPARY.)
template <int N>
inline Expansion<N> operator+(const Expansion<N>& a, const Expansion<N>& b) {
    if constexpr (N == 1) {
        return Expansion<1>(a.x[0] + b.x[0]);
    } else {
    double f[2 * N];
    detail::merge_by_magnitude(a.x, b.x, f);
    detail::vec_sum(f);
    // A second distillation pass tightens partially overlapping errors
    // before compaction (CAMPARY applies VecSum repeatedly in renormalize).
    detail::vec_sum(f);
    Expansion<N> r;
    detail::vec_sum_err_branch(f, r.x);
    return r;
    }
}

template <int N>
inline Expansion<N> operator-(const Expansion<N>& a) {
    Expansion<N> r;
    for (int i = 0; i < N; ++i) r.x[i] = -a.x[i];
    return r;
}

template <int N>
inline Expansion<N> operator-(const Expansion<N>& a, const Expansion<N>& b) {
    return a + (-b);
}

/// Certified multiplication: all partial products down to the N-th order,
/// sorted by magnitude (branch-heavy), distilled and renormalized.
template <int N>
inline Expansion<N> operator*(const Expansion<N>& a, const Expansion<N>& b) {
    if constexpr (N == 1) {
        return Expansion<1>(a.x[0] * b.x[0]);
    } else {
    // Terms kept: TwoProd pairs for i+j <= N-2 (value + error), plain
    // products on the boundary i+j == N-1.
    constexpr int kPairs = (N * (N - 1)) / 2;   // i+j <= N-2
    constexpr int kBag = 2 * kPairs + N;
    double bag[kBag];
    int m = 0;
    for (int i = 0; i < N; ++i) {
        for (int j = 0; i + j <= N - 2; ++j) {
            const auto [p, e] = two_prod(a.x[i], b.x[j]);
            bag[m++] = p;
            bag[m++] = e;
        }
    }
    for (int i = 0; i < N; ++i) bag[m++] = a.x[i] * b.x[N - 1 - i];
    std::sort(bag, bag + kBag,
              [](double u, double v) { return std::fabs(u) > std::fabs(v); });
    detail::vec_sum(bag);
    detail::vec_sum(bag);
    Expansion<N> r;
    detail::vec_sum_err_branch(bag, r.x);
    return r;
    }
}

template <int N>
inline Expansion<N> operator*(const Expansion<N>& a, double b) {
    Expansion<N> wide(b);
    return a * wide;
}

template <int N>
inline Expansion<N>& operator+=(Expansion<N>& a, const Expansion<N>& b) {
    return a = a + b;
}
template <int N>
inline Expansion<N>& operator-=(Expansion<N>& a, const Expansion<N>& b) {
    return a = a - b;
}
template <int N>
inline Expansion<N>& operator*=(Expansion<N>& a, const Expansion<N>& b) {
    return a = a * b;
}

/// Division via Newton iteration on certified ops (CAMPARY's divExpans).
template <int N>
inline Expansion<N> operator/(const Expansion<N>& a, const Expansion<N>& b) {
    Expansion<N> r(1.0 / b.x[0]);
    const Expansion<N> one(1.0);
    const int iters = N <= 2 ? 2 : 3;
    for (int k = 0; k < iters; ++k) {
        Expansion<N> d = one - b * r;
        r = r + r * d;
    }
    Expansion<N> q = a * r;
    q = q + r * (a - b * q);
    return q;
}

template <int N>
inline Expansion<N> sqrt(const Expansion<N>& a) {
    if (a.x[0] == 0.0) return {};
    Expansion<N> r(1.0 / std::sqrt(a.x[0]));
    const Expansion<N> one(1.0);
    const Expansion<N> half(0.5);
    const int iters = N <= 2 ? 2 : 3;
    for (int k = 0; k < iters; ++k) {
        Expansion<N> d = one - a * (r * r);
        r = r + half * (r * d);
    }
    Expansion<N> s = a * r;
    s = s + half * (r * (a - s * s));
    return s;
}

template <int N>
inline Expansion<N> operator*(double a, const Expansion<N>& b) {
    return b * a;
}

}  // namespace mf::campary
