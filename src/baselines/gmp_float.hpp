#pragma once
// RAII wrapper over GMP's mpf_t: the one baseline from the paper's suite that
// is installed in this environment as the genuine library. mpf provides
// base-2^64 big-integer mantissas with (non-correctly-rounded) floating
// semantics -- the "software FPU emulation" approach of §2.2.
//
// Only the operations the BLAS benchmarks need are wrapped. Precision is set
// per-object at construction (GMP rounds capacity up to whole limbs).

#if defined(MF_HAVE_GMP)

#include <gmp.h>

#include <string>
#include <utility>

namespace mf::gmp {

class GmpFloat {
public:
    explicit GmpFloat(unsigned long prec_bits = 64) { mpf_init2(v_, prec_bits); }

    GmpFloat(double x, unsigned long prec_bits) {
        mpf_init2(v_, prec_bits);
        mpf_set_d(v_, x);
    }

    GmpFloat(const GmpFloat& o) {
        mpf_init2(v_, mpf_get_prec(o.v_));
        mpf_set(v_, o.v_);
    }

    GmpFloat(GmpFloat&& o) noexcept {
        mpf_init2(v_, mpf_get_prec(o.v_));
        mpf_swap(v_, o.v_);
    }

    GmpFloat& operator=(const GmpFloat& o) {
        if (this != &o) mpf_set(v_, o.v_);
        return *this;
    }

    GmpFloat& operator=(GmpFloat&& o) noexcept {
        mpf_swap(v_, o.v_);
        return *this;
    }

    ~GmpFloat() { mpf_clear(v_); }

    [[nodiscard]] double to_double() const { return mpf_get_d(v_); }
    [[nodiscard]] unsigned long precision() const { return mpf_get_prec(v_); }

    GmpFloat& operator+=(const GmpFloat& o) {
        mpf_add(v_, v_, o.v_);
        return *this;
    }
    GmpFloat& operator-=(const GmpFloat& o) {
        mpf_sub(v_, v_, o.v_);
        return *this;
    }
    GmpFloat& operator*=(const GmpFloat& o) {
        mpf_mul(v_, v_, o.v_);
        return *this;
    }
    GmpFloat& operator/=(const GmpFloat& o) {
        mpf_div(v_, v_, o.v_);
        return *this;
    }

    friend GmpFloat operator+(GmpFloat a, const GmpFloat& b) { return a += b; }
    friend GmpFloat operator-(GmpFloat a, const GmpFloat& b) { return a -= b; }
    friend GmpFloat operator*(GmpFloat a, const GmpFloat& b) { return a *= b; }
    friend GmpFloat operator/(GmpFloat a, const GmpFloat& b) { return a /= b; }

    /// Fused accumulate (y += a*x) without temporaries, for the BLAS kernels.
    void add_mul(const GmpFloat& a, const GmpFloat& x, GmpFloat& scratch) {
        mpf_mul(scratch.v_, a.v_, x.v_);
        mpf_add(v_, v_, scratch.v_);
    }

private:
    mpf_t v_;
};

/// Compile-time-precision variant usable as a drop-in number type in the
/// templated BLAS kernels (default construction must know its precision).
template <int Prec>
class GmpFixed : public GmpFloat {
public:
    GmpFixed() : GmpFloat(static_cast<unsigned long>(Prec)) {}
    GmpFixed(double x) : GmpFloat(x, static_cast<unsigned long>(Prec)) {}
    GmpFixed(const GmpFloat& o) : GmpFloat(o) {}

    friend GmpFixed operator+(GmpFixed a, const GmpFixed& b) { return a += b, a; }
    friend GmpFixed operator-(GmpFixed a, const GmpFixed& b) { return a -= b, a; }
    friend GmpFixed operator*(GmpFixed a, const GmpFixed& b) { return a *= b, a; }
    friend GmpFixed operator/(GmpFixed a, const GmpFixed& b) { return a /= b, a; }
};

}  // namespace mf::gmp

#endif  // MF_HAVE_GMP
