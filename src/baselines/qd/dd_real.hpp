#pragma once
// dd_real: double-double arithmetic after Hida, Li & Bailey, "Algorithms for
// quad-double precision floating point arithmetic" (ARITH-15, 2001) -- the
// algorithms underlying the QD 2.x library, reimplemented here as the "QD"
// baseline of the paper's evaluation (the library itself is not available
// offline; see DESIGN.md §2).
//
// The "accurate" (IEEE-style) variants are used throughout, matching the
// paper's benchmarking of certified/accurate configurations.

#include <cmath>

#include "../../mf/eft.hpp"

namespace mf::qd {

struct dd_real {
    double hi = 0.0;
    double lo = 0.0;

    constexpr dd_real() = default;
    constexpr dd_real(double h) : hi(h), lo(0.0) {}
    constexpr dd_real(double h, double l) : hi(h), lo(l) {}

    explicit constexpr operator double() const { return hi; }
};

// --- addition (QD's ieee_add) ---------------------------------------------

inline dd_real operator+(const dd_real& a, const dd_real& b) {
    auto [s1, s2] = two_sum(a.hi, b.hi);
    auto [t1, t2] = two_sum(a.lo, b.lo);
    s2 += t1;
    auto [u1, u2] = fast_two_sum(s1, s2);
    u2 += t2;
    auto [z1, z2] = fast_two_sum(u1, u2);
    return {z1, z2};
}

inline dd_real operator-(const dd_real& a, const dd_real& b) {
    return a + dd_real{-b.hi, -b.lo};
}

inline dd_real operator-(const dd_real& a) { return {-a.hi, -a.lo}; }

// --- multiplication ---------------------------------------------------------

inline dd_real operator*(const dd_real& a, const dd_real& b) {
    auto [p1, p2] = two_prod(a.hi, b.hi);
    p2 += a.hi * b.lo;
    p2 += a.lo * b.hi;
    auto [z1, z2] = fast_two_sum(p1, p2);
    return {z1, z2};
}

inline dd_real operator*(const dd_real& a, double b) {
    auto [p1, p2] = two_prod(a.hi, b);
    p2 += a.lo * b;
    auto [z1, z2] = fast_two_sum(p1, p2);
    return {z1, z2};
}

// --- division (QD's accurate_div: long division with branches) -------------

inline dd_real operator/(const dd_real& a, const dd_real& b) {
    const double q1 = a.hi / b.hi;
    dd_real r = a - b * q1;
    const double q2 = r.hi / b.hi;
    r = r - b * q2;
    const double q3 = r.hi / b.hi;
    auto [z1, z2] = fast_two_sum(q1, q2);
    return dd_real{z1, z2} + q3;
}

inline dd_real operator+(const dd_real& a, double b) { return a + dd_real(b); }
inline dd_real& operator+=(dd_real& a, const dd_real& b) { return a = a + b; }
inline dd_real& operator-=(dd_real& a, const dd_real& b) { return a = a - b; }
inline dd_real& operator*=(dd_real& a, const dd_real& b) { return a = a * b; }

inline dd_real sqrt(const dd_real& a) {
    // Karp & Markstein: one Newton step on the scalar rsqrt seed.
    if (a.hi == 0.0) return {};
    const double x = 1.0 / std::sqrt(a.hi);
    const double ax = a.hi * x;
    const dd_real ax2 = dd_real(ax) * dd_real(ax);
    const dd_real diff = a - ax2;
    return dd_real(ax) + dd_real(diff.hi * (x * 0.5));
}

inline bool operator<(const dd_real& a, const dd_real& b) {
    return a.hi < b.hi || (a.hi == b.hi && a.lo < b.lo);
}
inline bool operator==(const dd_real& a, const dd_real& b) {
    return a.hi == b.hi && a.lo == b.lo;
}

}  // namespace mf::qd
