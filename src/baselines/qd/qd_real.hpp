#pragma once
// qd_real: quad-double arithmetic after Hida, Li & Bailey, "Algorithms for
// quad-double precision floating point arithmetic" (ARITH-15, 2001),
// reimplemented as the paper's "QD" 4-term baseline (the QD library itself is
// not available offline; see DESIGN.md §2). The hallmark of this design --
// and the performance property the paper's evaluation measures -- is the
// data-dependent branching in renormalization and accumulation
// (quick_three_accum, renorm), which defeats vectorization.
//
// Accuracy is validated against the BigFloat oracle in
// tests/baselines_test.cpp.

#include <algorithm>
#include <cmath>

#include "../../mf/eft.hpp"
#include "dd_real.hpp"

namespace mf::qd {

struct qd_real {
    double x[4] = {0.0, 0.0, 0.0, 0.0};

    constexpr qd_real() = default;
    constexpr qd_real(double a) : x{a, 0.0, 0.0, 0.0} {}
    constexpr qd_real(double a, double b, double c, double d) : x{a, b, c, d} {}

    explicit constexpr operator double() const { return x[0]; }
};

namespace detail {

/// HLB renormalization of four overlapping doubles (branching
/// zero-elimination; transcription of QD's renorm(c0..c3)).
inline void renorm(double& c0, double& c1, double& c2, double& c3) {
    if (std::isinf(c0)) return;
    auto [t2, e3] = fast_two_sum(c2, c3);
    auto [t1, e2] = fast_two_sum(c1, t2);
    auto [t0, e1] = fast_two_sum(c0, t1);
    c0 = t0;
    c1 = e1;
    c2 = e2;
    c3 = e3;
    double s0 = c0;
    double s1 = c1;
    double s2 = 0.0;
    double s3 = 0.0;
    if (s1 != 0.0) {
        auto [a, b] = fast_two_sum(s1, c2);
        s1 = a;
        s2 = b;
        if (s2 != 0.0) {
            auto [c, d] = fast_two_sum(s2, c3);
            s2 = c;
            s3 = d;
        } else {
            auto [c, d] = fast_two_sum(s1, c3);
            s1 = c;
            s2 = d;
        }
    } else {
        auto [a, b] = fast_two_sum(s0, c2);
        s0 = a;
        s1 = b;
        if (s1 != 0.0) {
            auto [c, d] = fast_two_sum(s1, c3);
            s1 = c;
            s2 = d;
        } else {
            auto [c, d] = fast_two_sum(s0, c3);
            s0 = c;
            s1 = d;
        }
    }
    c0 = s0;
    c1 = s1;
    c2 = s2;
    c3 = s3;
}

/// Five-input variant (QD's renorm(c0..c4)): fold c4 in from the bottom.
inline void renorm(double& c0, double& c1, double& c2, double& c3, double c4) {
    if (std::isinf(c0)) return;
    auto [t3, e4] = fast_two_sum(c3, c4);
    auto [t2, e3] = fast_two_sum(c2, t3);
    auto [t1, e2] = fast_two_sum(c1, t2);
    auto [t0, e1] = fast_two_sum(c0, t1);
    c0 = t0;
    c1 = e1;
    c2 = e2;
    c3 = e3;
    c4 = e4;
    // Branching zero-elimination over (c0..c4), keeping four limbs.
    double s[4] = {c0, 0.0, 0.0, 0.0};
    int k = 0;
    double rest[4] = {c1, c2, c3, c4};
    for (int i = 0; i < 4; ++i) {
        auto [hi, lo] = fast_two_sum(s[k], rest[i]);
        s[k] = hi;
        if (lo != 0.0) {
            if (k < 3) {
                s[++k] = lo;
            }
        }
    }
    c0 = s[0];
    c1 = s[1];
    c2 = s[2];
    c3 = s[3];
}

/// QD's quick_three_accum: accumulate t into the (u, v) pair, emitting a
/// finished limb when one separates out (returns 0.0 otherwise). Branchy by
/// design.
inline double quick_three_accum(double& u, double& v, double t) {
    auto [s1, vv] = two_sum(v, t);
    auto [s, uu] = two_sum(u, s1);
    u = uu;
    v = vv;
    const bool zu = (uu != 0.0);
    const bool zv = (vv != 0.0);
    if (zu && zv) return s;
    if (!zv) {
        v = u;
        u = s;
    } else {
        u = s;
    }
    return 0.0;
}

/// three_sum / three_sum2 from the QD sources.
inline void three_sum(double& a, double& b, double& c) {
    auto [t1, t2] = two_sum(a, b);
    auto [s, t3] = two_sum(c, t1);
    a = s;
    auto [b2, c2] = two_sum(t2, t3);
    b = b2;
    c = c2;
}

inline void three_sum2(double& a, double& b, double c) {
    auto [t1, t2] = two_sum(a, b);
    auto [s, t3] = two_sum(c, t1);
    a = s;
    b = t2 + t3;
}

}  // namespace detail

// --- addition (HLB accurate qd+qd, "ieee_add") ------------------------------

inline qd_real operator+(const qd_real& a, const qd_real& b) {
    int i = 0;
    int j = 0;
    int k = 0;
    double u;
    double v;
    double x[4] = {0.0, 0.0, 0.0, 0.0};
    if (std::fabs(a.x[i]) > std::fabs(b.x[j])) {
        u = a.x[i++];
    } else {
        u = b.x[j++];
    }
    if (i < 4 && (j >= 4 || std::fabs(a.x[i]) > std::fabs(b.x[j]))) {
        v = a.x[i++];
    } else {
        v = b.x[j++];
    }
    {
        auto [s, e] = fast_two_sum(u, v);
        u = s;
        v = e;
    }
    while (k < 4) {
        if (i >= 4 && j >= 4) {
            x[k] = u;
            if (k < 3) x[++k] = v;
            break;
        }
        double t;
        if (i >= 4) {
            t = b.x[j++];
        } else if (j >= 4 || std::fabs(a.x[i]) > std::fabs(b.x[j])) {
            t = a.x[i++];
        } else {
            t = b.x[j++];
        }
        const double s = detail::quick_three_accum(u, v, t);
        if (s != 0.0) x[k++] = s;
    }
    // Add the remaining (below-threshold) terms into the last limb.
    for (int m = i; m < 4; ++m) x[3] += a.x[m];
    for (int m = j; m < 4; ++m) x[3] += b.x[m];
    detail::renorm(x[0], x[1], x[2], x[3]);
    return {x[0], x[1], x[2], x[3]};
}

inline qd_real operator-(const qd_real& a) {
    return {-a.x[0], -a.x[1], -a.x[2], -a.x[3]};
}

inline qd_real operator-(const qd_real& a, const qd_real& b) { return a + (-b); }

// --- multiplication (HLB accurate qd*qd structure) ---------------------------

inline qd_real operator*(const qd_real& a, const qd_real& b) {
    auto [p0, q0] = two_prod(a.x[0], b.x[0]);
    auto [p1, q1] = two_prod(a.x[0], b.x[1]);
    auto [p2, q2] = two_prod(a.x[1], b.x[0]);
    auto [p3, q3] = two_prod(a.x[0], b.x[2]);
    auto [p4, q4] = two_prod(a.x[1], b.x[1]);
    auto [p5, q5] = two_prod(a.x[2], b.x[0]);

    // Order-1 pile.
    detail::three_sum(p1, p2, q0);  // p1 main; p2, q0 pushed down
    // Order-2 pile.
    detail::three_sum(p2, q1, q2);  // p2 main; q1, q2 pushed down
    detail::three_sum(p2, p3, p4);  // fold p3, p4; they carry the errors
    auto [p2f, e5] = two_sum(p2, p5);
    // Order-3 pile (everything below contributes to the fourth limb).
    const double t = q0 + q1 + q2 + p3 + p4 + e5 + q3 + q4 + q5 +
                     a.x[0] * b.x[3] + a.x[1] * b.x[2] + a.x[2] * b.x[1] +
                     a.x[3] * b.x[0];
    double c0 = p0;
    double c1 = p1;
    double c2 = p2f;
    double c3 = t;
    detail::renorm(c0, c1, c2, c3);
    return {c0, c1, c2, c3};
}

inline qd_real operator*(const qd_real& a, double b) {
    auto [p0, q0] = two_prod(a.x[0], b);
    auto [p1, q1] = two_prod(a.x[1], b);
    auto [p2, q2] = two_prod(a.x[2], b);
    const double p3 = a.x[3] * b;
    // Level pooling as in the QD sources (mul_qd_d).
    auto [s1, s2i] = two_sum(q0, p1);
    double s2 = s2i;
    double e1 = q1;
    double e2 = p2;
    detail::three_sum(s2, e1, e2);  // s2 main; e1, e2 pushed down
    double s3 = e1;
    detail::three_sum2(s3, q2, p3);  // s3 main; q2 absorbed the rest
    const double s4 = q2 + e2;
    double c0 = p0;
    double c1 = s1;
    double c2 = s2;
    double c3 = s3;
    detail::renorm(c0, c1, c2, c3, s4);
    return {c0, c1, c2, c3};
}

inline qd_real& operator+=(qd_real& a, const qd_real& b) { return a = a + b; }
inline qd_real& operator-=(qd_real& a, const qd_real& b) { return a = a - b; }
inline qd_real& operator*=(qd_real& a, const qd_real& b) { return a = a * b; }

// --- division (HLB long division with branches) ------------------------------

inline qd_real operator/(const qd_real& a, const qd_real& b) {
    double q0 = a.x[0] / b.x[0];
    qd_real r = a - b * q0;
    double q1 = r.x[0] / b.x[0];
    r -= b * q1;
    double q2 = r.x[0] / b.x[0];
    r -= b * q2;
    double q3 = r.x[0] / b.x[0];
    r -= b * q3;
    const double q4 = r.x[0] / b.x[0];
    detail::renorm(q0, q1, q2, q3, q4);
    return {q0, q1, q2, q3};
}

inline qd_real sqrt(const qd_real& a) {
    if (a.x[0] == 0.0) return {};
    // Newton on 1/sqrt with a scalar seed, as in the QD sources.
    qd_real r(1.0 / std::sqrt(a.x[0]));
    const qd_real half(0.5);
    for (int i = 0; i < 3; ++i) {
        const qd_real rr = r * r;
        const qd_real d = qd_real(1.0) - a * rr;
        r = r + r * d * half;
    }
    return a * r;
}

inline bool operator==(const qd_real& a, const qd_real& b) {
    return a.x[0] == b.x[0] && a.x[1] == b.x[1] && a.x[2] == b.x[2] && a.x[3] == b.x[3];
}

}  // namespace mf::qd
