#include "checker.hpp"

#include <cmath>
#include <random>
#include <span>
#include <sstream>
#include <vector>

#include "../bigfloat/bigfloat.hpp"
#include "../softfloat/softfloat.hpp"
#include "executor.hpp"
#include "library.hpp"

namespace mf::fpan {

using big::BigFloat;
using soft::SoftFloat;

int paper_add_bound_bits(int n, int p) { return n == 2 ? 2 * p - 1 : n * p - n; }
int paper_mul_bound_bits(int n, int p) { return n == 2 ? 2 * p - 3 : n * p - n; }

namespace {

// ---------------------------------------------------------------------------
// Shared bookkeeping.
// ---------------------------------------------------------------------------

void record_error(CheckResult& res, const BigFloat& err, const BigFloat& exact,
                  int bound_bits) {
    if (err.is_zero()) return;
    if (exact.is_zero()) {
        res.pass = false;
        res.note = "nonzero error against exactly-zero result";
        return;
    }
    // rel = |err| / |exact|, compared against 2^-bound_bits.
    const BigFloat rel = BigFloat::div(err.abs(), exact.abs(), 64);
    const double l2 = static_cast<double>(rel.ilogb()) +
                      std::log2(std::abs(rel.to_double()) /
                                std::ldexp(1.0, static_cast<int>(rel.ilogb())));
    if (l2 > res.worst_err_log2) res.worst_err_log2 = l2;
    if (l2 > -static_cast<double>(bound_bits)) res.pass = false;
}

/// Nonoverlap audit of an output expansion given as doubles (MSB first).
void record_overlap(CheckResult& res, std::span<const double> z, int p) {
    for (std::size_t i = 1; i < z.size(); ++i) {
        const double hi = z[i - 1];
        const double lo = z[i];
        if (hi == 0.0) {
            if (lo != 0.0) {
                res.worst_overlap_bits = std::max(res.worst_overlap_bits, p);
                res.pass = false;
            }
            continue;
        }
        if (lo == 0.0) continue;
        const int gap = std::ilogb(hi) - std::ilogb(lo);
        int viol = p - gap;
        // |lo| == 2^(ilogb(hi) - p) exactly is allowed by Eq. 8.
        if (viol == 0 && std::abs(lo) == std::ldexp(1.0, std::ilogb(lo))) viol = -1;
        if (viol > 0) {
            res.worst_overlap_bits = std::max(res.worst_overlap_bits, viol);
            res.pass = false;
        }
    }
}

// ---------------------------------------------------------------------------
// Randomized double-precision campaigns (oracle: BigFloat).
// ---------------------------------------------------------------------------

/// Random nonoverlapping n-term expansion with assorted gap/sign/zero
/// patterns. Produced directly (not via the library's own add) so the checker
/// is independent of the code under test.
std::vector<double> random_expansion(std::mt19937_64& rng, int n) {
    std::uniform_real_distribution<double> u(1.0, 2.0);
    std::uniform_int_distribution<int> lead(-30, 30);
    std::uniform_int_distribution<int> gapd(0, 12);
    std::vector<double> x(static_cast<std::size_t>(n), 0.0);
    int e = lead(rng);
    for (int i = 0; i < n; ++i) {
        if (i > 0 && rng() % 6 == 0) break;  // zero tail
        const double m = u(rng) * (rng() % 2 ? 1.0 : -1.0);
        x[static_cast<std::size_t>(i)] = std::ldexp(m, e);
        e -= 53 + gapd(rng) + (rng() % 3 == 0 ? 53 : 0);  // tight or sparse
    }
    // Enforce strict nonoverlap: |lo| < (1/2) ulp(hi), with the boundary
    // value |lo| == (1/2) ulp(hi) (an exact power of two) mixed in.
    for (int i = 1; i < n; ++i) {
        const double hi = x[static_cast<std::size_t>(i - 1)];
        double& lo = x[static_cast<std::size_t>(i)];
        if (hi == 0.0) {
            lo = 0.0;
            continue;
        }
        if (lo == 0.0) continue;
        const int cap = std::ilogb(hi) - 54;
        if (std::ilogb(lo) > cap) {
            lo = std::ldexp(lo, cap - std::ilogb(lo));
        }
        if (rng() % 17 == 0) lo = std::copysign(std::ldexp(1.0, cap + 1), lo);
    }
    return x;
}

BigFloat exact_sum(std::span<const double> v) {
    BigFloat acc;
    for (double d : v) acc = acc + BigFloat::from_double(d);
    return acc;
}

}  // namespace

namespace {

CheckResult run_add_random(const Network& net, int n, long long trials,
                           std::uint64_t seed, int bound_bits, bool stop_on_fail) {
    CheckResult res;
    std::mt19937_64 rng(seed);
    std::vector<double> wires(static_cast<std::size_t>(net.num_wires));
    for (long long t = 0; t < trials && (res.pass || !stop_on_fail); ++t) {
        std::vector<double> x = random_expansion(rng, n);
        std::vector<double> y = random_expansion(rng, n);
        if (t % 5 == 1) {
            // Massive-cancellation adversary: y = -x perturbed in one limb.
            y = x;
            for (double& l : y) l = -l;
            const auto k = static_cast<std::size_t>(rng() % static_cast<unsigned>(n));
            if (y[k] != 0.0) {
                y[k] = std::nextafter(y[k], rng() % 2 ? 1e308 : -1e308);
            }
        }
        for (int i = 0; i < n; ++i) {
            wires[static_cast<std::size_t>(2 * i)] = x[static_cast<std::size_t>(i)];
            wires[static_cast<std::size_t>(2 * i + 1)] = y[static_cast<std::size_t>(i)];
        }
        const BigFloat exact = exact_sum(x) + exact_sum(y);
        execute(net, std::span<double>(wires));
        std::vector<double> z;
        z.reserve(net.outputs.size());
        for (int o : net.outputs) z.push_back(wires[static_cast<std::size_t>(o)]);
        const BigFloat err = exact_sum(z) - exact;
        record_error(res, err, exact, bound_bits);
        record_overlap(res, z, 53);
        ++res.cases;
    }
    return res;
}

}  // namespace

CheckResult check_add_random(const Network& net, int n, long long trials,
                             std::uint64_t seed, int bound_bits) {
    return run_add_random(net, n, trials, seed, bound_bits, /*stop_on_fail=*/true);
}

CheckResult measure_add_random(const Network& net, int n, long long trials,
                               std::uint64_t seed, int bound_bits) {
    return run_add_random(net, n, trials, seed, bound_bits, /*stop_on_fail=*/false);
}

CheckResult check_mul_random(const Network& net, int n, long long trials,
                             std::uint64_t seed, int bound_bits) {
    CheckResult res;
    std::mt19937_64 rng(seed);
    std::vector<double> wires(static_cast<std::size_t>(net.num_wires));
    const auto labels = mul_network_labels(n);
    for (long long t = 0; t < trials && res.pass; ++t) {
        const std::vector<double> x = random_expansion(rng, n);
        const std::vector<double> y = random_expansion(rng, n);
        // Expansion step: fill wires according to the label layout.
        for (std::size_t w = 0; w < labels.size(); ++w) {
            const auto& lbl = labels[w];
            const int i = lbl[1] - '0';
            const int j = lbl[2] - '0';
            const double px = x[static_cast<std::size_t>(i)];
            const double py = y[static_cast<std::size_t>(j)];
            if (lbl[0] == 'p') {
                wires[w] = px * py;
            } else {
                wires[w] = std::fma(px, py, -(px * py));
            }
        }
        const BigFloat exact = exact_sum(x) * exact_sum(y);
        execute(net, std::span<double>(wires));
        std::vector<double> z;
        z.reserve(net.outputs.size());
        for (int o : net.outputs) z.push_back(wires[static_cast<std::size_t>(o)]);
        const BigFloat err = exact_sum(z) - exact;
        record_error(res, err, exact, bound_bits);
        record_overlap(res, z, 53);
        ++res.cases;
    }
    return res;
}

// ---------------------------------------------------------------------------
// Exhaustive small-p campaigns (SoftFloat; exact accumulation at high p).
// ---------------------------------------------------------------------------

namespace {

/// All p-bit SoftFloats (plus zero) with leading exponent in [emin, emax].
std::vector<SoftFloat> all_values(int p, int emin, int emax) {
    std::vector<SoftFloat> out;
    soft::for_each_value(p, emin, emax, [&](const SoftFloat& v) { out.push_back(v); });
    return out;
}

/// All nonoverlapping n-term expansions with leading exponent in
/// [lead_min, lead_max] and tails reaching tail_depth exponents below each
/// limb's cap. Zero limbs truncate the expansion (per Eq. 8).
void enumerate_expansions(int n, int p, int lead_min, int lead_max, int tail_depth,
                          std::vector<std::vector<SoftFloat>>& out) {
    std::vector<SoftFloat> leads = all_values(p, lead_min, lead_max);
    std::vector<std::vector<SoftFloat>> partial;
    for (const auto& l : leads) partial.push_back({l});
    for (int i = 1; i < n; ++i) {
        std::vector<std::vector<SoftFloat>> next;
        for (const auto& e : partial) {
            const SoftFloat& prev = e.back();
            auto with_zero = e;
            with_zero.push_back(SoftFloat(p));
            next.push_back(std::move(with_zero));
            if (prev.is_zero()) continue;
            const std::int64_t cap = prev.ilogb() - p;  // boundary exponent
            for (const auto& v :
                 all_values(p, cap - tail_depth, cap)) {
                if (v.is_zero()) continue;
                // At the boundary exponent only exact powers of two qualify.
                if (v.ilogb() == cap &&
                    (v.mantissa() & (v.mantissa() - 1)) != 0) {
                    continue;
                }
                auto grown = e;
                grown.push_back(v);
                next.push_back(std::move(grown));
            }
        }
        partial = std::move(next);
    }
    out = std::move(partial);
}

/// Exact sum of small SoftFloats via a high-precision SoftFloat accumulator.
SoftFloat exact_sum_soft(std::span<const SoftFloat> v) {
    SoftFloat acc(62);
    for (const auto& s : v) {
        acc = acc + SoftFloat::make(62, s.sign(), s.mantissa(), s.exponent());
    }
    return acc;
}

void record_soft_case(CheckResult& res, std::span<const SoftFloat> z,
                      const SoftFloat& exact, int p, int bound_bits) {
    const SoftFloat err = exact_sum_soft(z) - exact;
    if (!err.is_zero()) {
        if (exact.is_zero()) {
            res.pass = false;
            res.note = "nonzero error against exactly-zero result";
        } else {
            const auto l2 = static_cast<double>(err.ilogb() - exact.ilogb());
            if (l2 > res.worst_err_log2) res.worst_err_log2 = l2;
            // Conservative: compare leading-bit exponents with 1-bit slack.
            if (err.ilogb() > exact.ilogb() - bound_bits) {
                // Refine: scale err by 2^bound and compare magnitudes.
                const SoftFloat scaled = SoftFloat::make(
                    62, 1, err.mantissa(), err.exponent() + bound_bits);
                SoftFloat ae = scaled;
                if (ae.sign() < 0) ae = -ae;
                SoftFloat ax = exact;
                if (ax.sign() < 0) ax = -ax;
                if (cmp(ax, ae) < 0) res.pass = false;
            }
        }
    }
    // Nonoverlap.
    for (std::size_t i = 1; i < z.size(); ++i) {
        const SoftFloat& hi = z[i - 1];
        const SoftFloat& lo = z[i];
        if (hi.is_zero()) {
            if (!lo.is_zero()) {
                res.worst_overlap_bits = std::max(res.worst_overlap_bits, p);
                res.pass = false;
            }
            continue;
        }
        if (lo.is_zero()) continue;
        const auto gap = static_cast<int>(hi.ilogb() - lo.ilogb());
        int viol = p - gap;
        if (viol == 0 && (lo.mantissa() & (lo.mantissa() - 1)) == 0) viol = -1;
        if (viol > 0) {
            res.worst_overlap_bits = std::max(res.worst_overlap_bits, viol);
            res.pass = false;
        }
    }
    ++res.cases;
}

}  // namespace

CheckResult check_add_exhaustive(const Network& net, int n, int p, int y_exp_range,
                                 int tail_depth) {
    CheckResult res;
    const int bound_bits = paper_add_bound_bits(n, p);
    std::vector<std::vector<SoftFloat>> xs;
    std::vector<std::vector<SoftFloat>> ys;
    // Scale invariance: pin x's leading exponent to 0.
    enumerate_expansions(n, p, 0, 0, tail_depth, xs);
    enumerate_expansions(n, p, -y_exp_range, y_exp_range, tail_depth, ys);
    std::vector<SoftFloat> wires(static_cast<std::size_t>(net.num_wires), SoftFloat(p));
    std::vector<SoftFloat> z(static_cast<std::size_t>(n), SoftFloat(p));
    for (const auto& x : xs) {
        for (const auto& y : ys) {
            for (int i = 0; i < n; ++i) {
                wires[static_cast<std::size_t>(2 * i)] = x[static_cast<std::size_t>(i)];
                wires[static_cast<std::size_t>(2 * i + 1)] = y[static_cast<std::size_t>(i)];
            }
            SoftFloat exact = exact_sum_soft(x);
            exact = exact + exact_sum_soft(y);
            execute(net, std::span<SoftFloat>(wires));
            for (std::size_t k = 0; k < net.outputs.size(); ++k) {
                z[k] = wires[static_cast<std::size_t>(net.outputs[k])];
            }
            record_soft_case(res, z, exact, p, bound_bits);
            if (!res.pass) {
                std::ostringstream os;
                os << "first failure: x/y expansion case #" << res.cases;
                res.note = os.str();
                return res;
            }
        }
    }
    return res;
}

CheckResult check_mul_exhaustive(const Network& net, int n, int p, int y_exp_range,
                                 int tail_depth) {
    CheckResult res;
    const int bound_bits = paper_mul_bound_bits(n, p);
    const auto labels = mul_network_labels(n);
    std::vector<std::vector<SoftFloat>> xs;
    std::vector<std::vector<SoftFloat>> ys;
    enumerate_expansions(n, p, 0, 0, tail_depth, xs);
    enumerate_expansions(n, p, -y_exp_range, y_exp_range, tail_depth, ys);
    std::vector<SoftFloat> wires(static_cast<std::size_t>(net.num_wires), SoftFloat(p));
    std::vector<SoftFloat> z(static_cast<std::size_t>(n), SoftFloat(p));
    for (const auto& x : xs) {
        for (const auto& y : ys) {
            for (std::size_t w = 0; w < labels.size(); ++w) {
                const auto& lbl = labels[w];
                const auto i = static_cast<std::size_t>(lbl[1] - '0');
                const auto j = static_cast<std::size_t>(lbl[2] - '0');
                const auto pe = soft::two_prod(x[i], y[j]);
                wires[w] = lbl[0] == 'p' ? pe.prod : pe.err;
            }
            SoftFloat exact = exact_sum_soft(x) * exact_sum_soft(y);
            execute(net, std::span<SoftFloat>(wires));
            for (std::size_t k = 0; k < net.outputs.size(); ++k) {
                z[k] = wires[static_cast<std::size_t>(net.outputs[k])];
            }
            record_soft_case(res, z, exact, p, bound_bits);
            if (!res.pass) return res;
        }
    }
    return res;
}

}  // namespace mf::fpan
