#include "network.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace mf::fpan {

int Network::depth() const noexcept {
    std::vector<int> d(static_cast<std::size_t>(num_wires), 0);
    int best = 0;
    for (const Gate& g : gates) {
        const int nd = std::max(d[g.a], d[g.b]) + 1;
        d[g.a] = nd;
        d[g.b] = nd;
        best = std::max(best, nd);
    }
    return best;
}

int Network::num_discards() const noexcept {
    int n = 0;
    for (const Gate& g : gates) n += g.kind == GateKind::Add ? 1 : 0;
    return n;
}

bool Network::well_formed() const noexcept {
    if (num_wires <= 0) return false;
    std::vector<bool> dead(static_cast<std::size_t>(num_wires), false);
    for (const Gate& g : gates) {
        if (g.a < 0 || g.a >= num_wires || g.b < 0 || g.b >= num_wires) return false;
        if (g.a == g.b) return false;
        if (dead[g.a] || dead[g.b]) return false;
        if (g.kind == GateKind::Add) dead[g.b] = true;
    }
    if (outputs.empty()) return false;
    std::vector<int> sorted = outputs;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) return false;
    for (int o : outputs) {
        if (o < 0 || o >= num_wires || dead[o]) return false;
    }
    return true;
}

std::string Network::serialize() const {
    std::ostringstream os;
    os << name << " wires=" << num_wires << " out=";
    for (std::size_t i = 0; i < outputs.size(); ++i) {
        os << (i ? "," : "") << outputs[i];
    }
    os << " :";
    for (const Gate& g : gates) {
        const char c = g.kind == GateKind::Add      ? 'A'
                       : g.kind == GateKind::TwoSum ? 'T'
                                                    : 'F';
        os << ' ' << c << '(' << g.a << ',' << g.b << ')';
    }
    return os.str();
}

Network Network::parse(const std::string& text) {
    Network n;
    std::istringstream is(text);
    std::string tok;
    if (!(is >> n.name)) return {};
    while (is >> tok) {
        if (tok.rfind("wires=", 0) == 0) {
            n.num_wires = std::stoi(tok.substr(6));
        } else if (tok.rfind("out=", 0) == 0) {
            std::istringstream os(tok.substr(4));
            std::string part;
            while (std::getline(os, part, ',')) n.outputs.push_back(std::stoi(part));
        } else if (tok == ":") {
            // gate list follows
        } else if (tok.size() >= 6 && (tok[0] == 'A' || tok[0] == 'T' || tok[0] == 'F')) {
            const GateKind k = tok[0] == 'A'   ? GateKind::Add
                               : tok[0] == 'T' ? GateKind::TwoSum
                                               : GateKind::FastTwoSum;
            const auto comma = tok.find(',');
            const int a = std::stoi(tok.substr(2, comma - 2));
            const int b = std::stoi(tok.substr(comma + 1));
            n.gates.push_back({k, a, b});
        }
    }
    return n;
}

std::string Network::diagram(std::span<const std::string> wire_labels) const {
    // One text column block per gate, one row per wire, in the style of the
    // paper's figures: o--o for TwoSum, o--v for FastTwoSum, o--x for Add
    // (x marks the discarded error).
    const auto w = static_cast<std::size_t>(num_wires);
    std::vector<std::string> rows(w);
    std::size_t label_width = 0;
    for (std::size_t i = 0; i < w; ++i) {
        std::string lbl = i < wire_labels.size() ? wire_labels[i] : ("w" + std::to_string(i));
        label_width = std::max(label_width, lbl.size());
        rows[i] = std::move(lbl);
    }
    for (auto& r : rows) {
        r.resize(label_width, ' ');
        r += " -";
    }
    for (const Gate& g : gates) {
        const std::size_t lo = static_cast<std::size_t>(std::min(g.a, g.b));
        const std::size_t hi = static_cast<std::size_t>(std::max(g.a, g.b));
        const char a_char = 'o';
        const char b_char = g.kind == GateKind::Add          ? 'x'
                            : g.kind == GateKind::FastTwoSum ? 'v'
                                                             : 'o';
        const char top = g.a < g.b ? a_char : b_char;
        const char bot = g.a < g.b ? b_char : a_char;
        for (std::size_t i = 0; i < w; ++i) {
            if (i == lo) {
                rows[i] += top;
            } else if (i == hi) {
                rows[i] += bot;
            } else if (i > lo && i < hi) {
                rows[i] += '|';
            } else {
                rows[i] += '-';
            }
            rows[i] += "--";
        }
    }
    std::ostringstream os;
    os << name << "  (size " << size() << ", depth " << depth() << ")\n";
    for (std::size_t i = 0; i < w; ++i) {
        os << rows[i];
        const bool is_out = std::find(outputs.begin(), outputs.end(),
                                      static_cast<int>(i)) != outputs.end();
        os << (is_out ? "> out" : "");
        os << '\n';
    }
    os << "legend: o-o TwoSum, o-v FastTwoSum (v = error side), o-x Add (x = discarded)\n";
    return os.str();
}

std::ostream& operator<<(std::ostream& os, const Network& n) {
    return os << n.serialize();
}

}  // namespace mf::fpan
