#pragma once
// Empirical FPAN verifier.
//
// The paper proves network correctness for ALL inputs with an SMT encoding
// (Ref. [53]); offline we substitute two complementary procedures:
//
//  * Exhaustive small-p verification: enumerate EVERY pair of nonoverlapping
//    p-bit input expansions within an exponent window (exploiting the scale
//    invariance of FPANs to pin the leading exponent of x) and check the
//    nonoverlap + error-bound contract on each. This covers the full
//    combinatorial space of rounding-error patterns at that p -- the same
//    case explosion the SMT proof reasons about -- and the algorithms are
//    p-generic by construction.
//
//  * Large randomized/adversarial campaigns at machine precision against the
//    exact BigFloat oracle.
//
// Both report the worst observed relative error (as log2) and the worst
// nonoverlap violation, so they double as measurement tools for the paper's
// per-figure error bounds.

#include <cstdint>
#include <string>

#include "network.hpp"

namespace mf::fpan {

struct CheckResult {
    bool pass = true;
    long long cases = 0;
    /// log2 of the worst |result - exact| / |exact| seen (-inf if all exact).
    double worst_err_log2 = -1e9;
    /// Worst violation of the nonoverlap invariant, in bits (0 = none).
    int worst_overlap_bits = 0;
    std::string note;
};

/// Error bound exponent the paper claims for an n-term addition/multiplication
/// network at precision p (Figures 2-7): add2 2p-1, mul2 2p-3, and np-n for
/// the rest.
[[nodiscard]] int paper_add_bound_bits(int n, int p);
[[nodiscard]] int paper_mul_bound_bits(int n, int p);

/// Randomized check of an addition network (wires [x0, y0, x1, y1, ...]) at
/// double precision against the BigFloat oracle. Inputs include adversarial
/// cancellation cases. Fails if any case exceeds 2^-bound_bits relative error
/// or violates nonoverlap. Stops at the first failure.
[[nodiscard]] CheckResult check_add_random(const Network& net, int n, long long trials,
                                           std::uint64_t seed, int bound_bits);

/// Like check_add_random but never stops early: always runs all trials and
/// reports the worst error/overlap observed. This continuous signal is what
/// the annealing search optimizes (a pass/fail bit has no gradient).
[[nodiscard]] CheckResult measure_add_random(const Network& net, int n, long long trials,
                                             std::uint64_t seed, int bound_bits);

/// Randomized check of a multiplication accumulation network. The checker
/// performs the TwoProd expansion step per mul_network_labels(n) layout.
[[nodiscard]] CheckResult check_mul_random(const Network& net, int n, long long trials,
                                           std::uint64_t seed, int bound_bits);

/// Exhaustive check of an addition network at small precision p: every
/// nonoverlapping n-term expansion pair with x's leading exponent fixed at 0
/// (scale invariance), y's leading exponent in [-y_exp_range, +y_exp_range],
/// and tails extending tail_depth extra exponent slots below the minimum.
/// Practical for n = 2 with p <= 4.
[[nodiscard]] CheckResult check_add_exhaustive(const Network& net, int n, int p,
                                               int y_exp_range, int tail_depth);

/// Exhaustive check of a multiplication accumulation network at small p
/// (n = 2 practical).
[[nodiscard]] CheckResult check_mul_exhaustive(const Network& net, int n, int p,
                                               int y_exp_range, int tail_depth);

}  // namespace mf::fpan
