#pragma once
// Floating-point accumulation networks (FPANs) as first-class data.
//
// An FPAN (paper §3) is a branch-free algorithm given by a fixed sequence of
// gates applied to a fixed set of wires. Three gate kinds exist:
//
//   Add:         w[a] <- w[a] (+) w[b]; the rounding error is DISCARDED and
//                wire b goes dead (set to zero).
//   TwoSum:      (w[a], w[b]) <- TwoSum(w[a], w[b])        (error-free)
//   FastTwoSum:  (w[a], w[b]) <- FastTwoSum(w[a], w[b])    (error-free,
//                requires exponent(w[a]) >= exponent(w[b]) or either zero)
//
// Keeping networks as data (alongside the hand-inlined kernels in mf/) lets
// us (1) verify them with the empirical checker over SoftFloat/BigFloat,
// (2) search for new ones by simulated annealing, (3) print the paper's
// Figure 2-7 style diagrams, and (4) cross-check that the fast kernels
// compute gate-for-gate the same thing (tests/fpan_consistency_test.cpp).

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace mf::fpan {

enum class GateKind : std::uint8_t {
    Add,         ///< rounded sum, error discarded
    TwoSum,      ///< error-free transform, any magnitudes
    FastTwoSum,  ///< error-free transform, |w[a]| must dominate
};

struct Gate {
    GateKind kind;
    int a;  ///< first wire (receives the sum)
    int b;  ///< second wire (receives the error; dead after an Add gate)

    friend bool operator==(const Gate&, const Gate&) = default;
};

struct Network {
    std::string name;
    int num_wires = 0;
    std::vector<Gate> gates;
    std::vector<int> outputs;  ///< wire indices, most significant first

    /// Total number of gates (the paper's "size").
    [[nodiscard]] int size() const noexcept { return static_cast<int>(gates.size()); }

    /// Longest gate chain from any input to any output (the paper's "depth").
    [[nodiscard]] int depth() const noexcept;

    /// Count of error-discarding Add gates.
    [[nodiscard]] int num_discards() const noexcept;

    /// Structural sanity: wire indices in range, outputs distinct and live.
    [[nodiscard]] bool well_formed() const noexcept;

    /// Compact single-line text form:
    ///   "name wires=W out=o1,o2 : T(a,b) F(a,b) A(a,b) ..."
    [[nodiscard]] std::string serialize() const;
    static Network parse(const std::string& text);

    /// Multi-line ASCII art in the style of the paper's figures.
    [[nodiscard]] std::string diagram(std::span<const std::string> wire_labels = {}) const;

    friend bool operator==(const Network&, const Network&) = default;
};

std::ostream& operator<<(std::ostream& os, const Network& n);

}  // namespace mf::fpan
