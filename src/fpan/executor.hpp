#pragma once
// Generic FPAN executor: runs a Network over any arithmetic value type that
// models round-to-nearest-even addition/subtraction (double, float,
// soft::SoftFloat, ...). The TwoSum / FastTwoSum gate bodies are the textbook
// algorithms expressed through the type's own rounded +/- operators, so the
// executor is a faithful interpreter of the branch-free straight-line code
// the hand-inlined kernels in mf/ compile to.

#include <cassert>
#include <span>

#include "network.hpp"

namespace mf::fpan {

/// Models a rounded arithmetic value usable on FPAN wires.
template <typename V>
concept WireValue = requires(V a, V b) {
    { a + b } -> std::convertible_to<V>;
    { a - b } -> std::convertible_to<V>;
};

/// Execute `net` in place over `wires` (size must equal net.num_wires).
/// After the call, the wires listed in net.outputs hold the result.
template <WireValue V>
void execute(const Network& net, std::span<V> wires) {
    assert(static_cast<int>(wires.size()) == net.num_wires);
    for (const Gate& g : net.gates) {
        V& x = wires[static_cast<std::size_t>(g.a)];
        V& y = wires[static_cast<std::size_t>(g.b)];
        switch (g.kind) {
            case GateKind::Add: {
                x = x + y;
                y = y - y;  // dead wire; value-typed zero
                break;
            }
            case GateKind::TwoSum: {
                const V s = x + y;
                const V x_eff = s - y;
                const V y_eff = s - x_eff;
                const V dx = x - x_eff;
                const V dy = y - y_eff;
                x = s;
                y = dx + dy;
                break;
            }
            case GateKind::FastTwoSum: {
                const V s = x + y;
                const V y_eff = s - x;
                x = s;
                y = y - y_eff;
                break;
            }
        }
    }
}

}  // namespace mf::fpan
