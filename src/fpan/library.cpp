#include "library.hpp"

#include <cassert>
#include <stdexcept>

namespace mf::fpan {

namespace {

constexpr auto A = GateKind::Add;
constexpr auto T = GateKind::TwoSum;
constexpr auto F = GateKind::FastTwoSum;

/// Mirror of mf::detail::accumulate<N, RENORMS>: appends the distillation
/// sweep + renormalization gates over the wire permutation `perm` (v-index
/// -> wire index), matching renorm.hpp exactly.
void append_accumulate(Network& net, const std::vector<int>& perm, int n,
                       int renorms = 1) {
    const int k = static_cast<int>(perm.size());
    for (int pass = 0; pass < n; ++pass) {
        for (int i = k - 2; i >= pass; --i) {
            net.gates.push_back({T, perm[i], perm[i + 1]});
        }
    }
    const int top = (n < k - 1) ? n : k - 1;
    for (int r = 0; r < renorms; ++r) {
        for (int i = 0; i < top; ++i) {
            net.gates.push_back({F, perm[i], perm[i + 1]});
        }
    }
    net.outputs.assign(perm.begin(), perm.begin() + n);
}

}  // namespace

Network make_add_network(int n) {
    assert(n >= 2 && n <= 4);
    Network net;
    net.name = "add" + std::to_string(n);
    net.num_wires = 2 * n;
    if (n == 2) {
        // Figure 2: size 6. Gate order mirrors mf::detail::add2.
        net.gates = {{T, 0, 1}, {T, 2, 3}, {A, 2, 1}, {F, 0, 2}, {A, 3, 2}, {F, 0, 3}};
        net.outputs = {0, 3};
        return net;
    }
    // Pairing layer: TwoSum(x_i, y_i) leaves s_i on wire 2i, e_i on 2i+1.
    for (int i = 0; i < n; ++i) net.gates.push_back({T, 2 * i, 2 * i + 1});
    // v-order [s0, s1, e0, s2, e1, ..., e_{n-1}] as wire indices.
    std::vector<int> perm;
    perm.push_back(0);
    for (int i = 1; i < n; ++i) {
        perm.push_back(2 * i);      // s_i
        perm.push_back(2 * i - 1);  // e_{i-1}
    }
    perm.push_back(2 * n - 1);  // e_{n-1}
    append_accumulate(net, perm, n);
    return net;
}

std::vector<std::string> mul_network_labels(int n) {
    switch (n) {
        case 2:
            return {"p00", "e00", "p01", "p10"};
        case 3:
            return {"p00", "e00", "p01", "p10", "e01", "e10", "p02", "p20", "p11"};
        case 4:
            return {"p00", "e00", "p01", "p10", "e01", "e10", "p02", "p20",
                    "e02", "e20", "p11", "e11", "p03", "p30", "p12", "p21"};
        default:
            throw std::invalid_argument("mul_network_labels: n must be 2..4");
    }
}

Network make_mul_network(int n) {
    assert(n >= 2 && n <= 4);
    Network net;
    net.name = "mul" + std::to_string(n);
    net.num_wires = n * n;
    if (n == 2) {
        // Figure 5: size 3, depth 3. Wires: [p00, e00, p01, p10].
        net.gates = {{A, 2, 3}, {A, 2, 1}, {F, 0, 2}};
        net.outputs = {0, 2};
        return net;
    }
    if (n == 3) {
        // Wires: [p00, e00, p01, p10, e01, e10, p02, p20, p11].
        // Mirrors mf::detail::mul3.
        net.gates = {
            {T, 2, 3},  // (t1, u1) = TwoSum(p01, p10)
            {A, 4, 5},  // f1 = e01 + e10
            {A, 6, 7},  // g1 = p02 + p20
            {T, 2, 1},  // (w1, c1) = TwoSum(t1, e00)
            {A, 3, 4},  // h = u1 + f1
            {A, 3, 6},  // h += g1
            {A, 3, 8},  // h += p11
            {A, 3, 1},  // h += c1
        };
        append_accumulate(net, {0, 2, 3}, 3);
        return net;
    }
    // n == 4. Wires: [p00, e00, p01, p10, e01, e10, p02, p20,
    //                 e02, e20, p11, e11, p03, p30, p12, p21].
    // Mirrors mf::detail::mul4.
    net.gates = {
        {T, 2, 3},    // (t1, u1) = TwoSum(p01, p10)
        {T, 6, 7},    // (t2, u2) = TwoSum(p02, p20)
        {T, 4, 5},    // (f1, g1) = TwoSum(e01, e10)
        {A, 12, 13},  // q1 = p03 + p30
        {A, 14, 15},  // q2 = p12 + p21
        {A, 8, 9},    // q3 = e02 + e20
        {T, 2, 1},    // (w1, c1) = TwoSum(t1, e00)
        {T, 6, 4},    // (a, d1) = TwoSum(t2, f1)
        {T, 6, 10},   // (a, d2) = TwoSum(a, p11)
        {T, 6, 3},    // (a, d3) = TwoSum(a, u1)
        {T, 6, 1},    // (a, d4) = TwoSum(a, c1)
        {A, 7, 5},    // h = u2 + g1
        {A, 7, 12},   // h += q1
        {A, 7, 14},   // h += q2
        {A, 7, 8},    // h += q3
        {A, 7, 11},   // h += e11
        {A, 7, 4},    // h += d1
        {A, 7, 10},   // h += d2
        {A, 7, 3},    // h += d3
        {A, 7, 1},    // h += d4
    };
    append_accumulate(net, {0, 2, 6, 7}, 4);
    return net;
}

Network make_naive_add_network(int n) {
    Network net;
    net.name = "naive_add" + std::to_string(n) + "_Eq9";
    net.num_wires = 2 * n;
    for (int i = 0; i < n; ++i) {
        net.gates.push_back({A, 2 * i, 2 * i + 1});
        net.outputs.push_back(2 * i);
    }
    return net;
}

std::vector<Network> paper_networks() {
    return {make_add_network(2), make_add_network(3), make_add_network(4),
            make_mul_network(2), make_mul_network(3), make_mul_network(4)};
}

}  // namespace mf::fpan
