#include "search.hpp"

#include <cmath>
#include <random>

#include "checker.hpp"

namespace mf::fpan {

namespace {

/// Candidate cost: continuous accuracy signal (bits of error above the
/// target bound, worst case over the campaign) dominates; among
/// fully-passing networks, prefer small size, then shallow depth.
double cost_of(const Network& net, int n, long long trials, std::uint64_t seed,
               int bound_bits) {
    if (!net.well_formed()) return 1e12;
    const CheckResult r = measure_add_random(net, n, trials, seed, bound_bits);
    double cost = net.size() + 0.1 * net.depth();
    if (!r.pass) {
        const double excess =
            r.worst_err_log2 <= -1e8
                ? 0.0
                : std::max(0.0, r.worst_err_log2 + static_cast<double>(bound_bits));
        cost += 1e3 + 40.0 * excess + 200.0 * r.worst_overlap_bits;
        if (!r.note.empty()) cost += 500.0;  // error against an exact-zero sum
    }
    return cost;
}

/// By convention the search fixes outputs to the operand wires of the final
/// non-Add gate (most networks route their results there); candidates whose
/// final gate is an Add are completed with outputs on its sum wire plus the
/// previous error wire, which well_formed() will often reject -- that is
/// intentional pressure toward clean endings.
void assign_outputs(Network& net, int n) {
    net.outputs.clear();
    if (net.gates.empty()) return;
    const Gate& last = net.gates.back();
    net.outputs.push_back(last.a);
    net.outputs.push_back(last.b);
    // For n > 2, extend with the sum wires of preceding gates.
    for (auto it = net.gates.rbegin() + 1;
         it != net.gates.rend() && static_cast<int>(net.outputs.size()) < n; ++it) {
        bool fresh = true;
        for (int o : net.outputs) fresh = fresh && o != it->a;
        if (fresh) net.outputs.insert(net.outputs.begin(), it->a);
    }
    if (static_cast<int>(net.outputs.size()) > n) net.outputs.resize(static_cast<std::size_t>(n));
}

}  // namespace

SearchOutcome anneal_add_network(const SearchOptions& opts) {
    SearchOutcome out;
    std::mt19937_64 rng(opts.seed);
    const int wires = 2 * opts.n;
    const int bound = paper_add_bound_bits(opts.n, 53);
    std::uniform_int_distribution<int> wire_dist(0, wires - 1);
    std::uniform_real_distribution<double> unit(0.0, 1.0);

    Network cur;
    cur.name = "candidate";
    cur.num_wires = wires;
    double cur_cost = 1e12;
    Network best;
    double best_cost = 1e12;

    const auto random_gate = [&]() -> Gate {
        const double k = unit(rng);
        const GateKind kind = k < 0.70   ? GateKind::TwoSum
                              : k < 0.85 ? GateKind::FastTwoSum
                                         : GateKind::Add;
        int a = wire_dist(rng);
        int b = wire_dist(rng);
        while (b == a) b = wire_dist(rng);
        return {kind, a, b};
    };

    for (long long it = 0; it < opts.iterations; ++it) {
        const double frac = static_cast<double>(it) / static_cast<double>(opts.iterations);
        const double temp = opts.t_start * std::pow(opts.t_end / opts.t_start, frac);
        // Removal probability ramps up over time (paper's schedule).
        const double p_remove = cur.gates.empty() ? 0.0 : 0.15 + 0.35 * frac;

        Network cand = cur;
        const double move = unit(rng);
        if (move < p_remove) {
            const auto idx = static_cast<std::size_t>(rng() % cand.gates.size());
            cand.gates.erase(cand.gates.begin() + static_cast<std::ptrdiff_t>(idx));
        } else if (move < p_remove + 0.2 && !cand.gates.empty()) {
            // Mutate one gate in place.
            const auto idx = static_cast<std::size_t>(rng() % cand.gates.size());
            cand.gates[idx] = random_gate();
        } else if (static_cast<int>(cand.gates.size()) < opts.max_gates) {
            const auto pos = static_cast<std::size_t>(rng() % (cand.gates.size() + 1));
            cand.gates.insert(cand.gates.begin() + static_cast<std::ptrdiff_t>(pos),
                              random_gate());
        } else {
            continue;
        }
        assign_outputs(cand, opts.n);
        const double cand_cost =
            cost_of(cand, opts.n, opts.score_trials, opts.seed ^ 0x9e3779b97f4a7c15ULL, bound);
        ++out.candidates_checked;
        const double delta = cand_cost - cur_cost;
        if (delta <= 0 || unit(rng) < std::exp(-delta / (temp * 100.0))) {
            cur = std::move(cand);
            cur_cost = cand_cost;
        }
        // The scoring campaign is deliberately small (it runs tens of
        // thousands of times), so candidates overfit it; promote a candidate
        // to "best" only after it survives the real verifier. This mirrors
        // the paper's two-stage design: cheap testing filters candidates,
        // full verification confirms them.
        if (cur_cost < 1e3 && cur_cost < best_cost) {
            const bool verified =
                check_add_random(cur, opts.n, 3000, opts.seed + 13, bound).pass &&
                (opts.n > 2 || check_add_exhaustive(cur, opts.n, 3, 2, 3).pass);
            if (verified) {
                best = cur;
                best_cost = cur_cost;
                if (opts.progress) opts.progress(it, best_cost, best.size());
            } else {
                // Verified-failing candidate: penalize so the walk moves on.
                cur_cost += 50.0;
            }
        }
    }
    out.iterations = opts.iterations;
    if (best_cost < 1e3) {
        // Final acceptance: a larger randomized campaign plus the exhaustive
        // small-p sweep must both pass.
        const bool big_ok =
            check_add_random(best, opts.n, opts.verify_trials, opts.seed + 7, bound).pass;
        const bool exhaustive_ok =
            opts.n > 2 || check_add_exhaustive(best, opts.n, 3, 3, 5).pass;
        if (big_ok && exhaustive_ok) {
            best.name = "annealed_add" + std::to_string(opts.n);
            out.best = std::move(best);
        }
    }
    return out;
}

namespace {

bool trim_verify(const Network& net, const TrimOptions& o) {
    if (!net.well_formed()) return false;
    if (o.is_mul) {
        if (!check_mul_random(net, o.n, o.trials, o.seed, paper_mul_bound_bits(o.n, 53)).pass)
            return false;
        if (o.exhaustive && o.n == 2 && !check_mul_exhaustive(net, o.n, 3, 2, 3).pass)
            return false;
        return true;
    }
    if (!check_add_random(net, o.n, o.trials, o.seed, paper_add_bound_bits(o.n, 53)).pass)
        return false;
    if (o.exhaustive) {
        if (o.n == 2 && !check_add_exhaustive(net, o.n, 3, 3, 4).pass) return false;
        if (o.n == 3 &&
            !check_add_exhaustive(net, o.n, 3, o.y_exp_range, o.tail_depth).pass)
            return false;
    }
    return true;
}

}  // namespace

Network greedy_trim(Network net, const TrimOptions& opts) {
    bool changed = true;
    while (changed) {
        changed = false;
        // Pass 1: try outright deletions, scanning from the end (later gates
        // are more often redundant cleanup).
        for (std::size_t i = net.gates.size(); i-- > 0;) {
            Network cand = net;
            cand.gates.erase(cand.gates.begin() + static_cast<std::ptrdiff_t>(i));
            if (trim_verify(cand, opts)) {
                net = std::move(cand);
                changed = true;
            }
        }
        // Pass 2: demote error-free gates to cheaper kinds
        // (TwoSum -> FastTwoSum -> Add).
        for (std::size_t i = 0; i < net.gates.size(); ++i) {
            if (net.gates[i].kind == GateKind::TwoSum) {
                Network cand = net;
                cand.gates[i].kind = GateKind::FastTwoSum;
                if (trim_verify(cand, opts)) {
                    net = std::move(cand);
                    changed = true;
                    continue;
                }
            }
            if (net.gates[i].kind != GateKind::Add) {
                Network cand = net;
                cand.gates[i].kind = GateKind::Add;
                if (trim_verify(cand, opts)) {
                    net = std::move(cand);
                    changed = true;
                }
            }
        }
    }
    net.name += "_trimmed";
    return net;
}

}  // namespace mf::fpan
