#pragma once
// The paper's six FPANs (Figures 2-7) as checkable Network data, mirroring
// gate-for-gate the hand-inlined kernels in mf/add.hpp and mf/mul.hpp.
// tests/fpan_consistency_test.cpp verifies bit-exact agreement between the
// two representations on randomized inputs.

#include "network.hpp"

namespace mf::fpan {

/// Addition network for n-term expansions (n = 2, 3, 4).
/// Wires 0..2n-1 carry the interleaved inputs [x0, y0, x1, y1, ...].
/// n = 2 is the provably optimal Figure-2 network.
[[nodiscard]] Network make_add_network(int n);

/// Accumulation network for commutative n-term multiplication (n = 2, 3, 4).
/// The caller performs the TwoProd expansion step; wires carry the product
/// terms in the layout documented per-case in library.cpp.
[[nodiscard]] Network make_mul_network(int n);

/// Input wire labels matching make_mul_network(n)'s layout, for diagrams and
/// for building the wire vector from the TwoProd expansion step.
[[nodiscard]] std::vector<std::string> mul_network_labels(int n);

/// The naive term-by-term sum of Eq. 9 -- intentionally WRONG (degrades to
/// machine precision); used to demonstrate that the checker rejects it.
[[nodiscard]] Network make_naive_add_network(int n);

/// All six paper networks, for tools and tests.
[[nodiscard]] std::vector<Network> paper_networks();

}  // namespace mf::fpan
