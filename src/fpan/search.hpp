#pragma once
// Simulated-annealing search for FPANs (paper §4.1: "random TwoSum gates
// were added to an empty FPAN until it passed the automatic verification
// procedure; then random gates were added and removed, with the probability
// of removal gradually adjusted upwards over time").
//
// This is a laptop-scale reproduction of the discovery procedure: the
// verifier is the empirical checker (checker.hpp) rather than the SMT proof,
// and the demonstration target is the 2-term addition network, which the
// paper proves optimal at size 6. tests/fpan_search_test.cpp re-discovers a
// correct network; tools/fpan_inspect --search runs longer campaigns.

#include <cstdint>
#include <functional>
#include <optional>

#include "network.hpp"

namespace mf::fpan {

struct SearchOptions {
    int n = 2;                  ///< expansion terms (network has 2n input wires)
    int max_gates = 12;         ///< hard cap on candidate size
    long long iterations = 20000;
    std::uint64_t seed = 1;
    long long score_trials = 400;   ///< randomized-check budget per candidate
    long long verify_trials = 20000;  ///< final acceptance budget
    double t_start = 3.0;       ///< Metropolis temperature schedule
    double t_end = 0.05;
    /// Optional progress sink: called with (iteration, best_cost, best_size).
    std::function<void(long long, double, int)> progress;
};

struct SearchOutcome {
    std::optional<Network> best;  ///< passing network, if any was found
    long long iterations = 0;
    long long candidates_checked = 0;
};

/// Run the annealing loop for an n-term addition network. Returns the
/// smallest network found that passes both the randomized campaign and the
/// exhaustive small-p check.
[[nodiscard]] SearchOutcome anneal_add_network(const SearchOptions& opts);

/// Greedy gate-removal minimization of a known-correct network: repeatedly
/// try deleting each gate (and demoting TwoSum gates to plain Adds), keeping
/// any change that still passes the verification campaign. This is the
/// "remove random gates subject to the FPAN still passing verification" half
/// of the paper's search procedure, made deterministic.
struct TrimOptions {
    int n = 3;
    long long trials = 50000;       ///< randomized campaign per candidate
    std::uint64_t seed = 1;
    bool exhaustive = true;         ///< also require small-p exhaustion (n<=3)
    bool is_mul = false;            ///< verify as multiplication network
    int y_exp_range = 1;            ///< exhaustive window: y lead exponents
    int tail_depth = 1;             ///< exhaustive window: tail depth
};
[[nodiscard]] Network greedy_trim(Network net, const TrimOptions& opts);

}  // namespace mf::fpan
