#pragma once
// Build/run provenance for stamping exported artifacts: every BENCH_*.json,
// CHECK_*.json and metrics exposition carries enough context to reproduce
// the measurement -- which commit, which compiler, how many threads, and
// which SIMD backend dispatch actually selected at runtime.

#include <string>
#include <thread>

#include "../guard/fp_env.hpp"
#include "../simd/backend.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

// Stamped by CMake (git rev-parse --short HEAD at configure time); builds
// from a tarball or an uncommitted tree fall back to "unknown".
#ifndef MF_GIT_SHA
#define MF_GIT_SHA "unknown"
#endif

namespace mf::telemetry {

struct BuildInfo {
    std::string git_sha;
    std::string compiler;
    int threads = 1;      ///< worker threads a parallel region would use
    std::string backend;  ///< SIMD backend active at query time
    std::string fp_env;   ///< probed FP environment, e.g. "rn" or "rz+ftz"
                          ///< (guard::fp_env_string -- nominal is "rn")
};

[[nodiscard]] inline BuildInfo build_info() {
    BuildInfo b;
    b.git_sha = MF_GIT_SHA;
#if defined(__clang__)
    b.compiler = std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
    b.compiler = std::string("gcc ") + __VERSION__;
#else
    b.compiler = "unknown";
#endif
#if defined(_OPENMP)
    b.threads = omp_get_max_threads();
#else
    b.threads = static_cast<int>(std::thread::hardware_concurrency());
    if (b.threads < 1) b.threads = 1;
#endif
    b.backend = simd::backend_name(simd::active_backend());
    b.fp_env = guard::fp_env_string();
    return b;
}

}  // namespace mf::telemetry
