#pragma once
// mf::telemetry -- umbrella header for the observability subsystem.
//
//   registry.hpp    process-wide counters/histograms, thread-local shards
//   events.hpp      MF_TELEM_* instrumentation macros (compile to nothing
//                   unless MF_TELEMETRY is on)
//   exposition.hpp  Prometheus-style text exporter
//   trace.hpp       chrome://tracing span exporter
//   build_info.hpp  git/compiler/threads/backend provenance stamp
//
// Instrumented kernels include only events.hpp (which pulls registry.hpp);
// exporters and tools include this umbrella. See DESIGN.md §10 for the
// architecture and the overhead budget.

#include "build_info.hpp"
#include "events.hpp"
#include "exposition.hpp"
#include "registry.hpp"
#include "trace.hpp"
