#pragma once
// Process-wide metric registry: named counters and log2-bucketed histograms,
// sharded per thread, merged on read.
//
// Hot-path discipline (the whole point of this design): an increment touches
// ONLY cells of the calling thread's private shard, via relaxed atomic
// load/store pairs. No read-modify-write instructions, no shared cache
// lines, no locks. The relaxed atomics exist solely so the merging reader
// (snapshot()) may load another thread's cells without a data race; on every
// ISA we target they compile to the same mov/add/mov as a plain uint64_t.
//
// Registration (name -> id) is the cold path: it takes a mutex and is done
// once per call site (see events.hpp, which caches the id in a per-site
// static). Shards are allocated on a thread's first metric touch, owned by
// the registry, and deliberately never freed: a thread that exits leaves its
// totals behind for every later snapshot, which is exactly the "merged on
// flush" semantics the exporters want.
//
// This header has no dependency on the MF_TELEMETRY compile mode: the
// registry API is always available (tools and exporters link against it
// unconditionally); only the instrumentation macros in events.hpp compile
// away. Keeping the definitions mode-independent also keeps translation
// units built with different telemetry settings ODR-compatible.

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mf::telemetry {

inline constexpr int kMaxCounters = 256;
inline constexpr int kMaxHistograms = 64;
inline constexpr int kHistBuckets = 64;

/// Opaque slot index into every shard's cell arrays. Default-constructed ids
/// are inert: add/observe on them are no-ops, so running out of slots
/// degrades to dropped metrics, never UB.
struct CounterId {
    int idx = -1;
};
struct HistogramId {
    int idx = -1;
};

/// log2 bucketing: bucket 0 holds [0, 2), bucket b holds [2^b, 2^(b+1)),
/// and the last bucket absorbs everything wider. Power-of-two boundaries
/// make the exposition's `le` edges exact integers (tested).
[[nodiscard]] constexpr int log2_bucket(std::uint64_t v) noexcept {
    const int b = (v == 0) ? 0 : static_cast<int>(std::bit_width(v)) - 1;
    return b < kHistBuckets ? b : kHistBuckets - 1;
}

/// One completed span, chrome://tracing "X" (complete) event shaped.
/// Timestamps are nanoseconds since the registry's construction.
struct TraceEvent {
    std::string name;
    int tid = 0;
    std::uint64_t begin_ns = 0;
    std::uint64_t end_ns = 0;
};

struct CounterSnap {
    std::string name;
    std::uint64_t value = 0;
};
struct HistogramSnap {
    std::string name;
    std::array<std::uint64_t, kHistBuckets> bucket{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
};

/// Point-in-time merge of all shards (live and exited threads alike).
struct Snapshot {
    std::vector<CounterSnap> counters;      ///< sorted by name
    std::vector<HistogramSnap> histograms;  ///< sorted by name
    std::vector<TraceEvent> spans;          ///< sorted by (tid, begin, name)
};

class Registry {
public:
    /// The process-wide registry. Intentionally leaked (never destroyed) so
    /// instrumented code running during static destruction, or on threads
    /// outliving main, can never touch a dead object.
    static Registry& instance() {
        static Registry* r = new Registry();
        return *r;
    }

    /// Register (or look up) a counter by full name, labels included, e.g.
    /// "mf_simd_dispatch_total{backend=\"avx2\"}". Cold path: takes a mutex.
    [[nodiscard]] CounterId counter(std::string_view name) {
        std::lock_guard<std::mutex> lock(mu_);
        return {intern(counter_names_, name, kMaxCounters)};
    }

    [[nodiscard]] HistogramId histogram(std::string_view name) {
        std::lock_guard<std::mutex> lock(mu_);
        return {intern(histogram_names_, name, kMaxHistograms)};
    }

    /// Hot path: bump this thread's shard cell. Relaxed load/store of a cell
    /// only this thread writes -- no RMW, no contention.
    void add(CounterId id, std::uint64_t n = 1) noexcept {
        if (id.idx < 0) return;
        std::atomic<std::uint64_t>& c = tls().counters[static_cast<std::size_t>(id.idx)];
        c.store(c.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
    }

    /// Hot path: record one histogram observation in this thread's shard.
    void observe(HistogramId id, std::uint64_t v) noexcept {
        if (id.idx < 0) return;
        ThreadShard::Hist& h = tls().hists[static_cast<std::size_t>(id.idx)];
        bump(h.bucket[static_cast<std::size_t>(log2_bucket(v))], 1);
        bump(h.count, 1);
        bump(h.sum, v);
    }

    /// Tracing gate, read per span construction; default off so clock calls
    /// stay out of instrumented loops unless an operator asked for a trace.
    [[nodiscard]] bool trace_enabled() const noexcept {
        return trace_on_.load(std::memory_order_relaxed);
    }
    void set_trace_enabled(bool on) noexcept {
        trace_on_.store(on, std::memory_order_relaxed);
    }

    /// Nanoseconds since this registry was constructed (the trace epoch).
    [[nodiscard]] std::uint64_t now_ns() const noexcept {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - epoch_)
                .count());
    }

    /// Record a completed span on the calling thread's shard.
    void record_span(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns) {
        ThreadShard& s = tls();
        std::lock_guard<std::mutex> lock(s.span_mu);
        s.spans.push_back(TraceEvent{name, s.tid, begin_ns, end_ns});
    }

    /// Deterministic-injection variant (golden tests, replay tools): the
    /// thread id and timestamps are the caller's, not the clock's.
    void record_span(const char* name, int tid, std::uint64_t begin_ns,
                     std::uint64_t end_ns) {
        std::lock_guard<std::mutex> lock(mu_);
        injected_spans_.push_back(TraceEvent{name, tid, begin_ns, end_ns});
    }

    /// Sequential id of the calling thread's shard (the `tid` its spans use).
    [[nodiscard]] int thread_id() noexcept { return tls().tid; }

    /// Merge every shard into one consistent view. Cold path: locks out
    /// registration and shard creation, then sums cells with relaxed loads.
    [[nodiscard]] Snapshot snapshot() {
        std::lock_guard<std::mutex> lock(mu_);
        Snapshot out;
        out.counters.resize(counter_names_.size());
        for (std::size_t i = 0; i < counter_names_.size(); ++i) {
            out.counters[i].name = counter_names_[i];
        }
        out.histograms.resize(histogram_names_.size());
        for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
            out.histograms[i].name = histogram_names_[i];
        }
        for (const std::unique_ptr<ThreadShard>& s : shards_) {
            for (std::size_t i = 0; i < out.counters.size(); ++i) {
                out.counters[i].value += s->counters[i].load(std::memory_order_relaxed);
            }
            for (std::size_t i = 0; i < out.histograms.size(); ++i) {
                const ThreadShard::Hist& h = s->hists[i];
                HistogramSnap& g = out.histograms[i];
                for (int b = 0; b < kHistBuckets; ++b) {
                    g.bucket[static_cast<std::size_t>(b)] +=
                        h.bucket[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
                }
                g.count += h.count.load(std::memory_order_relaxed);
                g.sum += h.sum.load(std::memory_order_relaxed);
            }
            std::lock_guard<std::mutex> span_lock(s->span_mu);
            out.spans.insert(out.spans.end(), s->spans.begin(), s->spans.end());
        }
        out.spans.insert(out.spans.end(), injected_spans_.begin(), injected_spans_.end());
        sort_by_name(out.counters);
        sort_by_name(out.histograms);
        std::sort(out.spans.begin(), out.spans.end(),
                  [](const TraceEvent& a, const TraceEvent& b) {
                      if (a.tid != b.tid) return a.tid < b.tid;
                      if (a.begin_ns != b.begin_ns) return a.begin_ns < b.begin_ns;
                      return a.name < b.name;
                  });
        return out;
    }

    /// Zero every cell and drop every span; registered names keep their ids.
    /// Test/tool use only -- concurrent writers during a reset may leave a
    /// few torn counts behind, so quiesce instrumented threads first.
    void reset() {
        std::lock_guard<std::mutex> lock(mu_);
        for (const std::unique_ptr<ThreadShard>& s : shards_) {
            for (auto& c : s->counters) c.store(0, std::memory_order_relaxed);
            for (auto& h : s->hists) {
                for (auto& b : h.bucket) b.store(0, std::memory_order_relaxed);
                h.count.store(0, std::memory_order_relaxed);
                h.sum.store(0, std::memory_order_relaxed);
            }
            std::lock_guard<std::mutex> span_lock(s->span_mu);
            s->spans.clear();
        }
        injected_spans_.clear();
    }

private:
    struct ThreadShard {
        struct Hist {
            std::array<std::atomic<std::uint64_t>, kHistBuckets> bucket{};
            std::atomic<std::uint64_t> count{0};
            std::atomic<std::uint64_t> sum{0};
        };
        std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
        std::array<Hist, kMaxHistograms> hists{};
        std::mutex span_mu;
        std::vector<TraceEvent> spans;
        int tid = 0;
    };

    Registry() : epoch_(std::chrono::steady_clock::now()) {}

    static void bump(std::atomic<std::uint64_t>& c, std::uint64_t n) noexcept {
        c.store(c.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
    }

    /// Name -> dense index, first-wins; -1 once `cap` distinct names exist.
    [[nodiscard]] int intern(std::vector<std::string>& names, std::string_view name,
                             int cap) {
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (names[i] == name) return static_cast<int>(i);
        }
        if (static_cast<int>(names.size()) >= cap) return -1;
        names.emplace_back(name);
        return static_cast<int>(names.size()) - 1;
    }

    template <typename V>
    static void sort_by_name(V& v) {
        std::sort(v.begin(), v.end(),
                  [](const auto& a, const auto& b) { return a.name < b.name; });
    }

    /// The calling thread's shard, created and registered on first touch.
    ThreadShard& tls() {
        thread_local ThreadShard* shard = nullptr;
        if (shard == nullptr) {
            std::lock_guard<std::mutex> lock(mu_);
            shards_.push_back(std::make_unique<ThreadShard>());
            shards_.back()->tid = static_cast<int>(shards_.size()) - 1;
            shard = shards_.back().get();
        }
        return *shard;
    }

    std::mutex mu_;
    std::vector<std::string> counter_names_;
    std::vector<std::string> histogram_names_;
    std::vector<std::unique_ptr<ThreadShard>> shards_;
    std::vector<TraceEvent> injected_spans_;
    std::atomic<bool> trace_on_{false};
    std::chrono::steady_clock::time_point epoch_;
};

}  // namespace mf::telemetry
