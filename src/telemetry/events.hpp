#pragma once
// Hot-path instrumentation macros. This is the ONLY header the instrumented
// kernels include, and the only one whose contents depend on the compile
// mode:
//
//   * MF_TELEMETRY defined non-zero (the CMake MF_TELEMETRY option, default
//     ON) -> macros record into the registry;
//   * otherwise, or when a translation unit defines MF_TELEMETRY_DISABLE
//     (the per-TU escape hatch the compiled-out no-op test uses) -> every
//     macro expands to ((void)0). No registry call, no clock read, no static
//     -- the instrumented function compiles to the identical code it had
//     before instrumentation (tests/telemetry_off_test.cpp proves the macros
//     vanish even inside constant evaluation).
//
// Name-resolution cost discipline when ON: MF_TELEM_COUNT/HIST take a name
// *expression* (evaluated lazily in a capture-free lambda) and cache the
// resolved id in one function-local static per call site / template
// instantiation. The name expression -- including any std::string
// construction -- runs exactly once per site; the steady-state cost of a
// count is a thread-local relaxed load/store pair.
//
// Constant-evaluation discipline: several instrumented kernels (renorm.hpp's
// accumulate, add.hpp's networks) are constexpr. Every macro is guarded by
// std::is_constant_evaluated(), so instrumented kernels stay usable in
// static_asserts and constant initializers; only runtime calls count.

#include <cstdint>
#include <type_traits>

#include "registry.hpp"

#if defined(MF_TELEMETRY) && MF_TELEMETRY && !defined(MF_TELEMETRY_DISABLE)
#define MF_TELEMETRY_ENABLED 1
#else
#define MF_TELEMETRY_ENABLED 0
#endif

#define MF_TELEM_CAT2(a, b) a##b
#define MF_TELEM_CAT(a, b) MF_TELEM_CAT2(a, b)

#if MF_TELEMETRY_ENABLED

namespace mf::telemetry::detail {

/// Clamp an observation to the histogram's uint64 domain: negatives, NaN and
/// non-arithmetic junk land in bucket 0 rather than wrapping.
[[nodiscard]] inline std::uint64_t clamp_value(double v) noexcept {
    if (!(v > 0.0)) return 0;  // NaN, zero, negative
    if (v >= 18446744073709551615.0) return ~std::uint64_t{0};
    return static_cast<std::uint64_t>(v);
}
template <typename I>
    requires std::is_integral_v<I>
[[nodiscard]] inline std::uint64_t clamp_value(I v) noexcept {
    if constexpr (std::is_signed_v<I>) {
        return v < 0 ? 0 : static_cast<std::uint64_t>(v);
    } else {
        return static_cast<std::uint64_t>(v);
    }
}

/// Per-call-site counter bump: NameFn is a distinct (capture-free) lambda
/// type per macro expansion, so the `static` below is one id cache per site
/// and per template instantiation. The lambda body -- the only place a name
/// string is built -- runs once, inside the thread-safe static initializer.
template <typename NameFn>
inline void count_site(NameFn name, std::uint64_t n) {
    static const CounterId id = Registry::instance().counter(name());
    Registry::instance().add(id, n);
}

template <typename NameFn>
inline void observe_site(NameFn name, std::uint64_t v) {
    static const HistogramId id = Registry::instance().histogram(name());
    Registry::instance().observe(id, v);
}

}  // namespace mf::telemetry::detail

namespace mf::telemetry {

/// RAII span: times a scope for the chrome trace (when tracing is enabled)
/// and/or a latency histogram (when a valid id is passed). Reads the clock
/// only if at least one of the two sinks wants the measurement.
class ScopedSpan {
public:
    explicit ScopedSpan(const char* name, HistogramId hist = {}) noexcept
        : name_(name), hist_(hist), trace_(Registry::instance().trace_enabled()) {
        if (trace_ || hist_.idx >= 0) t0_ = Registry::instance().now_ns();
    }
    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;
    ~ScopedSpan() {
        if (!trace_ && hist_.idx < 0) return;
        const std::uint64_t t1 = Registry::instance().now_ns();
        if (trace_) Registry::instance().record_span(name_, t0_, t1);
        if (hist_.idx >= 0) Registry::instance().observe(hist_, t1 - t0_);
    }

private:
    const char* name_;
    HistogramId hist_;
    bool trace_;
    std::uint64_t t0_ = 0;
};

}  // namespace mf::telemetry

/// Add `n` to the counter named by `name_expr` (any expression convertible
/// to std::string_view; evaluated once per call site).
#define MF_TELEM_COUNT_N(name_expr, n)                                          \
    do {                                                                        \
        if (!std::is_constant_evaluated()) {                                    \
            ::mf::telemetry::detail::count_site([] { return (name_expr); },     \
                                                static_cast<std::uint64_t>(n)); \
        }                                                                       \
    } while (0)

#define MF_TELEM_COUNT(name_expr) MF_TELEM_COUNT_N(name_expr, 1)

/// Counter with a runtime-computed name (labels depending on runtime values).
/// Pays a registry lookup per call -- cold paths only (backend selection,
/// override handling), never inside kernels.
#define MF_TELEM_COUNT_DYN(name_expr, n)                                     \
    do {                                                                     \
        if (!std::is_constant_evaluated()) {                                 \
            ::mf::telemetry::Registry& mf_telem_reg_ =                       \
                ::mf::telemetry::Registry::instance();                       \
            mf_telem_reg_.add(mf_telem_reg_.counter(name_expr),              \
                              static_cast<std::uint64_t>(n));                \
        }                                                                    \
    } while (0)

/// Record `value` (clamped to [0, 2^64)) into the log2-bucketed histogram
/// named by `name_expr`.
#define MF_TELEM_HIST(name_expr, value)                                      \
    do {                                                                     \
        if (!std::is_constant_evaluated()) {                                 \
            ::mf::telemetry::detail::observe_site(                           \
                [] { return (name_expr); },                                  \
                ::mf::telemetry::detail::clamp_value(value));                \
        }                                                                    \
    } while (0)

/// Trace-only scope span (statement context; declares an RAII local).
#define MF_TELEM_SPAN(name_literal)                 \
    ::mf::telemetry::ScopedSpan MF_TELEM_CAT(       \
        mf_telem_span_, __LINE__)(name_literal)

/// Scope span that also feeds a latency histogram (resolved once per site).
#define MF_TELEM_SPAN_TIMED(name_literal, hist_name_expr)                        \
    static const ::mf::telemetry::HistogramId MF_TELEM_CAT(mf_telem_hist_,       \
                                                           __LINE__) =           \
        ::mf::telemetry::Registry::instance().histogram(hist_name_expr);         \
    ::mf::telemetry::ScopedSpan MF_TELEM_CAT(mf_telem_span_, __LINE__)(          \
        name_literal, MF_TELEM_CAT(mf_telem_hist_, __LINE__))

#else  // !MF_TELEMETRY_ENABLED -- every macro vanishes.

#define MF_TELEM_COUNT_N(name_expr, n) ((void)0)
#define MF_TELEM_COUNT(name_expr) ((void)0)
#define MF_TELEM_COUNT_DYN(name_expr, n) ((void)0)
#define MF_TELEM_HIST(name_expr, value) ((void)0)
#define MF_TELEM_SPAN(name_literal) ((void)0)
#define MF_TELEM_SPAN_TIMED(name_literal, hist_name_expr) ((void)0)

#endif  // MF_TELEMETRY_ENABLED
