#pragma once
// Prometheus-style text exposition of a registry snapshot.
//
// Counters render as `name{labels} value` with one `# TYPE base counter`
// line per base name (labels are part of the registered name, so one base
// can fan out into many series). Histograms render in the standard
// cumulative-bucket form; because observations are log2-bucketed, every
// `le` edge is an exact power of two:
//
//   # TYPE mf_gemm_tile_ns histogram
//   mf_gemm_tile_ns_bucket{le="131072"} 3
//   mf_gemm_tile_ns_bucket{le="262144"} 9
//   mf_gemm_tile_ns_bucket{le="+Inf"} 9
//   mf_gemm_tile_ns_sum 1482211
//   mf_gemm_tile_ns_count 9
//
// The first sample is an `mf_build_info` series (value 1) carrying the
// provenance labels from build_info(), the idiomatic way to ship build
// metadata through a metrics pipeline.

#include <cinttypes>
#include <cstdio>
#include <string>

#include "build_info.hpp"
#include "registry.hpp"

namespace mf::telemetry {

namespace detail {

/// Metric names/labels are library-controlled ASCII; strip the two
/// characters that could break the text format, as the JSON writers do.
[[nodiscard]] inline std::string expo_clean(const std::string& s) {
    std::string r;
    for (char c : s) {
        if (c != '"' && c != '\\' && static_cast<unsigned char>(c) >= 0x20) r.push_back(c);
    }
    return r;
}

[[nodiscard]] inline std::string base_name(const std::string& name) {
    const std::size_t brace = name.find('{');
    return brace == std::string::npos ? name : name.substr(0, brace);
}

/// Splice an `le` label into a (possibly already labeled) histogram name:
/// "h" -> "h_bucket{le=\"8\"}", "h{k=\"v\"}" -> "h_bucket{k=\"v\",le=\"8\"}".
[[nodiscard]] inline std::string bucket_series(const std::string& name,
                                               const std::string& le) {
    const std::size_t brace = name.find('{');
    if (brace == std::string::npos) {
        return name + "_bucket{le=\"" + le + "\"}";
    }
    std::string labels = name.substr(brace + 1);  // "k=\"v\"}"
    labels.pop_back();                            // drop '}'
    return name.substr(0, brace) + "_bucket{" + labels + ",le=\"" + le + "\"}";
}

[[nodiscard]] inline std::string suffixed_series(const std::string& name,
                                                 const char* suffix) {
    const std::size_t brace = name.find('{');
    if (brace == std::string::npos) return name + suffix;
    return name.substr(0, brace) + suffix + name.substr(brace);
}

}  // namespace detail

/// Render a snapshot as Prometheus exposition text.
[[nodiscard]] inline std::string render_exposition(const Snapshot& snap,
                                                   const BuildInfo& info) {
    std::string out;
    out += "# mf::telemetry exposition\n";
    out += "# TYPE mf_build_info gauge\n";
    out += "mf_build_info{git_sha=\"" + detail::expo_clean(info.git_sha) +
           "\",compiler=\"" + detail::expo_clean(info.compiler) + "\",threads=\"" +
           std::to_string(info.threads) + "\",backend=\"" +
           detail::expo_clean(info.backend) + "\",fp_env=\"" +
           detail::expo_clean(info.fp_env) + "\"} 1\n";

    std::string last_base;
    for (const CounterSnap& c : snap.counters) {
        const std::string base = detail::base_name(c.name);
        if (base != last_base) {
            out += "# TYPE " + base + " counter\n";
            last_base = base;
        }
        out += c.name + " " + std::to_string(c.value) + "\n";
    }

    for (const HistogramSnap& h : snap.histograms) {
        out += "# TYPE " + detail::base_name(h.name) + " histogram\n";
        int top = -1;
        for (int b = 0; b < kHistBuckets; ++b) {
            if (h.bucket[static_cast<std::size_t>(b)] != 0) top = b;
        }
        std::uint64_t cum = 0;
        // Cumulative buckets up to the highest populated one; bucket b holds
        // [2^b, 2^(b+1)), so its upper edge is 2^(b+1). The final kHistBuckets-1
        // bucket is open-ended and only ever rendered as +Inf.
        for (int b = 0; b <= top && b < kHistBuckets - 1; ++b) {
            cum += h.bucket[static_cast<std::size_t>(b)];
            const std::uint64_t edge = std::uint64_t{1} << (b + 1);
            out += detail::bucket_series(h.name, std::to_string(edge)) + " " +
                   std::to_string(cum) + "\n";
        }
        out += detail::bucket_series(h.name, "+Inf") + " " + std::to_string(h.count) + "\n";
        out += detail::suffixed_series(h.name, "_sum") + " " + std::to_string(h.sum) + "\n";
        out += detail::suffixed_series(h.name, "_count") + " " +
               std::to_string(h.count) + "\n";
    }
    return out;
}

/// Snapshot the process registry and write the exposition to `path`
/// ("-" = stdout). Returns false (with a stderr note) on IO failure.
inline bool write_exposition(const std::string& path) {
    const std::string text =
        render_exposition(Registry::instance().snapshot(), build_info());
    if (path == "-") {
        std::fputs(text.c_str(), stdout);
        return true;
    }
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "mf::telemetry: cannot write %s\n", path.c_str());
        return false;
    }
    std::fputs(text.c_str(), f);
    std::fclose(f);
    return true;
}

}  // namespace mf::telemetry
