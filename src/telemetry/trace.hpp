#pragma once
// chrome://tracing (Trace Event Format) export of recorded spans.
//
// Spans become complete ("ph":"X") events on one pid, with the shard's
// sequential thread id as tid -- load one of these files into
// chrome://tracing or https://ui.perfetto.dev and the per-thread tile
// timeline of the parallel GEMM renders as horizontal bars: load imbalance
// is visible as ragged right edges.
//
// The output is deterministic for a given snapshot (events sorted by
// (tid, begin, name), fixed field order, fixed %.3f microsecond formatting),
// which is what lets tests/telemetry_test.cpp hold a golden copy.

#include <cstdio>
#include <string>

#include "registry.hpp"

namespace mf::telemetry {

/// Render a snapshot's spans as a chrome://tracing JSON document.
[[nodiscard]] inline std::string chrome_trace_json(const Snapshot& snap) {
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    char buf[160];
    bool first = true;
    for (const TraceEvent& e : snap.spans) {
        std::string name;
        for (char c : e.name) {
            if (c != '"' && c != '\\' && static_cast<unsigned char>(c) >= 0x20) {
                name.push_back(c);
            }
        }
        const double ts_us = static_cast<double>(e.begin_ns) / 1000.0;
        const double dur_us = static_cast<double>(e.end_ns - e.begin_ns) / 1000.0;
        std::snprintf(buf, sizeof buf,
                      "%s\n{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
                      "\"ts\":%.3f,\"dur\":%.3f}",
                      first ? "" : ",", name.c_str(), e.tid, ts_us, dur_us);
        out += buf;
        first = false;
    }
    out += "\n]}\n";
    return out;
}

/// Snapshot the process registry and write the trace to `path`.
/// Returns false (with a stderr note) on IO failure.
inline bool write_chrome_trace(const std::string& path) {
    const std::string text = chrome_trace_json(Registry::instance().snapshot());
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "mf::telemetry: cannot write %s\n", path.c_str());
        return false;
    }
    std::fputs(text.c_str(), f);
    std::fclose(f);
    return true;
}

}  // namespace mf::telemetry
