#pragma once
// Planar (structure-of-arrays) extended-precision kernels.
//
// The FPAN kernels are branch-free straight-line code, so applying one gate
// sequence to MANY elements at once is a perfectly vectorizable loop -- this
// is the data-parallel property the paper's evaluation exploits (§5: the
// competing libraries "do not provide SIMD reduction operators and their
// code is too complex to automatically vectorize").
//
// An array-of-structs MultiFloat<double, N> vector interleaves limbs in
// memory, which blocks the loop vectorizer. PlanarVector stores limb k of
// every element contiguously ("planes"), so the elementwise loops below have
// unit-stride accesses and no cross-iteration dependences: the compiler
// vectorizes the entire network across elements.
//
// The arithmetic performed is IDENTICAL to mf::add / mf::mul (same gate
// sequences); tests/planar_test.cpp checks bit-for-bit agreement with the
// scalar kernels.
//
// The elementwise ranges and the dot reduction are executed by the explicit
// pack kernels of mf::simd (runtime-dispatched to the widest available
// backend, scalar tail loop for the remainder) instead of relying on the
// auto-vectorizer; see src/simd/ and DESIGN.md "SIMD backend".

#include <cstddef>
#include <vector>

#include "../mf/multifloats.hpp"
#include "../simd/dispatch.hpp"

namespace mf::planar {

/// SoA vector of N-term expansions: plane k holds limb k of every element.
template <FloatingPoint T, int N>
class Vector {
public:
    Vector() = default;
    explicit Vector(std::size_t n) { resize(n); }

    void resize(std::size_t n) {
        for (int k = 0; k < N; ++k) plane_[k].assign(n, T(0));
        size_ = n;
    }

    [[nodiscard]] std::size_t size() const noexcept { return size_; }

    [[nodiscard]] T* plane(int k) noexcept { return plane_[k].data(); }
    [[nodiscard]] const T* plane(int k) const noexcept { return plane_[k].data(); }

    [[nodiscard]] MultiFloat<T, N> get(std::size_t i) const {
        MultiFloat<T, N> x;
        for (int k = 0; k < N; ++k) x.limb[k] = plane_[k][i];
        return x;
    }

    void set(std::size_t i, const MultiFloat<T, N>& x) {
        for (int k = 0; k < N; ++k) plane_[k][i] = x.limb[k];
    }

private:
    std::vector<T> plane_[N];
    std::size_t size_ = 0;
};

/// Read-only row-major matrix view over planar storage: one base pointer per
/// limb plane plus (rows, cols, stride), where `stride` is the element
/// distance between consecutive row starts within each plane (>= cols;
/// defaults to cols). This is the matrix argument type of the planar GEMM
/// engines (simd::gemm_tiled, blas::gemm_packed): shapes travel with the
/// data, and a sub-block of a larger planar matrix is just a view with
/// offset plane pointers and the parent's stride.
template <FloatingPoint T, int N>
struct ConstMatrixView {
    const T* planes[N] = {};
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::size_t stride = 0;

    constexpr ConstMatrixView() = default;
    ConstMatrixView(const Vector<T, N>& v, std::size_t r, std::size_t c,
                    std::size_t ld = 0) noexcept
        : rows(r), cols(c), stride(ld ? ld : c) {
        for (int k = 0; k < N; ++k) planes[k] = v.plane(k);
    }
    constexpr ConstMatrixView(const T* const (&p)[N], std::size_t r, std::size_t c,
                              std::size_t ld = 0) noexcept
        : rows(r), cols(c), stride(ld ? ld : c) {
        for (int k = 0; k < N; ++k) planes[k] = p[k];
    }

    /// Base pointer of row i in plane k.
    [[nodiscard]] constexpr const T* row(int k, std::size_t i) const noexcept {
        return planes[k] + i * stride;
    }
    [[nodiscard]] MultiFloat<T, N> get(std::size_t i, std::size_t j) const noexcept {
        MultiFloat<T, N> x;
        for (int k = 0; k < N; ++k) x.limb[k] = planes[k][i * stride + j];
        return x;
    }
};

/// Mutable flavor of ConstMatrixView; converts implicitly to it.
template <FloatingPoint T, int N>
struct MatrixView {
    T* planes[N] = {};
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::size_t stride = 0;

    constexpr MatrixView() = default;
    MatrixView(Vector<T, N>& v, std::size_t r, std::size_t c,
               std::size_t ld = 0) noexcept
        : rows(r), cols(c), stride(ld ? ld : c) {
        for (int k = 0; k < N; ++k) planes[k] = v.plane(k);
    }
    constexpr MatrixView(T* const (&p)[N], std::size_t r, std::size_t c,
                         std::size_t ld = 0) noexcept
        : rows(r), cols(c), stride(ld ? ld : c) {
        for (int k = 0; k < N; ++k) planes[k] = p[k];
    }

    constexpr operator ConstMatrixView<T, N>() const noexcept {
        ConstMatrixView<T, N> cv;
        for (int k = 0; k < N; ++k) cv.planes[k] = planes[k];
        cv.rows = rows;
        cv.cols = cols;
        cv.stride = stride;
        return cv;
    }

    [[nodiscard]] constexpr T* row(int k, std::size_t i) const noexcept {
        return planes[k] + i * stride;
    }
    [[nodiscard]] MultiFloat<T, N> get(std::size_t i, std::size_t j) const noexcept {
        MultiFloat<T, N> x;
        for (int k = 0; k < N; ++k) x.limb[k] = planes[k][i * stride + j];
        return x;
    }
    void set(std::size_t i, std::size_t j, const MultiFloat<T, N>& x) const noexcept {
        for (int k = 0; k < N; ++k) planes[k][i * stride + j] = x.limb[k];
    }
};

/// View a planar Vector as a rows x cols row-major matrix.
template <FloatingPoint T, int N>
[[nodiscard]] ConstMatrixView<T, N> matrix_view(const Vector<T, N>& v,
                                                std::size_t rows, std::size_t cols,
                                                std::size_t stride = 0) noexcept {
    return ConstMatrixView<T, N>(v, rows, cols, stride);
}
template <FloatingPoint T, int N>
[[nodiscard]] MatrixView<T, N> matrix_view(Vector<T, N>& v, std::size_t rows,
                                           std::size_t cols,
                                           std::size_t stride = 0) noexcept {
    return MatrixView<T, N>(v, rows, cols, stride);
}

namespace detail {

/// Elementwise z = x + y over raw planes [i0, i1): W elements at a time
/// through the pack add network, scalar tail for the remainder.
template <FloatingPoint T, int N>
void add_range(const T* const* xp, const T* const* yp, T* const* zp,
               std::size_t i0, std::size_t i1) {
    simd::add_range<T, N>(xp, yp, zp, i0, i1);
}

template <FloatingPoint T, int N>
void fma_range(const MultiFloat<T, N>& alpha, const T* const* xp, T* const* yp,
               std::size_t i0, std::size_t i1) {
    simd::fma_range<T, N>(alpha, xp, yp, i0, i1);
}

}  // namespace detail

/// y <- alpha * x + y.
template <FloatingPoint T, int N>
void axpy(const MultiFloat<T, N>& alpha, const Vector<T, N>& x, Vector<T, N>& y) {
    const T* xp[N];
    T* yp[N];
    for (int k = 0; k < N; ++k) {
        xp[k] = x.plane(k);
        yp[k] = y.plane(k);
    }
    detail::fma_range<T, N>(alpha, xp, yp, 0, x.size());
}

/// <x, y> with (at least) eight independent accumulators kept in pack lanes
/// -- the SIMD-reduction operator the paper says competing libraries lack.
/// For pack widths <= 8 the accumulation order matches the historical
/// eight-accumulator loop exactly, so the result is backend-independent.
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> dot(const Vector<T, N>& x, const Vector<T, N>& y) {
    const T* xp[N];
    const T* yp[N];
    for (int k = 0; k < N; ++k) {
        xp[k] = x.plane(k);
        yp[k] = y.plane(k);
    }
    return simd::dot<T, N>(xp, yp, x.size());
}

/// y <- A x (A row-major n x m, planar): each output element is a planar
/// dot product over the contiguous row slice.
template <FloatingPoint T, int N>
void gemv(const Vector<T, N>& a, std::size_t n, std::size_t m,
          const Vector<T, N>& x, Vector<T, N>& y) {
    const T* ap[N];
    const T* xp[N];
    for (int p = 0; p < N; ++p) {
        ap[p] = a.plane(p);
        xp[p] = x.plane(p);
    }
    // One backend resolve for all n row reductions.
    simd::with_active_width<T>([&](auto w) {
        for (std::size_t i = 0; i < n; ++i) {
            const T* arow[N];
            for (int p = 0; p < N; ++p) arow[p] = ap[p] + i * m;
            y.set(i, simd::kernels::dot<T, N, w()>(arow, xp, m));
        }
    });
}

/// C <- A B, all planar, ikj order: the inner j-loop is an elementwise
/// fused multiply-add sweep over contiguous planes (vectorizes).
template <FloatingPoint T, int N>
void gemm(const Vector<T, N>& a, const Vector<T, N>& b, Vector<T, N>& c,
          std::size_t n, std::size_t k, std::size_t m) {
    const T* bp[N];
    T* cp[N];
    for (int p = 0; p < N; ++p) {
        bp[p] = b.plane(p);
        cp[p] = c.plane(p);
    }
    // Backend dispatch hoisted out of the loop nest: n*k short fma sweeps
    // would otherwise re-resolve the active backend on every call.
    simd::with_active_width<T>([&](auto w) {
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t kk = 0; kk < k; ++kk) {
                const MultiFloat<T, N> aik = a.get(i * k + kk);
                // c[i, :] += aik * b[kk, :]
                const T* brow[N];
                T* crow[N];
                for (int p = 0; p < N; ++p) {
                    brow[p] = bp[p] + kk * m;
                    crow[p] = cp[p] + i * m;
                }
                simd::kernels::fma_range<T, N, w()>(aik, brow, crow, 0, m);
            }
        }
    });
}

}  // namespace mf::planar
