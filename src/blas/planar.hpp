#pragma once
// Planar (structure-of-arrays) extended-precision kernels.
//
// The FPAN kernels are branch-free straight-line code, so applying one gate
// sequence to MANY elements at once is a perfectly vectorizable loop -- this
// is the data-parallel property the paper's evaluation exploits (§5: the
// competing libraries "do not provide SIMD reduction operators and their
// code is too complex to automatically vectorize").
//
// An array-of-structs MultiFloat<double, N> vector interleaves limbs in
// memory, which blocks the loop vectorizer. PlanarVector stores limb k of
// every element contiguously ("planes"), so the elementwise loops below have
// unit-stride accesses and no cross-iteration dependences: the compiler
// vectorizes the entire network across elements.
//
// The arithmetic performed is IDENTICAL to mf::add / mf::mul (same gate
// sequences); tests/planar_test.cpp checks bit-for-bit agreement with the
// scalar kernels.

#include <cstddef>
#include <vector>

#include "../mf/multifloats.hpp"

namespace mf::planar {

/// SoA vector of N-term expansions: plane k holds limb k of every element.
template <FloatingPoint T, int N>
class Vector {
public:
    Vector() = default;
    explicit Vector(std::size_t n) { resize(n); }

    void resize(std::size_t n) {
        for (int k = 0; k < N; ++k) plane_[k].assign(n, T(0));
        size_ = n;
    }

    [[nodiscard]] std::size_t size() const noexcept { return size_; }

    [[nodiscard]] T* plane(int k) noexcept { return plane_[k].data(); }
    [[nodiscard]] const T* plane(int k) const noexcept { return plane_[k].data(); }

    [[nodiscard]] MultiFloat<T, N> get(std::size_t i) const {
        MultiFloat<T, N> x;
        for (int k = 0; k < N; ++k) x.limb[k] = plane_[k][i];
        return x;
    }

    void set(std::size_t i, const MultiFloat<T, N>& x) {
        for (int k = 0; k < N; ++k) plane_[k][i] = x.limb[k];
    }

private:
    std::vector<T> plane_[N];
    std::size_t size_ = 0;
};

namespace detail {

/// Elementwise z = x + y over raw planes [i0, i1): the add network unrolled
/// per element; the loop body is branch-free, so this vectorizes.
template <FloatingPoint T, int N>
void add_range(const T* const* xp, const T* const* yp, T* const* zp,
               std::size_t i0, std::size_t i1) {
    // Planes belong to distinct std::vectors and never alias; the pragma
    // spares the vectorizer a 2N-way runtime disambiguation.
#pragma GCC ivdep
    for (std::size_t i = i0; i < i1; ++i) {
        MultiFloat<T, N> x;
        MultiFloat<T, N> y;
        for (int k = 0; k < N; ++k) {
            x.limb[k] = xp[k][i];
            y.limb[k] = yp[k][i];
        }
        const MultiFloat<T, N> z = add(x, y);
        for (int k = 0; k < N; ++k) zp[k][i] = z.limb[k];
    }
}

template <FloatingPoint T, int N>
void fma_range(const MultiFloat<T, N>& alpha, const T* const* xp, T* const* yp,
               std::size_t i0, std::size_t i1) {
    // Planes never alias (see add_range).
#pragma GCC ivdep
    for (std::size_t i = i0; i < i1; ++i) {
        MultiFloat<T, N> x;
        MultiFloat<T, N> y;
        for (int k = 0; k < N; ++k) {
            x.limb[k] = xp[k][i];
            y.limb[k] = yp[k][i];
        }
        const MultiFloat<T, N> z = add(mul(alpha, x), y);
        for (int k = 0; k < N; ++k) yp[k][i] = z.limb[k];
    }
}

}  // namespace detail

/// y <- alpha * x + y.
template <FloatingPoint T, int N>
void axpy(const MultiFloat<T, N>& alpha, const Vector<T, N>& x, Vector<T, N>& y) {
    const T* xp[N];
    T* yp[N];
    for (int k = 0; k < N; ++k) {
        xp[k] = x.plane(k);
        yp[k] = y.plane(k);
    }
    detail::fma_range<T, N>(alpha, xp, yp, 0, x.size());
}

/// <x, y> with eight independent accumulators kept in limb-major (SoA) form,
/// so the whole fused multiply-accumulate network vectorizes across the
/// eight lanes -- the SIMD-reduction operator the paper says competing
/// libraries lack.
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> dot(const Vector<T, N>& x, const Vector<T, N>& y) {
    constexpr std::size_t K = 8;
    const std::size_t n = x.size();
    T part[N][K] = {};
    const T* xp[N];
    const T* yp[N];
    for (int k = 0; k < N; ++k) {
        xp[k] = x.plane(k);
        yp[k] = y.plane(k);
    }
    for (std::size_t blk = 0; blk + K <= n; blk += K) {
#pragma GCC ivdep
        for (std::size_t j = 0; j < K; ++j) {
            MultiFloat<T, N> xe;
            MultiFloat<T, N> ye;
            MultiFloat<T, N> acc;
            for (int k = 0; k < N; ++k) {
                xe.limb[k] = xp[k][blk + j];
                ye.limb[k] = yp[k][blk + j];
                acc.limb[k] = part[k][j];
            }
            const MultiFloat<T, N> z = add(acc, mul(xe, ye));
            for (int k = 0; k < N; ++k) part[k][j] = z.limb[k];
        }
    }
    MultiFloat<T, N> acc{};
    for (std::size_t j = 0; j < K; ++j) {
        MultiFloat<T, N> p;
        for (int k = 0; k < N; ++k) p.limb[k] = part[k][j];
        acc = add(acc, p);
    }
    for (std::size_t i = n - n % K; i < n; ++i) {
        acc = add(acc, mul(x.get(i), y.get(i)));
    }
    return acc;
}

/// y <- A x (A row-major n x m, planar): each output element is a planar
/// dot product over the contiguous row slice.
template <FloatingPoint T, int N>
void gemv(const Vector<T, N>& a, std::size_t n, std::size_t m,
          const Vector<T, N>& x, Vector<T, N>& y) {
    constexpr std::size_t K = 4;
    const T* ap[N];
    const T* xp[N];
    for (int p = 0; p < N; ++p) {
        ap[p] = a.plane(p);
        xp[p] = x.plane(p);
    }
    for (std::size_t i = 0; i < n; ++i) {
        T part[N][K] = {};
        for (std::size_t blk = 0; blk + K <= m; blk += K) {
#pragma GCC ivdep
            for (std::size_t j = 0; j < K; ++j) {
                MultiFloat<T, N> ae;
                MultiFloat<T, N> xe;
                MultiFloat<T, N> pe;
                for (int p = 0; p < N; ++p) {
                    ae.limb[p] = ap[p][i * m + blk + j];
                    xe.limb[p] = xp[p][blk + j];
                    pe.limb[p] = part[p][j];
                }
                const MultiFloat<T, N> z = add(pe, mul(ae, xe));
                for (int p = 0; p < N; ++p) part[p][j] = z.limb[p];
            }
        }
        MultiFloat<T, N> acc{};
        for (std::size_t j = 0; j < K; ++j) {
            MultiFloat<T, N> p;
            for (int pl = 0; pl < N; ++pl) p.limb[pl] = part[pl][j];
            acc = add(acc, p);
        }
        for (std::size_t jj = m - m % K; jj < m; ++jj) {
            acc = add(acc, mul(a.get(i * m + jj), x.get(jj)));
        }
        y.set(i, acc);
    }
}

/// C <- A B, all planar, ikj order: the inner j-loop is an elementwise
/// fused multiply-add sweep over contiguous planes (vectorizes).
template <FloatingPoint T, int N>
void gemm(const Vector<T, N>& a, const Vector<T, N>& b, Vector<T, N>& c,
          std::size_t n, std::size_t k, std::size_t m) {
    const T* bp[N];
    T* cp[N];
    for (int p = 0; p < N; ++p) {
        bp[p] = b.plane(p);
        cp[p] = c.plane(p);
    }
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t kk = 0; kk < k; ++kk) {
            const MultiFloat<T, N> aik = a.get(i * k + kk);
            // c[i, :] += aik * b[kk, :]
            const T* brow[N];
            T* crow[N];
            for (int p = 0; p < N; ++p) {
                brow[p] = bp[p] + kk * m;
                crow[p] = cp[p] + i * m;
            }
            detail::fma_range<T, N>(aik, brow, crow, 0, m);
        }
    }
}

}  // namespace mf::planar
