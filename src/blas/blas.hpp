#pragma once
// Umbrella header for the mf::blas subsystem.
//
//   views.hpp               VectorView/MatrixView (const + mutable) -- the
//                           typed shapes the public signatures take.
//   kernels.hpp             AXPY/DOT/GEMV/GEMM (+ scal/asum/nrm2/iamax/ger),
//                           templated over the number type; MultiFloat views
//                           take the explicit-SIMD pack fast path.
//   planar.hpp              planar (SoA) Vector + matrix views and the
//                           planar axpy/dot/gemv/gemm reference kernels.
//   engine/gemm_packed.hpp  BLIS-style packed cache-blocked GEMM
//                           (bit-identical to planar::gemm; DESIGN.md §11).

#include "engine/gemm_packed.hpp"
#include "kernels.hpp"
#include "planar.hpp"
#include "views.hpp"
