#pragma once
// Register-blocked mr x nr GEMM micro-kernel over packed panels
// (DESIGN.md §11).
//
// One invocation computes C[0:mr, 0:nr] += A(0:mr, 0:kc) * B(0:kc, 0:nr)
// with the C micro-tile held in MultiFloat<Pack<T, W>, N> accumulators for
// the whole kc sweep: C traffic drops from one load+store per kk (the
// fma_range sweep's cost) to one load+store per kc, packed-B rows are loaded
// once per kk and reused across all mr rows, and the mr x nrp independent
// accumulation chains give the out-of-order core far more exploitable ILP
// than a single fma_range's one-chain-per-pack.
//
// Bit-identity argument: every output element receives exactly the update
// planar::gemm applies -- add(mul(a_ik, b_kj), c_ij), the identical FPAN
// gate sequence, in the identical kk-ascending order. Holding the partial
// result in a register instead of storing/reloading it through the C plane
// does not change any arithmetic, and pack lanes execute the same IEEE ops
// as scalars (pack.hpp), so the packed result is bit-for-bit planar::gemm's
// (enforced by check::diff_gemm_packed / tests/gemm_threads_test.cpp).
//
// Edge tiles (rows < mr from the last row block, cols < nr from the last
// column block) drop to a per-row fma_range sweep over the packed panels --
// a different loop shape but, per element, the same kk-ascending updates, so
// identity holds at the edges too.

#include <cstddef>

#include "../../simd/kernels.hpp"
#include "../../simd/pack.hpp"
#include "../planar.hpp"

namespace mf::blas::engine {

/// Micro-kernel geometry and bodies for one (T, N, W) instantiation.
template <std::floating_point T, int N, int W>
struct MicroKernel {
    using P = simd::Pack<T, W>;

    /// Rows per micro-tile: four independent accumulation chains per pack
    /// column -- enough ILP to cover the FPAN networks' dependent-add
    /// latency without exhausting architectural registers.
    static constexpr int MR = 4;
    /// Packs per micro-tile row. Two for short expansions when the register
    /// file allows it (AVX-512's 32 registers, or scalar packs where
    /// "registers" are the compiler's problem); one otherwise -- N=3/4
    /// accumulators already occupy MR*N registers.
    static constexpr int NRP = (N <= 2 && (W >= 8 || W == 1)) ? 2 : 1;
    /// Columns per micro-tile.
    static constexpr int NR = NRP * W;

    /// Full tile: C[0:MR, 0:NR] += A(0:MR, 0:kc) * B(0:kc, 0:NR).
    /// ap[p]: packed A plane p at the tile's row origin, row stride lda (=kc);
    /// bp[p]: packed B plane p at the tile's column origin, row stride ldb;
    /// cp[p]: C plane p at the tile's (row, column) origin, row stride ldc.
    static void full(const T* const (&ap)[N], std::size_t lda,
                     const T* const (&bp)[N], std::size_t ldb,
                     T* const (&cp)[N], std::size_t ldc, std::size_t kc) {
        MultiFloat<P, N> acc[MR][NRP];
        for (int r = 0; r < MR; ++r) {
            for (int q = 0; q < NRP; ++q) {
                for (int p = 0; p < N; ++p) {
                    acc[r][q].limb[p] =
                        P::load(cp[p] + static_cast<std::size_t>(r) * ldc + q * W);
                }
            }
        }
        for (std::size_t kk = 0; kk < kc; ++kk) {
            MultiFloat<P, N> bv[NRP];
            for (int q = 0; q < NRP; ++q) {
                for (int p = 0; p < N; ++p) {
                    bv[q].limb[p] = P::load(bp[p] + kk * ldb + q * W);
                }
            }
            for (int r = 0; r < MR; ++r) {
                MultiFloat<T, N> a_s;
                for (int p = 0; p < N; ++p) {
                    a_s.limb[p] = ap[p][static_cast<std::size_t>(r) * lda + kk];
                }
                const MultiFloat<P, N> av = simd::kernels::broadcast<P, T, N>(a_s);
                for (int q = 0; q < NRP; ++q) {
                    acc[r][q] = add(mul(av, bv[q]), acc[r][q]);
                }
            }
        }
        for (int r = 0; r < MR; ++r) {
            for (int q = 0; q < NRP; ++q) {
                for (int p = 0; p < N; ++p) {
                    acc[r][q].limb[p].store(
                        cp[p] + static_cast<std::size_t>(r) * ldc + q * W);
                }
            }
        }
    }

    /// Partial tile (rows <= MR, cols <= NR, at least one of them short):
    /// per-row kk-ascending fma_range sweeps over the packed panels -- same
    /// per-element update sequence, memory-accumulated.
    static void edge(const T* const (&ap)[N], std::size_t lda,
                     const T* const (&bp)[N], std::size_t ldb,
                     T* const (&cp)[N], std::size_t ldc, std::size_t kc,
                     std::size_t rows, std::size_t cols) {
        for (std::size_t r = 0; r < rows; ++r) {
            T* crow[N];
            for (int p = 0; p < N; ++p) crow[p] = cp[p] + r * ldc;
            for (std::size_t kk = 0; kk < kc; ++kk) {
                MultiFloat<T, N> a_s;
                for (int p = 0; p < N; ++p) a_s.limb[p] = ap[p][r * lda + kk];
                const T* brow[N];
                for (int p = 0; p < N; ++p) brow[p] = bp[p] + kk * ldb;
                simd::kernels::fma_range<T, N, W>(a_s, brow, crow, 0, cols);
            }
        }
    }
};

}  // namespace mf::blas::engine
