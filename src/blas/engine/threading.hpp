#pragma once
// Static owner-computes parallelism for the packed GEMM engine
// (DESIGN.md §11), with graceful degradation (DESIGN.md §12).
//
// gemm_packed parallelizes over macro-panels: contiguous mc-row blocks of C.
// Each worker owns a contiguous range of whole blocks ("owner-computes"), so
// every C element is written by exactly one thread and the kk-ascending
// update order per element is untouched -- the result is bit-identical to
// the sequential run for ANY worker count, which is what the conformance
// differ enforces (check::diff_gemm_packed).
//
// Two execution substrates behind one entry point:
//   * OpenMP (when compiled in): one parallel region per call, same
//     omp_in_parallel() guard discipline as every other parallel region in
//     this codebase -- called from inside an existing region we run serially
//     instead of oversubscribing with nested teams;
//   * a std::thread fallback pool, used when OpenMP is not compiled in, or
//     on request (ThreadMode::pool) so OpenMP builds can still exercise and
//     differential-test the fallback path.
// Workers are forked per call; at macro-panel granularity (hundreds of
// microseconds to milliseconds of work per block) the fork/join cost is
// noise, and a persistent pool would be one more global to tear down.
//
// Degradation contract: a std::thread construction that throws
// std::system_error (pthread limit, cgroup cap, or an injected fault) is
// ABSORBED, never propagated -- already-spawned workers keep their ranges,
// the calling thread picks up every unowned block, and a
// mf_guard_degraded_total{path="thread"} counter records the event. Because
// ownership stays a partition of [0, nblocks) and per-block work is
// unchanged, the degraded run is bit-identical to the healthy one.

#include <cstddef>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#if defined(_OPENMP)
#include <omp.h>
#endif

#include "../../guard/inject.hpp"
#include "../../telemetry/events.hpp"

namespace mf::blas::engine {

/// How parallel_blocks executes its workers.
enum class ThreadMode {
    automatic,  ///< OpenMP when compiled in, std::thread pool otherwise
    pool,       ///< force the std::thread pool (testable in OpenMP builds)
    serial,     ///< no worker threads at all
};

/// Same guard as blas::detail::in_parallel; redeclared here so the engine
/// headers stay self-contained.
inline bool in_parallel() noexcept {
#if defined(_OPENMP)
    return omp_in_parallel() != 0;
#else
    return false;
#endif
}

/// Worker count the runtime would grant right now (OpenMP's max_threads or
/// hardware_concurrency).
[[nodiscard]] inline unsigned default_threads() noexcept {
#if defined(_OPENMP)
    return static_cast<unsigned>(omp_get_max_threads());
#else
    const unsigned hc = std::thread::hardware_concurrency();
    return hc ? hc : 1u;
#endif
}

/// Worker count parallel_blocks would PLAN for this call -- an upper bound
/// on the slot index fn will ever see, so callers can pre-size per-slot
/// scratch before entering the parallel region. (The granted team can be
/// smaller; slots are always < the planned count.)
[[nodiscard]] inline unsigned planned_workers(std::size_t nblocks,
                                              ThreadMode mode = ThreadMode::automatic,
                                              unsigned max_threads = 0) noexcept {
    unsigned nw = max_threads ? max_threads : default_threads();
    if (nw > nblocks) nw = static_cast<unsigned>(nblocks);
    if (mode == ThreadMode::serial || in_parallel() || nw <= 1) return 1;
    return nw;
}

namespace detail {

/// Blocks owned by worker `w` of `nw`: the contiguous range
/// [nblocks*w/nw, nblocks*(w+1)/nw) -- the same static partition for both
/// substrates, so OpenMP and pool runs even share their work assignment.
///
/// Spawn failure is absorbed here: if constructing worker `w` throws
/// std::system_error, workers [1, w) run their ranges as planned and the
/// calling thread (slot 0) covers its own range plus everything from w's
/// range onward. Join-before-return holds on every path.
template <typename F>
void run_pool(unsigned nw, std::size_t nblocks, F&& fn) {
    std::vector<std::thread> workers;
    workers.reserve(nw - 1);
    unsigned spawned = nw;  // workers with a live owner, caller included
    try {
        for (unsigned w = 1; w < nw; ++w) {
            if (guard::inject::should_fail_spawn()) {
                throw std::system_error(
                    std::make_error_code(std::errc::resource_unavailable_try_again),
                    "mf::guard injected thread-spawn fault");
            }
            workers.emplace_back([&fn, w, nw, nblocks] {
                const std::size_t lo = nblocks * w / nw;
                const std::size_t hi = nblocks * (w + 1) / nw;
                for (std::size_t blk = lo; blk < hi; ++blk) fn(blk, w);
            });
        }
    } catch (const std::system_error&) {
        spawned = static_cast<unsigned>(workers.size()) + 1;
        MF_TELEM_COUNT_N("mf_guard_degraded_total{path=\"thread\"}", 1);
    }
    const std::size_t hi0 = nblocks / nw;  // worker 0 = the calling thread
    for (std::size_t blk = 0; blk < hi0; ++blk) fn(blk, 0u);
    // Orphaned ranges (spawn failed): run on the calling thread, slot 0 --
    // its scratch is free again once its own range is done.
    for (std::size_t blk = nblocks * spawned / nw; blk < nblocks; ++blk) {
        fn(blk, 0u);
    }
    for (auto& t : workers) t.join();
}

}  // namespace detail

/// Run fn(block, slot) for every block in [0, nblocks), statically
/// partitioned over up to max_threads workers (0 = runtime default). `slot`
/// identifies the executing worker, 0 <= slot < planned_workers(...): stable
/// per worker within one call, so fn can index pre-allocated per-worker
/// scratch. Serializes when nested inside an existing OpenMP parallel
/// region; absorbs thread-spawn failure by running orphaned blocks on the
/// calling thread (see run_pool).
template <typename F>
void parallel_blocks_slots(std::size_t nblocks, F&& fn,
                           ThreadMode mode = ThreadMode::automatic,
                           unsigned max_threads = 0) {
    const unsigned nw = planned_workers(nblocks, mode, max_threads);
    if (nw <= 1) {
        for (std::size_t blk = 0; blk < nblocks; ++blk) fn(blk, 0u);
        return;
    }
    if (mode == ThreadMode::pool) {
        detail::run_pool(nw, nblocks, std::forward<F>(fn));
        return;
    }
#if defined(_OPENMP)
#pragma omp parallel num_threads(static_cast<int>(nw))
    {
        // Partition by the team size actually granted (can be < nw); the
        // result does not depend on it -- only the work assignment does.
        const auto team = static_cast<unsigned>(omp_get_num_threads());
        const auto w = static_cast<unsigned>(omp_get_thread_num());
        const std::size_t lo = nblocks * w / team;
        const std::size_t hi = nblocks * (w + 1) / team;
        for (std::size_t blk = lo; blk < hi; ++blk) fn(blk, w);
    }
#else
    detail::run_pool(nw, nblocks, std::forward<F>(fn));
#endif
}

/// Block-only adapter (no slot): the original parallel_blocks surface.
template <typename F>
void parallel_blocks(std::size_t nblocks, F&& fn,
                     ThreadMode mode = ThreadMode::automatic,
                     unsigned max_threads = 0) {
    parallel_blocks_slots(
        nblocks, [&fn](std::size_t blk, unsigned) { fn(blk); }, mode,
        max_threads);
}

}  // namespace mf::blas::engine
