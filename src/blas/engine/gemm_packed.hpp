#pragma once
// BLIS-style packed cache-blocked GEMM engine (DESIGN.md §11).
//
// C += A B with A (n x k), B (k x m), C (n x m), all planar row-major views
// -- the same accumulate contract as planar::gemm and simd::gemm_tiled.
//
// Loop structure (outside in), following the classical
// Goto/BLIS decomposition:
//
//   jc over m in nc columns     B column-panel        (L3-resident packed)
//    pc over k in kc rows       pack B(pc, jc) once   (ascending: kk order)
//     ic over n in mc rows      macro-panels, parallel (owner-computes)
//       pack A(ic, pc)          per-worker scratch     (L2-resident packed)
//       jr over nc in NR cols   packed-B micro-panel   (L1-resident)
//        ir over mc in MR rows  register micro-kernel  (microkernel.hpp)
//
// Block sizes mc/kc/nc are selected per detected backend at dispatch time
// (auto_blocks below; pack width and expansion length set the micro-tile
// footprint) and can be pinned via GemmConfig for experiments.
//
// Determinism/bit-identity: the pc loop ascends and the micro-kernel ascends
// kk within each pc block, so every C element sees its k updates in exactly
// planar::gemm's order, each update being the identical add(mul(.,.),.)
// FPAN sequence; macro-panels partition whole C row blocks per worker
// (owner-computes, threading.hpp), so no element is touched by two threads.
// Result: bit-identical to sequential planar::gemm for every backend, thread
// count, and threading substrate -- enforced by check::diff_gemm_packed and
// the fuzz-smoke conformance tier.

#include <algorithm>
#include <cstddef>
#include <memory>
#include <new>

#include "../../guard/guard.hpp"
#include "../../simd/dispatch.hpp"
#include "../../telemetry/events.hpp"
#include "../planar.hpp"
#include "microkernel.hpp"
#include "packing.hpp"
#include "threading.hpp"

namespace mf::blas {

/// Cache-block sizes for gemm_packed; 0 = select per detected backend.
struct BlockShape {
    std::size_t mc = 0;  ///< rows of a packed A block (L2 target)
    std::size_t kc = 0;  ///< k-extent of packed A/B blocks (L1 target)
    std::size_t nc = 0;  ///< columns of a packed B panel (L3 target)
};

/// Execution knobs for gemm_packed.
struct GemmConfig {
    BlockShape blocks{};  ///< 0-fields auto-selected per backend
    engine::ThreadMode threads = engine::ThreadMode::automatic;
    unsigned max_threads = 0;  ///< worker cap; 0 = runtime default
};

namespace engine {

/// Fill the zero fields of `req` with per-backend defaults. The micro-tile
/// geometry (mr x nr, from the active pack width W and expansion length N)
/// sets the footprints: kc so a packed B micro-panel (kc x nr x N limbs)
/// stays L1-resident under the A rows streaming through, mc so the packed A
/// block (mc x kc) stays L2-resident, nc so the packed B panel (kc x nc)
/// stays L3-resident. Cache targets are conservative fixed budgets (24 KiB /
/// 192 KiB / 2 MiB) rather than probed sizes: the blocks only need to be
/// comfortably inside each level, and fixed budgets keep runs reproducible
/// across machines.
template <std::floating_point T, int N>
[[nodiscard]] inline BlockShape auto_blocks(int mr, int nr, BlockShape req) {
    const std::size_t elem = sizeof(T) * static_cast<std::size_t>(N);
    BlockShape bs = req;
    if (bs.kc == 0) {
        const std::size_t kc = (24u * 1024u) / (static_cast<std::size_t>(nr) * elem);
        bs.kc = std::clamp<std::size_t>(kc, 32, 512);
    }
    if (bs.mc == 0) {
        std::size_t mc = (192u * 1024u) / (bs.kc * elem);
        mc -= mc % static_cast<std::size_t>(mr);
        bs.mc = std::clamp<std::size_t>(mc, static_cast<std::size_t>(mr), 512);
    }
    if (bs.nc == 0) {
        std::size_t nc = (2u * 1024u * 1024u) / (bs.kc * elem);
        nc -= nc % static_cast<std::size_t>(nr);
        bs.nc = std::clamp<std::size_t>(nc, static_cast<std::size_t>(nr), 8192);
    }
    return bs;
}

namespace detail {

/// Sequential unpacked fallback: planar::gemm's exact ikj order re-expressed
/// over (possibly strided) views. Bit-identical to gemm_packed for every
/// pack width, because each C element sees its k updates kk-ascending and
/// every update is the same lane-independent fma_range FPAN sequence --
/// which is why gemm_packed may switch to this path when panel scratch
/// cannot be allocated without changing a single result bit.
template <FloatingPoint T, int N>
void gemm_planar_views(planar::ConstMatrixView<T, N> a,
                       planar::ConstMatrixView<T, N> b,
                       planar::MatrixView<T, N> c) {
    const std::size_t n = c.rows;
    const std::size_t m = c.cols;
    const std::size_t k = a.cols;
    simd::with_active_width<T>([&](auto w) {
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t kk = 0; kk < k; ++kk) {
                const MultiFloat<T, N> aik = a.get(i, kk);
                const T* brow[N];
                T* crow[N];
                for (int p = 0; p < N; ++p) {
                    brow[p] = b.row(p, kk);
                    crow[p] = c.row(p, i);
                }
                simd::kernels::fma_range<T, N, w()>(aik, brow, crow, 0, m);
            }
        }
    });
}

}  // namespace detail
}  // namespace engine

/// C += A B through packed panels and the register-blocked micro-kernel.
/// Bit-identical to planar::gemm (see file header); degenerate shapes
/// (any zero dimension) are no-ops.
///
/// Robustness (DESIGN.md §12): the entry point carries an FP-environment
/// sentinel (MF_GUARD_POLICY decides detect/enforce behavior); ALL panel
/// scratch -- the shared B panel plus one A block per worker slot -- is
/// reserved before any C element is written, and reservation failure
/// degrades to the sequential unpacked path above (bit-identical, counted
/// as mf_guard_degraded_total{path="alloc"}). After the up-front reserve,
/// the in-loop ensure() calls are guaranteed allocation-free: every block
/// extent is bounded by the reserved worst case.
template <FloatingPoint T, int N>
void gemm_packed(planar::ConstMatrixView<T, N> a, planar::ConstMatrixView<T, N> b,
                 planar::MatrixView<T, N> c, const GemmConfig& cfg = {}) {
    const std::size_t n = c.rows;
    const std::size_t m = c.cols;
    const std::size_t k = a.cols;
    if (n == 0 || m == 0 || k == 0) return;
    MF_GUARD_SENTINEL("blas.gemm_packed");
    // One backend resolve per call, like gemm_tiled; everything below runs
    // width-templated.
    simd::with_active_width<T>([&](auto w) {
        constexpr int W = w();
        using MK = engine::MicroKernel<T, N, W>;
        const BlockShape bs = engine::auto_blocks<T, N>(MK::MR, MK::NR, cfg.blocks);
        const std::size_t nblocks = (n + bs.mc - 1) / bs.mc;
        const unsigned nslots =
            engine::planned_workers(nblocks, cfg.threads, cfg.max_threads);
        engine::AlignedBuffer<T> bbuf;
        std::unique_ptr<engine::AlignedBuffer<T>[]> abufs;
        try {
            // Reserve the worst-case panel footprint up front: the shared B
            // panel and one A block per worker slot. C is untouched until
            // this succeeds, so a bad_alloc here (real or injected) can
            // still choose a different execution strategy.
            abufs.reset(new engine::AlignedBuffer<T>[nslots]);
            bbuf.ensure(static_cast<std::size_t>(N) * std::min(bs.kc, k) *
                        std::min(bs.nc, m));
            for (unsigned s = 0; s < nslots; ++s) {
                abufs[s].ensure(static_cast<std::size_t>(N) *
                                std::min(bs.mc, n) * std::min(bs.kc, k));
            }
        } catch (const std::bad_alloc&) {
            MF_TELEM_COUNT_N("mf_guard_degraded_total{path=\"alloc\"}", 1);
            engine::detail::gemm_planar_views<T, N>(a, b, c);
            return;
        }
        const T* bpk[N];
        for (std::size_t jc = 0; jc < m; jc += bs.nc) {
            const std::size_t ncb = std::min(bs.nc, m - jc);
            for (std::size_t pc = 0; pc < k; pc += bs.kc) {
                const std::size_t kcb = std::min(bs.kc, k - pc);
                // Packed once, read-only for every worker of the ic loop.
                engine::pack_b<T, N>(b, pc, jc, kcb, ncb, bbuf, bpk);
                // Fault-injection checkpoint: a mid-call environment flip
                // lands here; the sentinel's exit probe must notice it.
                guard::inject::maybe_perturb_env();
                engine::parallel_blocks_slots(
                    nblocks,
                    [&](std::size_t ib, unsigned slot) {
                        MF_TELEM_SPAN_TIMED("gemm_macro_panel",
                                            "mf_gemm_macro_panel_ns");
                        const std::size_t ic = ib * bs.mc;
                        const std::size_t mcb = std::min(bs.mc, n - ic);
                        // Pre-reserved per-slot scratch: allocation-free.
                        engine::AlignedBuffer<T>& abuf = abufs[slot];
                        const T* apk[N];
                        engine::pack_a<T, N>(a, ic, pc, mcb, kcb, abuf, apk);
                        for (std::size_t jr = 0; jr < ncb; jr += MK::NR) {
                            const std::size_t nrb = std::min<std::size_t>(
                                static_cast<std::size_t>(MK::NR), ncb - jr);
                            const T* bpt[N];
                            for (int p = 0; p < N; ++p) bpt[p] = bpk[p] + jr;
                            for (std::size_t ir = 0; ir < mcb; ir += MK::MR) {
                                const std::size_t mrb = std::min<std::size_t>(
                                    static_cast<std::size_t>(MK::MR), mcb - ir);
                                const T* apt[N];
                                T* cpt[N];
                                for (int p = 0; p < N; ++p) {
                                    apt[p] = apk[p] + ir * kcb;
                                    cpt[p] = c.row(p, ic + ir) + jc + jr;
                                }
                                MF_TELEM_COUNT("mf_gemm_microkernel_total");
                                if (mrb == static_cast<std::size_t>(MK::MR) &&
                                    nrb == static_cast<std::size_t>(MK::NR)) {
                                    MK::full(apt, kcb, bpt, ncb, cpt, c.stride, kcb);
                                } else {
                                    MK::edge(apt, kcb, bpt, ncb, cpt, c.stride,
                                             kcb, mrb, nrb);
                                }
                            }
                        }
                    },
                    cfg.threads, cfg.max_threads);
            }
        }
    });
}

/// All-mutable-view overload: template deduction cannot cross the
/// MatrixView -> ConstMatrixView conversion, so the common case of freshly
/// built (mutable) views gets its own forwarder.
template <FloatingPoint T, int N>
void gemm_packed(planar::MatrixView<T, N> a, planar::MatrixView<T, N> b,
                 planar::MatrixView<T, N> c, const GemmConfig& cfg = {}) {
    gemm_packed<T, N>(planar::ConstMatrixView<T, N>(a),
                      planar::ConstMatrixView<T, N>(b), c, cfg);
}

}  // namespace mf::blas
