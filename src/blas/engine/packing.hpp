#pragma once
// Panel packing for the BLIS-style GEMM engine (DESIGN.md §11).
//
// gemm_packed copies the A and B blocks a macro-iteration will touch into
// contiguous 64-byte-aligned buffers before the micro-kernel sweeps them.
// The payoff is the classical one: the micro-kernel then streams both
// operands at unit stride from small, cache-resident, conflict-free panels
// instead of striding through the full matrices.
//
// Panel layout: per-limb planes STAY planar inside the panel -- plane p of
// the packed block occupies one contiguous slab, exactly like a shrunken
// planar::Vector:
//
//   packed A (mc x kc):  buf[p * mc*kc + r * kc + kk]   (row-major rows)
//   packed B (kc x nc):  buf[p * kc*nc + kk * nc + j]   (row-major rows)
//
// so the dispatched Pack<T, W> FPAN kernels run stride-1 loads over packed B
// rows and packed C rows, and the per-(row, kk) A broadcast reads one scalar
// per plane. Because the source views are planar and row-major too, every
// copy below is a contiguous row segment: packing costs O(block) straight
// memcpy-shaped loops, amortized over O(block * panel) flops.

#include <cstddef>
#include <new>

#include "../../guard/inject.hpp"
#include "../../telemetry/events.hpp"
#include "../planar.hpp"

namespace mf::blas::engine {

/// 64-byte-aligned uninitialized scratch, grow-only (reallocation keeps no
/// contents: packing always overwrites the block it is about to use).
template <typename T>
class AlignedBuffer {
public:
    AlignedBuffer() = default;
    ~AlignedBuffer() { release(); }
    AlignedBuffer(const AlignedBuffer&) = delete;
    AlignedBuffer& operator=(const AlignedBuffer&) = delete;

    static constexpr std::size_t alignment = 64;

    /// Ensure capacity for n elements; returns the (aligned) base pointer.
    /// Throws std::bad_alloc on exhaustion (real or injected) -- callers that
    /// must not fail mid-computation pre-reserve their worst case up front
    /// (gemm_packed does), after which in-loop ensure() calls never allocate.
    T* ensure(std::size_t n) {
        if (n > cap_) {
            release();
            if (guard::inject::should_fail_alloc()) throw std::bad_alloc{};
            p_ = static_cast<T*>(
                ::operator new(n * sizeof(T), std::align_val_t{alignment}));
            cap_ = n;
        }
        return p_;
    }

    [[nodiscard]] T* data() const noexcept { return p_; }

private:
    void release() noexcept {
        if (p_) ::operator delete(p_, std::align_val_t{alignment});
        p_ = nullptr;
        cap_ = 0;
    }

    T* p_ = nullptr;
    std::size_t cap_ = 0;
};

/// Pack the (mcb x kcb) block of A at (i0, k0) into `buf`, plane-major.
/// On return planes[p] points at packed plane p (row stride kcb).
template <std::floating_point T, int N>
void pack_a(const planar::ConstMatrixView<T, N>& a, std::size_t i0, std::size_t k0,
            std::size_t mcb, std::size_t kcb, AlignedBuffer<T>& buf,
            const T* (&planes)[N]) {
    T* dst = buf.ensure(static_cast<std::size_t>(N) * mcb * kcb);
    for (int p = 0; p < N; ++p) {
        T* plane = dst + static_cast<std::size_t>(p) * mcb * kcb;
        planes[p] = plane;
        for (std::size_t r = 0; r < mcb; ++r) {
            const T* src = a.row(p, i0 + r) + k0;
            T* out = plane + r * kcb;
            for (std::size_t kk = 0; kk < kcb; ++kk) out[kk] = src[kk];
        }
    }
    MF_TELEM_COUNT_N("mf_gemm_pack_bytes_total{panel=\"a\"}",
                     static_cast<std::size_t>(N) * mcb * kcb * sizeof(T));
}

/// Pack the (kcb x ncb) block of B at (k0, j0) into `buf`, plane-major.
/// On return planes[p] points at packed plane p (row stride ncb).
template <std::floating_point T, int N>
void pack_b(const planar::ConstMatrixView<T, N>& b, std::size_t k0, std::size_t j0,
            std::size_t kcb, std::size_t ncb, AlignedBuffer<T>& buf,
            const T* (&planes)[N]) {
    T* dst = buf.ensure(static_cast<std::size_t>(N) * kcb * ncb);
    for (int p = 0; p < N; ++p) {
        T* plane = dst + static_cast<std::size_t>(p) * kcb * ncb;
        planes[p] = plane;
        for (std::size_t kk = 0; kk < kcb; ++kk) {
            const T* src = b.row(p, k0 + kk) + j0;
            T* out = plane + kk * ncb;
            for (std::size_t j = 0; j < ncb; ++j) out[j] = src[j];
        }
    }
    MF_TELEM_COUNT_N("mf_gemm_pack_bytes_total{panel=\"b\"}",
                     static_cast<std::size_t>(N) * kcb * ncb * sizeof(T));
}

}  // namespace mf::blas::engine
