#pragma once
// Extended-precision BLAS kernels (paper §5): AXPY, DOT, GEMV, GEMM,
// templated over the number type so that every library under evaluation
// (MultiFloat, QD, CAMPARY, BigFloat/PrecFloat, GMP, __float128, plain
// double/float) runs the IDENTICAL kernel code.
//
// The public signatures take the typed views of views.hpp -- a vector view
// carries (data, size), a matrix view carries (data, rows, cols, stride) --
// so shapes travel with the data and sub-matrix blocks (stride > cols) work
// without copying. The historical `std::span + n, k, m` signatures survive
// as thin [[deprecated]] forwarding wrappers below; they assume contiguous
// storage exactly as before.
//
// MultiFloat views additionally take an explicit-SIMD fast path: the loop
// bodies run on mf::simd packs (runtime-dispatched to the widest available
// backend, scalar tail loops for remainders) instead of relying on the
// auto-vectorizer. The `if constexpr` split keeps a single kernel entry
// point per operation, so all existing call sites -- including ones that
// pass the element type explicitly, e.g. dot<Float64x2>(...) -- get the
// pack path for free.
//
// Parallelization matches the paper: ij loop ordering for GEMV, ikj loop
// ordering for GEMM, with OpenMP over the outer loop when enabled. Every
// parallel region is guarded by detail::in_parallel() so that kernels called
// from inside an existing parallel region (e.g. the tiled GEMM driver in
// simd/tiling.hpp, or a user's own omp loop) run serially instead of
// oversubscribing with nested teams. (In this reproduction environment only
// one core is available, so OpenMP paths are compiled and correct but add
// no speedup; see EXPERIMENTS.md.)
//
// Robustness (DESIGN.md §12): every view entry point carries an
// MF_GUARD_SENTINEL (FP-environment probe, MF_GUARD_POLICY-driven) and
// MF_BLAS_REQUIRE shape/stride validation (compiled in under the
// MF_BOUNDS_CHECK CMake option only).

#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <span>

#include "../guard/policy.hpp"
#include "../mf/multifloat.hpp"
#include "../simd/dispatch.hpp"
#include "views.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace mf::blas {

namespace detail {

/// True when already executing inside an OpenMP parallel region: used in
/// every `if` clause below to suppress nested parallelism.
inline bool in_parallel() noexcept {
#if defined(_OPENMP)
    return omp_in_parallel() != 0;
#else
    return false;
#endif
}

/// Is V a MultiFloat over a *scalar* base type (the pack-kernel fast path)?
template <typename V>
inline constexpr bool is_multifloat_v = false;
template <typename T, int N>
inline constexpr bool is_multifloat_v<MultiFloat<T, N>> = std::floating_point<T>;

}  // namespace detail

/// y <- alpha * x + y
template <typename V>
void axpy(const V& alpha, ConstVectorView<V> x, VectorView<V> y) {
    MF_GUARD_SENTINEL("blas.axpy");
    MF_BLAS_REQUIRE(x.size == y.size, "blas.axpy", "x.size == y.size");
    const std::size_t n = x.size;
    if constexpr (detail::is_multifloat_v<V>) {
        using T = typename V::value_type;
        constexpr int N = V::num_limbs;
        constexpr std::size_t chunk = 2048;
        const std::size_t nchunks = (n + chunk - 1) / chunk;
#pragma omp parallel for schedule(static) \
    if (n > 4096 && !detail::in_parallel())
        for (std::size_t c = 0; c < nchunks; ++c) {
            const std::size_t lo = c * chunk;
            const std::size_t hi = (lo + chunk < n) ? lo + chunk : n;
            simd::axpy_aos<T, N>(alpha, x.data + lo, y.data + lo, hi - lo);
        }
    } else {
#pragma omp parallel for schedule(static) \
    if (n > 4096 && !detail::in_parallel())
        for (std::size_t i = 0; i < n; ++i) {
            y[i] += alpha * x[i];
        }
    }
}

/// <x, y>
///
/// Eight (or pack-width) independent partial accumulators break the
/// loop-carried dependence so the (branch-free) per-element work pipelines
/// and vectorizes -- the SIMD-reduction structure the paper credits for
/// MultiFloats' DOT advantage over libraries whose operations cannot be
/// interleaved.
template <typename V>
[[nodiscard]] V dot(ConstVectorView<V> x, ConstVectorView<V> y) {
    MF_GUARD_SENTINEL("blas.dot");
    MF_BLAS_REQUIRE(x.size == y.size, "blas.dot", "x.size == y.size");
    const std::size_t n = x.size;
    if constexpr (detail::is_multifloat_v<V>) {
        using T = typename V::value_type;
        constexpr int N = V::num_limbs;
        V acc{};
#pragma omp parallel if (n > 4096 && !detail::in_parallel())
        {
#if defined(_OPENMP)
            const std::size_t nt = static_cast<std::size_t>(omp_get_num_threads());
            const std::size_t tid = static_cast<std::size_t>(omp_get_thread_num());
#else
            const std::size_t nt = 1;
            const std::size_t tid = 0;
#endif
            const std::size_t lo = n * tid / nt;
            const std::size_t hi = n * (tid + 1) / nt;
            const V local = simd::dot_aos<T, N>(x.data + lo, y.data + lo, hi - lo);
#pragma omp critical
            acc += local;
        }
        return acc;
    } else {
        constexpr std::size_t K = 8;
        V acc{};
#pragma omp parallel if (n > 4096 && !detail::in_parallel())
        {
            V part[K]{};
#pragma omp for schedule(static) nowait
            for (std::size_t blk = 0; blk < n / K; ++blk) {
                for (std::size_t k = 0; k < K; ++k) {
                    part[k] += x[blk * K + k] * y[blk * K + k];
                }
            }
            V local{};
            for (std::size_t k = 0; k < K; ++k) local += part[k];
#pragma omp critical
            acc += local;
        }
        for (std::size_t i = n - n % K; i < n; ++i) {
            acc += x[i] * y[i];
        }
        return acc;
    }
}

/// y <- A x  (A row-major rows x cols; ij loop order; MultiFloat rows reduce
/// through the pack dot kernel, other types use a 4-way unrolled inner dot)
template <typename V>
void gemv(ConstMatrixView<V> a, ConstVectorView<V> x, VectorView<V> y) {
    MF_GUARD_SENTINEL("blas.gemv");
    MF_BLAS_REQUIRE(a.cols == x.size, "blas.gemv", "a.cols == x.size");
    MF_BLAS_REQUIRE(a.rows == y.size, "blas.gemv", "a.rows == y.size");
    MF_BLAS_REQUIRE(a.stride >= a.cols, "blas.gemv", "a.stride >= a.cols");
    const std::size_t n = a.rows;
    const std::size_t m = a.cols;
    if constexpr (detail::is_multifloat_v<V>) {
        using T = typename V::value_type;
        constexpr int N = V::num_limbs;
#pragma omp parallel for schedule(static) if (n > 64 && !detail::in_parallel())
        for (std::size_t i = 0; i < n; ++i) {
            y[i] = simd::dot_aos<T, N>(a.row(i), x.data, m);
        }
    } else {
        constexpr std::size_t K = 4;
#pragma omp parallel for schedule(static) if (n > 64 && !detail::in_parallel())
        for (std::size_t i = 0; i < n; ++i) {
            const V* arow = a.row(i);
            V part[K]{};
            for (std::size_t blk = 0; blk < m / K; ++blk) {
                for (std::size_t k = 0; k < K; ++k) {
                    part[k] += arow[blk * K + k] * x[blk * K + k];
                }
            }
            V acc{};
            for (std::size_t k = 0; k < K; ++k) acc += part[k];
            for (std::size_t j = m - m % K; j < m; ++j) {
                acc += arow[j] * x[j];
            }
            y[i] = acc;
        }
    }
}

/// x <- alpha * x
template <typename V>
void scal(const V& alpha, VectorView<V> x) {
    MF_GUARD_SENTINEL("blas.scal");
    const std::size_t n = x.size;
#pragma omp parallel for schedule(static) if (n > 4096 && !detail::in_parallel())
    for (std::size_t i = 0; i < n; ++i) {
        x[i] *= alpha;
    }
}

/// sum_i |x_i|  (abs is found by ADL for expansions, std::abs for scalars)
template <typename V>
[[nodiscard]] V asum(ConstVectorView<V> x) {
    MF_GUARD_SENTINEL("blas.asum");
    using std::abs;
    V acc{};
    for (std::size_t i = 0; i < x.size; ++i) acc += abs(x[i]);
    return acc;
}

/// sqrt(<x, x>)  (sqrt found by ADL for expansions)
template <typename V>
[[nodiscard]] V nrm2(ConstVectorView<V> x) {
    using std::sqrt;
    return sqrt(dot<V>(x, x));
}

/// Index of the element with the largest magnitude (0 for empty input).
template <typename V>
[[nodiscard]] std::size_t iamax(ConstVectorView<V> x) {
    MF_GUARD_SENTINEL("blas.iamax");
    using std::abs;
    std::size_t best = 0;
    for (std::size_t i = 1; i < x.size; ++i) {
        if (abs(x[best]) < abs(x[i])) best = i;
    }
    return best;
}

/// A <- A + alpha * x y^T  (rank-1 update; A row-major x.size x y.size)
template <typename V>
void ger(const V& alpha, ConstVectorView<V> x, ConstVectorView<V> y,
         MatrixView<V> a) {
    MF_GUARD_SENTINEL("blas.ger");
    MF_BLAS_REQUIRE(a.rows == x.size, "blas.ger", "a.rows == x.size");
    MF_BLAS_REQUIRE(a.cols == y.size, "blas.ger", "a.cols == y.size");
    MF_BLAS_REQUIRE(a.stride >= a.cols, "blas.ger", "a.stride >= a.cols");
    const std::size_t n = x.size;
    const std::size_t m = y.size;
#pragma omp parallel for schedule(static) if (n > 64 && !detail::in_parallel())
    for (std::size_t i = 0; i < n; ++i) {
        const V ax = alpha * x[i];
        if constexpr (detail::is_multifloat_v<V>) {
            using T = typename V::value_type;
            constexpr int N = V::num_limbs;
            simd::axpy_aos<T, N>(ax, y.data, a.row(i), m);
        } else {
            V* arow = a.row(i);
            for (std::size_t j = 0; j < m; ++j) {
                arow[j] += ax * y[j];
            }
        }
    }
}

/// C <- A B  (row-major; C is n x m, A is n x k, B is k x m; ikj loop order)
template <typename V>
void gemm(ConstMatrixView<V> a, ConstMatrixView<V> b, MatrixView<V> c) {
    MF_GUARD_SENTINEL("blas.gemm");
    MF_BLAS_REQUIRE(a.rows == c.rows, "blas.gemm", "a.rows == c.rows");
    MF_BLAS_REQUIRE(a.cols == b.rows, "blas.gemm", "a.cols == b.rows");
    MF_BLAS_REQUIRE(b.cols == c.cols, "blas.gemm", "b.cols == c.cols");
    MF_BLAS_REQUIRE(a.stride >= a.cols, "blas.gemm", "a.stride >= a.cols");
    MF_BLAS_REQUIRE(b.stride >= b.cols, "blas.gemm", "b.stride >= b.cols");
    MF_BLAS_REQUIRE(c.stride >= c.cols, "blas.gemm", "c.stride >= c.cols");
    const std::size_t n = c.rows;
    const std::size_t m = c.cols;
    const std::size_t k = a.cols;
#pragma omp parallel for schedule(static) if (n > 16 && !detail::in_parallel())
    for (std::size_t i = 0; i < n; ++i) {
        V* crow = c.row(i);
        const V* arow = a.row(i);
        for (std::size_t j = 0; j < m; ++j) crow[j] = V{};
        for (std::size_t kk = 0; kk < k; ++kk) {
            const V aik = arow[kk];
            if constexpr (detail::is_multifloat_v<V>) {
                using T = typename V::value_type;
                constexpr int N = V::num_limbs;
                simd::axpy_aos<T, N>(aik, b.row(kk), crow, m);
            } else {
                const V* brow = b.row(kk);
                for (std::size_t j = 0; j < m; ++j) {
                    crow[j] += aik * brow[j];
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Deprecated span-based signatures (pre-view API). Thin forwarders; will be
// removed once external callers have migrated. All in-repo callers use the
// view API; tests/blas_views_test.cpp keeps these compiling under a local
// -Wdeprecated-declarations suppression.
// ---------------------------------------------------------------------------

template <typename V>
[[deprecated("use axpy(alpha, ConstVectorView, VectorView)")]]
void axpy(const V& alpha, std::span<const V> x, std::span<V> y) {
    axpy<V>(alpha, ConstVectorView<V>{x.data(), x.size()},
            VectorView<V>{y.data(), y.size()});
}

template <typename V>
[[deprecated("use dot(ConstVectorView, ConstVectorView)")]]
[[nodiscard]] V dot(std::span<const V> x, std::span<const V> y) {
    return dot<V>(ConstVectorView<V>{x.data(), x.size()},
                  ConstVectorView<V>{y.data(), y.size()});
}

template <typename V>
[[deprecated("use gemv(ConstMatrixView, ConstVectorView, VectorView)")]]
void gemv(std::span<const V> a, std::size_t n, std::size_t m,
          std::span<const V> x, std::span<V> y) {
    gemv<V>(ConstMatrixView<V>{a.data(), n, m},
            ConstVectorView<V>{x.data(), x.size()},
            VectorView<V>{y.data(), y.size()});
}

template <typename V>
[[deprecated("use scal(alpha, VectorView)")]]
void scal(const V& alpha, std::span<V> x) {
    scal<V>(alpha, VectorView<V>{x.data(), x.size()});
}

template <typename V>
[[deprecated("use asum(ConstVectorView)")]]
[[nodiscard]] V asum(std::span<const V> x) {
    return asum<V>(ConstVectorView<V>{x.data(), x.size()});
}

template <typename V>
[[deprecated("use nrm2(ConstVectorView)")]]
[[nodiscard]] V nrm2(std::span<const V> x) {
    return nrm2<V>(ConstVectorView<V>{x.data(), x.size()});
}

template <typename V>
[[deprecated("use iamax(ConstVectorView)")]]
[[nodiscard]] std::size_t iamax(std::span<const V> x) {
    return iamax<V>(ConstVectorView<V>{x.data(), x.size()});
}

template <typename V>
[[deprecated("use ger(alpha, ConstVectorView, ConstVectorView, MatrixView)")]]
void ger(const V& alpha, std::span<const V> x, std::span<const V> y,
         std::span<V> a) {
    ger<V>(alpha, ConstVectorView<V>{x.data(), x.size()},
           ConstVectorView<V>{y.data(), y.size()},
           MatrixView<V>{a.data(), x.size(), y.size()});
}

template <typename V>
[[deprecated("use gemm(ConstMatrixView, ConstMatrixView, MatrixView)")]]
void gemm(std::span<const V> a, std::span<const V> b, std::span<V> c,
          std::size_t n, std::size_t k, std::size_t m) {
    gemm<V>(ConstMatrixView<V>{a.data(), n, k}, ConstMatrixView<V>{b.data(), k, m},
            MatrixView<V>{c.data(), n, m});
}

}  // namespace mf::blas
