#pragma once
// Extended-precision BLAS kernels (paper §5): AXPY, DOT, GEMV, GEMM,
// templated over the number type so that every library under evaluation
// (MultiFloat, QD, CAMPARY, BigFloat/PrecFloat, GMP, __float128, plain
// double/float) runs the IDENTICAL kernel code.
//
// Parallelization matches the paper: ij loop ordering for GEMV, ikj loop
// ordering for GEMM, with OpenMP over the outer loop when enabled. (In this
// reproduction environment only one core is available, so OpenMP paths are
// compiled and correct but add no speedup; see EXPERIMENTS.md.)

#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <span>

namespace mf::blas {

/// y <- alpha * x + y
template <typename V>
void axpy(const V& alpha, std::span<const V> x, std::span<V> y) {
    const std::size_t n = x.size();
#pragma omp parallel for schedule(static) if (n > 4096)
    for (std::size_t i = 0; i < n; ++i) {
        y[i] += alpha * x[i];
    }
}

/// <x, y>
///
/// Eight independent partial accumulators break the loop-carried dependence
/// so the (branch-free) per-element work pipelines and vectorizes -- the
/// SIMD-reduction structure the paper credits for MultiFloats' DOT advantage
/// over libraries whose operations cannot be interleaved.
template <typename V>
[[nodiscard]] V dot(std::span<const V> x, std::span<const V> y) {
    const std::size_t n = x.size();
    constexpr std::size_t K = 8;
    V acc{};
#pragma omp parallel if (n > 4096)
    {
        V part[K]{};
#pragma omp for schedule(static) nowait
        for (std::size_t blk = 0; blk < n / K; ++blk) {
            for (std::size_t k = 0; k < K; ++k) {
                part[k] += x[blk * K + k] * y[blk * K + k];
            }
        }
        V local{};
        for (std::size_t k = 0; k < K; ++k) local += part[k];
#pragma omp critical
        acc += local;
    }
    for (std::size_t i = n - n % K; i < n; ++i) {
        acc += x[i] * y[i];
    }
    return acc;
}

/// y <- A x  (A row-major n x m; ij loop order, 4-way unrolled inner dot)
template <typename V>
void gemv(std::span<const V> a, std::size_t n, std::size_t m,
          std::span<const V> x, std::span<V> y) {
    constexpr std::size_t K = 4;
#pragma omp parallel for schedule(static) if (n > 64)
    for (std::size_t i = 0; i < n; ++i) {
        V part[K]{};
        for (std::size_t blk = 0; blk < m / K; ++blk) {
            for (std::size_t k = 0; k < K; ++k) {
                part[k] += a[i * m + blk * K + k] * x[blk * K + k];
            }
        }
        V acc{};
        for (std::size_t k = 0; k < K; ++k) acc += part[k];
        for (std::size_t j = m - m % K; j < m; ++j) {
            acc += a[i * m + j] * x[j];
        }
        y[i] = acc;
    }
}

/// x <- alpha * x
template <typename V>
void scal(const V& alpha, std::span<V> x) {
    const std::size_t n = x.size();
#pragma omp parallel for schedule(static) if (n > 4096)
    for (std::size_t i = 0; i < n; ++i) {
        x[i] *= alpha;
    }
}

/// sum_i |x_i|  (abs is found by ADL for expansions, std::abs for scalars)
template <typename V>
[[nodiscard]] V asum(std::span<const V> x) {
    using std::abs;
    V acc{};
    for (const V& v : x) acc += abs(v);
    return acc;
}

/// sqrt(<x, x>)  (sqrt found by ADL for expansions)
template <typename V>
[[nodiscard]] V nrm2(std::span<const V> x) {
    using std::sqrt;
    return sqrt(dot<V>(x, x));
}

/// Index of the element with the largest magnitude (0 for empty input).
template <typename V>
[[nodiscard]] std::size_t iamax(std::span<const V> x) {
    using std::abs;
    std::size_t best = 0;
    for (std::size_t i = 1; i < x.size(); ++i) {
        if (abs(x[best]) < abs(x[i])) best = i;
    }
    return best;
}

/// A <- A + alpha * x y^T  (rank-1 update; A row-major n x m)
template <typename V>
void ger(const V& alpha, std::span<const V> x, std::span<const V> y,
         std::span<V> a) {
    const std::size_t n = x.size();
    const std::size_t m = y.size();
#pragma omp parallel for schedule(static) if (n > 64)
    for (std::size_t i = 0; i < n; ++i) {
        const V ax = alpha * x[i];
        for (std::size_t j = 0; j < m; ++j) {
            a[i * m + j] += ax * y[j];
        }
    }
}

/// C <- A B  (row-major; C is n x m, A is n x k, B is k x m; ikj loop order)
template <typename V>
void gemm(std::span<const V> a, std::span<const V> b, std::span<V> c,
          std::size_t n, std::size_t k, std::size_t m) {
#pragma omp parallel for schedule(static) if (n > 16)
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < m; ++j) c[i * m + j] = V{};
        for (std::size_t kk = 0; kk < k; ++kk) {
            const V aik = a[i * k + kk];
            for (std::size_t j = 0; j < m; ++j) {
                c[i * m + j] += aik * b[kk * m + j];
            }
        }
    }
}

}  // namespace mf::blas
