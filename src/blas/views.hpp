#pragma once
// Typed views for the mf::blas public API: a (pointer, extent) pair for
// vectors and a (pointer, rows, cols, stride) quadruple for row-major
// matrices, in const and mutable flavors.
//
// Rationale (DESIGN.md §11): the historical signatures passed raw
// `std::span + n, k, m` positional sizes, so every call site restated the
// shape bookkeeping and nothing stopped a transposed (n, m) swap from
// compiling. A view carries its own shape, supports row strides (sub-matrix
// blocks without copying), and gives gemm/gemv a self-describing signature:
//
//   blas::gemm(blas::view(a, n, k), blas::view(b, k, m), blas::view(c, n, m));
//
// Views are intentionally NOT ranges and have NO std::span constructor:
// overload resolution must keep the deprecated span signatures (exact match
// for existing span callers) strictly apart from the view signatures, with
// no braced-initializer ambiguity in either direction.
//
// Mutable views convert implicitly to const views, so explicit-template-arg
// call sites (`blas::dot<V>(x, y)`) accept either. Deduced call sites pass
// ConstVectorView / ConstMatrixView (or the `view()` factory on a const
// container) for inputs.

#include <cstddef>
#include <vector>

#if defined(MF_BOUNDS_CHECK) && MF_BOUNDS_CHECK
#include <cstdio>
#include <cstdlib>
#endif

namespace mf::blas {

#if defined(MF_BOUNDS_CHECK) && MF_BOUNDS_CHECK

namespace detail {
/// Debug-build shape/stride violation: print which entry point rejected
/// which invariant, then abort (death-testable, sanitizer-friendly).
[[noreturn]] inline void bounds_fail(const char* site, const char* what) noexcept {
    std::fprintf(stderr, "mf::blas bounds check failed: %s: %s\n", site, what);
    std::abort();
}
}  // namespace detail

/// Shape/stride validation at blas:: entry points. Compiled in only under
/// the MF_BOUNDS_CHECK CMake option (a debugging configuration): the checks
/// sit outside the kernels' hot loops, but release builds keep the historic
/// zero-validation contract.
#define MF_BLAS_REQUIRE(cond, site, what) \
    ((cond) ? (void)0 : ::mf::blas::detail::bounds_fail(site, what))

#else

#define MF_BLAS_REQUIRE(cond, site, what) ((void)0)

#endif  // MF_BOUNDS_CHECK

/// Mutable contiguous vector view.
template <typename V>
struct VectorView {
    V* data = nullptr;
    std::size_t size = 0;

    constexpr VectorView() = default;
    constexpr VectorView(V* d, std::size_t n) noexcept : data(d), size(n) {}

    [[nodiscard]] constexpr V& operator[](std::size_t i) const noexcept {
        return data[i];
    }
    [[nodiscard]] constexpr bool empty() const noexcept { return size == 0; }
};

/// Read-only contiguous vector view; implicitly constructible from the
/// mutable view.
template <typename V>
struct ConstVectorView {
    const V* data = nullptr;
    std::size_t size = 0;

    constexpr ConstVectorView() = default;
    constexpr ConstVectorView(const V* d, std::size_t n) noexcept
        : data(d), size(n) {}
    constexpr ConstVectorView(VectorView<V> v) noexcept
        : data(v.data), size(v.size) {}

    [[nodiscard]] constexpr const V& operator[](std::size_t i) const noexcept {
        return data[i];
    }
    [[nodiscard]] constexpr bool empty() const noexcept { return size == 0; }
};

/// Mutable row-major matrix view. `stride` is the element distance between
/// consecutive row starts (>= cols; defaults to cols, i.e. contiguous).
template <typename V>
struct MatrixView {
    V* data = nullptr;
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::size_t stride = 0;

    constexpr MatrixView() = default;
    constexpr MatrixView(V* d, std::size_t r, std::size_t c,
                         std::size_t ld = 0) noexcept
        : data(d), rows(r), cols(c), stride(ld ? ld : c) {}

    [[nodiscard]] constexpr V* row(std::size_t i) const noexcept {
        return data + i * stride;
    }
    [[nodiscard]] constexpr V& operator()(std::size_t i, std::size_t j) const noexcept {
        return data[i * stride + j];
    }
    /// Row-major contiguous (a span over rows*cols elements is valid)?
    [[nodiscard]] constexpr bool contiguous() const noexcept {
        return stride == cols;
    }
};

/// Read-only row-major matrix view; implicitly constructible from the
/// mutable view.
template <typename V>
struct ConstMatrixView {
    const V* data = nullptr;
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::size_t stride = 0;

    constexpr ConstMatrixView() = default;
    constexpr ConstMatrixView(const V* d, std::size_t r, std::size_t c,
                              std::size_t ld = 0) noexcept
        : data(d), rows(r), cols(c), stride(ld ? ld : c) {}
    constexpr ConstMatrixView(MatrixView<V> v) noexcept
        : data(v.data), rows(v.rows), cols(v.cols), stride(v.stride) {}

    [[nodiscard]] constexpr const V* row(std::size_t i) const noexcept {
        return data + i * stride;
    }
    [[nodiscard]] constexpr const V& operator()(std::size_t i,
                                                std::size_t j) const noexcept {
        return data[i * stride + j];
    }
    [[nodiscard]] constexpr bool contiguous() const noexcept {
        return stride == cols;
    }
};

// --- factories: the idiomatic way to view std::vector-backed storage -------

template <typename V>
[[nodiscard]] constexpr VectorView<V> view(std::vector<V>& v) noexcept {
    return {v.data(), v.size()};
}
template <typename V>
[[nodiscard]] constexpr ConstVectorView<V> view(const std::vector<V>& v) noexcept {
    return {v.data(), v.size()};
}
template <typename V>
[[nodiscard]] constexpr MatrixView<V> view(std::vector<V>& v, std::size_t rows,
                                           std::size_t cols,
                                           std::size_t stride = 0) noexcept {
    return {v.data(), rows, cols, stride};
}
template <typename V>
[[nodiscard]] constexpr ConstMatrixView<V> view(const std::vector<V>& v,
                                                std::size_t rows, std::size_t cols,
                                                std::size_t stride = 0) noexcept {
    return {v.data(), rows, cols, stride};
}

}  // namespace mf::blas
