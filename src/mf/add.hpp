#pragma once
// Branch-free addition and subtraction of nonoverlapping floating-point
// expansions (paper §4.1, Figures 2-4).
//
// Every network begins with a layer of TwoSum gates pairing corresponding
// terms (x_i, y_i) of the two input expansions. Because TwoSum is
// commutative, the computed sum is bit-identical under swapping x and y.
//
// N = 2 uses the provably optimal 6-gate, depth-4 network of Figure 2
// (the same gate sequence as the AccurateDWPlusDW double-word algorithm,
// relative error <= 2^-(2p-1) |x + y|).
//
// N = 3, 4 use distillation-sweep networks (renorm.hpp) reconstructed from
// the paper's description; the 4-term sweep matches the paper's gate count
// (26 TwoSum-equivalent gates before final renormalization). Error bounds
// 2^-(3p-3) and 2^-(4p-4) are enforced empirically by the test suite against
// an exact BigFloat oracle; see DESIGN.md §2 for the substitution rationale.

#include "eft.hpp"
#include "multifloat.hpp"
#include "renorm.hpp"

namespace mf {

namespace detail {

/// Figure 2: provably optimal 2-term addition network (size 6, depth 4).
template <FloatingPoint T>
MF_ALWAYS_INLINE constexpr MultiFloat<T, 2> add2(const MultiFloat<T, 2>& x,
                                const MultiFloat<T, 2>& y) noexcept {
    const auto [s0, e0] = two_sum(x.limb[0], y.limb[0]);  // gate 1 (TwoSum)
    const auto [s1, e1] = two_sum(x.limb[1], y.limb[1]);  // gate 2 (TwoSum)
    const T c = s1 + e0;                                  // gate 3 (sum)
    const auto [v0, v1] = fast_two_sum(s0, c);            // gate 4 (FastTwoSum)
    const T w = e1 + v1;                                  // gate 5 (sum)
    const auto [z0, z1] = fast_two_sum(v0, w);            // gate 6 (FastTwoSum)
    return MultiFloat<T, 2>({z0, z1});
}

/// Generic N-term addition: pairing layer + distillation sweep.
/// The 2N intermediate values are ordered by expected magnitude:
/// [s0, s1, e0, s2, e1, ..., s_{N-1}, e_{N-2}, e_{N-1}].
template <FloatingPoint T, int N>
MF_ALWAYS_INLINE constexpr MultiFloat<T, N> add_sweep(const MultiFloat<T, N>& x,
                                     const MultiFloat<T, N>& y) noexcept {
    T v[2 * N];
    {
        const auto [s, e] = two_sum(x.limb[0], y.limb[0]);
        v[0] = s;
        T carry = e;
        for (int i = 1; i < N; ++i) {
            const auto [si, ei] = two_sum(x.limb[i], y.limb[i]);
            v[2 * i - 1] = si;
            v[2 * i] = carry;
            carry = ei;
        }
        v[2 * N - 1] = carry;
    }
    detail::accumulate<N>(v);
    MultiFloat<T, N> z;
    for (int i = 0; i < N; ++i) z.limb[i] = v[i];
    return z;
}

}  // namespace detail

/// Expansion addition: dispatches to the optimal fixed network for N = 1, 2
/// and to the sweep network for larger N.
template <FloatingPoint T, int N>
[[nodiscard]] MF_ALWAYS_INLINE constexpr MultiFloat<T, N> add(const MultiFloat<T, N>& x,
                                             const MultiFloat<T, N>& y) noexcept {
    if constexpr (N == 1) {
        return MultiFloat<T, 1>(x.limb[0] + y.limb[0]);
    } else if constexpr (N == 2) {
        return detail::add2(x, y);
    } else {
        return detail::add_sweep(x, y);
    }
}

/// Expansion subtraction: x + (-y) (the sign flip is exact).
template <FloatingPoint T, int N>
[[nodiscard]] MF_ALWAYS_INLINE constexpr MultiFloat<T, N> sub(const MultiFloat<T, N>& x,
                                             const MultiFloat<T, N>& y) noexcept {
    return add(x, -y);
}

/// Mixed expansion-scalar addition: cheaper than widening the scalar and
/// running the full network (the scalar contributes a single input wire).
template <FloatingPoint T, int N>
[[nodiscard]] MF_ALWAYS_INLINE constexpr MultiFloat<T, N> add(const MultiFloat<T, N>& x, T y) noexcept {
    if constexpr (N == 1) {
        return MultiFloat<T, 1>(x.limb[0] + y);
    } else {
        T v[N + 1];
        const auto [s0, e0] = two_sum(x.limb[0], y);
        v[0] = s0;
        T carry = e0;
        for (int i = 1; i < N; ++i) {
            const auto [si, ei] = two_sum(x.limb[i], carry);
            v[i] = si;
            carry = ei;
        }
        v[N] = carry;
        detail::accumulate<N, 1>(v);
        MultiFloat<T, N> z;
        for (int i = 0; i < N; ++i) z.limb[i] = v[i];
        return z;
    }
}

template <FloatingPoint T, int N>
[[nodiscard]] constexpr MultiFloat<T, N> operator+(const MultiFloat<T, N>& x,
                                                   const MultiFloat<T, N>& y) noexcept {
    return add(x, y);
}

template <FloatingPoint T, int N>
[[nodiscard]] constexpr MultiFloat<T, N> operator-(const MultiFloat<T, N>& x,
                                                   const MultiFloat<T, N>& y) noexcept {
    return sub(x, y);
}

template <FloatingPoint T, int N>
[[nodiscard]] constexpr MultiFloat<T, N> operator+(const MultiFloat<T, N>& x, T y) noexcept {
    return add(x, y);
}

template <FloatingPoint T, int N>
[[nodiscard]] constexpr MultiFloat<T, N> operator+(T x, const MultiFloat<T, N>& y) noexcept {
    return add(y, x);
}

template <FloatingPoint T, int N>
[[nodiscard]] constexpr MultiFloat<T, N> operator-(const MultiFloat<T, N>& x, T y) noexcept {
    return add(x, -y);
}

template <FloatingPoint T, int N>
[[nodiscard]] constexpr MultiFloat<T, N> operator-(T x, const MultiFloat<T, N>& y) noexcept {
    return add(-y, x);
}

template <FloatingPoint T, int N>
constexpr MultiFloat<T, N>& operator+=(MultiFloat<T, N>& x, const MultiFloat<T, N>& y) noexcept {
    x = add(x, y);
    return x;
}

template <FloatingPoint T, int N>
constexpr MultiFloat<T, N>& operator-=(MultiFloat<T, N>& x, const MultiFloat<T, N>& y) noexcept {
    x = sub(x, y);
    return x;
}

template <FloatingPoint T, int N>
constexpr MultiFloat<T, N>& operator+=(MultiFloat<T, N>& x, T y) noexcept {
    x = add(x, y);
    return x;
}

template <FloatingPoint T, int N>
constexpr MultiFloat<T, N>& operator-=(MultiFloat<T, N>& x, T y) noexcept {
    x = add(x, -y);
    return x;
}

}  // namespace mf
