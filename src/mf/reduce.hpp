#pragma once
// Accurate reductions of PLAIN machine-precision arrays into expansions:
// the "compensated algorithms" use case of the paper's related work section,
// done with FPAN building blocks instead of Kahan-style partial compensation
// -- the result carries the FULL N-term precision, so even pathologically
// cancellative sums come out exact to working accuracy.
//
//   mf::sum<double, 4>(xs)      octuple-precision sum of doubles
//   mf::dot<double, 2>(xs, ys)  quad-precision dot product of doubles
//                               (the XBLAS ddot use case)

#include <span>

#include "add.hpp"
#include "eft.hpp"
#include "mul.hpp"
#include "multifloat.hpp"

namespace mf {

/// Sum of machine numbers at N-term precision. For n <= 2^p * eps_N^-1 the
/// result is the correctly rounded exact sum for all practical purposes
/// (error bound ~ n * 2^-(Np - N + 1) relative to the largest partial sum).
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> sum(std::span<const T> xs) {
    MultiFloat<T, N> acc{};
    for (const T x : xs) acc = add(acc, x);
    return acc;
}

/// Dot product of machine-number vectors at N-term precision: every pairwise
/// product enters through TwoProd, so nothing is lost before accumulation.
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> dot(std::span<const T> xs, std::span<const T> ys) {
    MultiFloat<T, N> acc{};
    const std::size_t n = xs.size() < ys.size() ? xs.size() : ys.size();
    for (std::size_t i = 0; i < n; ++i) {
        const auto [p, e] = two_prod(xs[i], ys[i]);
        acc = add(acc, p);
        acc = add(acc, e);
    }
    return acc;
}

/// Two-norm squared at N-term precision.
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> norm2_squared(std::span<const T> xs) {
    return dot<T, N>(xs, xs);
}

}  // namespace mf
