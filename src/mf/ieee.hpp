#pragma once
// Strict IEEE 754 special-value semantics (paper §4.4).
//
// The raw FPAN kernels deliberately trade special-value fidelity for speed:
// TwoSum's inverse operations turn -0.0 into +0.0 and collapse +-Inf into
// NaN (Inf - Inf inside the error computation). The paper notes that "in
// cases where it is necessary to distinguish -0.0 from +0.0 or +-Inf from
// NaN, strict IEEE 754 semantics can be restored using conditional move
// operations" -- this header is that restoration layer.
//
// Each *_ieee operation computes the branch-free extended-precision result
// AND the base type's own single-operation result, then selects the scalar
// result exactly when the scalar result is non-finite or a signed zero.
// The selection compiles to conditional moves (no data-dependent branch on
// the hot path); finite inputs with finite outputs take the FPAN result
// untouched.

#include <cmath>

#include "../telemetry/events.hpp"
#include "add.hpp"
#include "div_sqrt.hpp"
#include "mul.hpp"
#include "multifloat.hpp"

namespace mf {

namespace detail {

/// True when the base type's result for this operation is one of the values
/// the FPAN kernels do not preserve: NaN, +-Inf, or -0.0.
template <FloatingPoint T>
[[nodiscard]] MF_ALWAYS_INLINE bool needs_ieee_fixup(T scalar) noexcept {
    return !std::isfinite(scalar) || (scalar == T(0) && std::signbit(scalar));
}

template <FloatingPoint T, int N>
[[nodiscard]] MF_ALWAYS_INLINE MultiFloat<T, N> select(bool fixup, T scalar,
                                                       const MultiFloat<T, N>& fast) noexcept {
    MultiFloat<T, N> r;
    // Per-limb conditional select; compilers emit cmov/blend, not branches.
    r.limb[0] = fixup ? scalar : fast.limb[0];
    for (int i = 1; i < N; ++i) r.limb[i] = fixup ? T(0) : fast.limb[i];
    return r;
}

}  // namespace detail

/// Addition with IEEE special-value semantics: NaN/Inf propagate as the base
/// type would, and (-0) + (-0) == -0. Finite cases are bit-identical to
/// add().
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> add_ieee(const MultiFloat<T, N>& x,
                                        const MultiFloat<T, N>& y) noexcept {
    const T scalar = x.limb[0] + y.limb[0];
    const bool fixup = detail::needs_ieee_fixup(scalar);
    // Numerical-health event: adds 0 or 1 unconditionally, so the hot path
    // stays branch-free (same discipline as the cmov select below).
    MF_TELEM_COUNT_N("mf_ieee_fixup_total{op=\"add\"}", fixup);
    return detail::select(fixup, scalar, add(x, y));
}

template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> sub_ieee(const MultiFloat<T, N>& x,
                                        const MultiFloat<T, N>& y) noexcept {
    return add_ieee(x, -y);
}

/// Multiplication with IEEE special-value semantics, including the sign of
/// zero results (e.g. (-x) * 0 == -0).
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> mul_ieee(const MultiFloat<T, N>& x,
                                        const MultiFloat<T, N>& y) noexcept {
    const T scalar = x.limb[0] * y.limb[0];
    const bool fixup = detail::needs_ieee_fixup(scalar);
    MF_TELEM_COUNT_N("mf_ieee_fixup_total{op=\"mul\"}", fixup);
    return detail::select(fixup, scalar, mul(x, y));
}

/// Division with IEEE special-value semantics: x/0 = +-Inf, 0/0 = NaN,
/// x/Inf = +-0, with correct signs -- the base type decides. Unlike the
/// other wrappers, the fixup must also trigger on a non-finite *divisor*
/// with a finite scalar quotient (x/Inf = +-0): the scalar result alone
/// looks benign, but the Newton recurrence turns recip(Inf) = 0 into
/// Inf * 0 = NaN limbs.
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> div_ieee(const MultiFloat<T, N>& b,
                                        const MultiFloat<T, N>& a) noexcept {
    const T scalar = b.limb[0] / a.limb[0];
    const bool fixup = detail::needs_ieee_fixup(scalar) || !std::isfinite(a.limb[0]);
    MF_TELEM_COUNT_N("mf_ieee_fixup_total{op=\"div\"}", fixup);
    return detail::select(fixup, scalar, div(b, a));
}

/// Square root with IEEE special-value semantics: sqrt(-0) = -0,
/// sqrt(x < 0) = NaN, sqrt(+Inf) = +Inf, NaN propagates. Finite positive
/// cases are bit-identical to sqrt(). (A non-finite radicand always yields
/// a non-finite scalar, so the scalar-side test is sufficient here.)
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> sqrt_ieee(const MultiFloat<T, N>& a) noexcept {
    const T scalar = std::sqrt(a.limb[0]);
    const bool fixup = detail::needs_ieee_fixup(scalar);
    MF_TELEM_COUNT_N("mf_ieee_fixup_total{op=\"sqrt\"}", fixup);
    return detail::select(fixup, scalar, sqrt(a));
}

}  // namespace mf
