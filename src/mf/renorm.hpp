#pragma once
// Branch-free renormalization passes over fixed-size arrays of limbs.
//
// These are the "sweep" building blocks from which our accumulation networks
// are assembled:
//
//  * distill_pass:  bottom-up chain of TwoSum gates. After the pass, v[lo]
//    holds the (chained-)rounded sum of v[lo..hi] and the rounding errors are
//    redistributed into v[lo+1..hi]. Safe for any input magnitudes.
//
//  * renorm_pass:   top-down chain of FastTwoSum gates. Requires each v[i]
//    to dominate v[i+1] (up to a few ulps), which holds after distillation;
//    tightens the expansion toward the strict nonoverlapping invariant.
//
// All loops below have compile-time trip counts and unroll completely; the
// generated code is straight-line with no branches.

#include <cstddef>
#include <string>

#include "../telemetry/events.hpp"
#include "eft.hpp"

namespace mf {
namespace detail {

/// Bottom-up TwoSum distillation over v[lo..hi] (inclusive).
template <FloatingPoint T, std::size_t K>
MF_ALWAYS_INLINE constexpr void distill_pass(T (&v)[K], int lo, int hi) noexcept {
#pragma GCC unroll 16
    for (int i = hi - 1; i >= lo; --i) {
        const auto [s, e] = two_sum(v[i], v[i + 1]);
        v[i] = s;
        v[i + 1] = e;
    }
}

/// Top-down FastTwoSum renormalization over v[lo..hi] (inclusive).
template <FloatingPoint T, std::size_t K>
MF_ALWAYS_INLINE constexpr void renorm_pass(T (&v)[K], int lo, int hi) noexcept {
#pragma GCC unroll 16
    for (int i = lo; i < hi; ++i) {
        const auto [s, e] = fast_two_sum(v[i], v[i + 1]);
        v[i] = s;
        v[i + 1] = e;
    }
}

/// Full accumulation network over K arbitrary-magnitude values: N bottom-up
/// distillation passes (pass j fixes v[j]) followed by `renorms` top-down
/// FastTwoSum passes over the leading N+1 slots. Returns with the result in
/// v[0..N-1].
///
/// This is the generic engine behind the 3- and 4-term networks; see
/// DESIGN.md for the relationship to the paper's (figure-only) FPANs and
/// fpan/library.cpp for the checkable mirror of each instantiation.
///
/// RENORMS = 1 is the verified default: with zero renorm passes the
/// exhaustive small-p checker finds rare 1-bit nonoverlap violations for
/// n = 3 (invisible to 400k randomized double-precision trials!), while one
/// pass survives 37M+ exhaustive cases; see tests/fpan_verify_test.cpp.
template <int N, int RENORMS = 1, FloatingPoint T, std::size_t K>
MF_ALWAYS_INLINE constexpr void accumulate(T (&v)[K]) noexcept {
    static_assert(N <= static_cast<int>(K));
    // One renormalization-network event per invocation, labeled by the sweep
    // width K (pack instantiations count once per pack, i.e. per W lanes).
    // The macro guards std::is_constant_evaluated(), so constant-folded
    // networks stay constexpr; compiled out entirely when telemetry is off.
    MF_TELEM_COUNT(std::string("mf_renorm_accumulate_total{k=\"") +
                   std::to_string(static_cast<int>(K)) + "\"}");
#pragma GCC unroll 8
    for (int pass = 0; pass < N; ++pass) {
        distill_pass(v, pass, static_cast<int>(K) - 1);
    }
    constexpr int top = (N < static_cast<int>(K) - 1) ? N : static_cast<int>(K) - 1;
#pragma GCC unroll 4
    for (int r = 0; r < RENORMS; ++r) {
        renorm_pass(v, 0, top);
    }
}

}  // namespace detail
}  // namespace mf
