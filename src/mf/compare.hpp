#pragma once
// Exact comparisons of expansions.
//
// Nonoverlapping expansions are not canonical at representation boundaries
// (e.g. (1, +ulp/2) and (1+ulp, -ulp/2) encode the same real), so limb-wise
// lexicographic comparison is unsound. We instead compare via the exact sign
// of the branch-free difference: sub() is correct to 2^-(Np-N+1), far finer
// than representation granularity, and its leading limb carries the sign of
// the exact difference whenever the difference is nonzero.

#include "add.hpp"
#include "multifloat.hpp"

namespace mf {

/// Three-way comparison: -1 if x < y, 0 if x == y, +1 if x > y.
template <FloatingPoint T, int N>
[[nodiscard]] int cmp(const MultiFloat<T, N>& x, const MultiFloat<T, N>& y) noexcept {
    const MultiFloat<T, N> d = sub(x, y);
    return (d.limb[0] > T(0)) - (d.limb[0] < T(0));
}

template <FloatingPoint T, int N>
[[nodiscard]] bool operator==(const MultiFloat<T, N>& x, const MultiFloat<T, N>& y) noexcept {
    return cmp(x, y) == 0;
}

template <FloatingPoint T, int N>
[[nodiscard]] bool operator!=(const MultiFloat<T, N>& x, const MultiFloat<T, N>& y) noexcept {
    return cmp(x, y) != 0;
}

template <FloatingPoint T, int N>
[[nodiscard]] bool operator<(const MultiFloat<T, N>& x, const MultiFloat<T, N>& y) noexcept {
    return cmp(x, y) < 0;
}

template <FloatingPoint T, int N>
[[nodiscard]] bool operator>(const MultiFloat<T, N>& x, const MultiFloat<T, N>& y) noexcept {
    return cmp(x, y) > 0;
}

template <FloatingPoint T, int N>
[[nodiscard]] bool operator<=(const MultiFloat<T, N>& x, const MultiFloat<T, N>& y) noexcept {
    return cmp(x, y) <= 0;
}

template <FloatingPoint T, int N>
[[nodiscard]] bool operator>=(const MultiFloat<T, N>& x, const MultiFloat<T, N>& y) noexcept {
    return cmp(x, y) >= 0;
}

// Scalar overloads (widen the scalar, which is exact).

template <FloatingPoint T, int N>
[[nodiscard]] int cmp(const MultiFloat<T, N>& x, T y) noexcept {
    return cmp(x, MultiFloat<T, N>(y));
}

template <FloatingPoint T, int N>
[[nodiscard]] bool operator==(const MultiFloat<T, N>& x, T y) noexcept {
    return cmp(x, y) == 0;
}

template <FloatingPoint T, int N>
[[nodiscard]] bool operator<(const MultiFloat<T, N>& x, T y) noexcept {
    return cmp(x, y) < 0;
}

template <FloatingPoint T, int N>
[[nodiscard]] bool operator>(const MultiFloat<T, N>& x, T y) noexcept {
    return cmp(x, y) > 0;
}

template <FloatingPoint T, int N>
[[nodiscard]] bool operator<=(const MultiFloat<T, N>& x, T y) noexcept {
    return cmp(x, y) <= 0;
}

template <FloatingPoint T, int N>
[[nodiscard]] bool operator>=(const MultiFloat<T, N>& x, T y) noexcept {
    return cmp(x, y) >= 0;
}

}  // namespace mf
