#pragma once
// Assorted mathematical utilities on expansions.

#include <cstdint>

#include "add.hpp"
#include "compare.hpp"
#include "div_sqrt.hpp"
#include "mul.hpp"
#include "multifloat.hpp"

namespace mf {

/// |x|. Sign flip of every limb is exact; the branch is on the leading limb
/// only (the expansion's sign is the sign of limb[0]).
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> abs(const MultiFloat<T, N>& x) noexcept {
    return (x.limb[0] < T(0)) ? -x : x;
}

template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> fabs(const MultiFloat<T, N>& x) noexcept {
    return abs(x);
}

/// Fused multiply-add at extended precision: x*y + z (not a single rounding,
/// but correct to the expansion's working accuracy).
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> fma(const MultiFloat<T, N>& x,
                                   const MultiFloat<T, N>& y,
                                   const MultiFloat<T, N>& z) noexcept {
    return add(mul(x, y), z);
}

/// Integer power by binary exponentiation. powi(0, 0) == 1.
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> powi(MultiFloat<T, N> base, std::int64_t e) noexcept {
    const bool invert = e < 0;
    std::uint64_t k = invert ? static_cast<std::uint64_t>(-(e + 1)) + 1
                             : static_cast<std::uint64_t>(e);
    MultiFloat<T, N> acc(T(1));
    while (k != 0) {
        if (k & 1) acc = mul(acc, base);
        base = mul(base, base);
        k >>= 1;
    }
    return invert ? recip(acc) : acc;
}

/// Squaring (uses the general commutative multiply; a dedicated squaring
/// network would save the commutativity layer but is not in the paper).
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> sqr(const MultiFloat<T, N>& x) noexcept {
    return mul(x, x);
}

/// min/max by exact comparison.
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> min(const MultiFloat<T, N>& x,
                                   const MultiFloat<T, N>& y) noexcept {
    return (cmp(x, y) <= 0) ? x : y;
}

template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> max(const MultiFloat<T, N>& x,
                                   const MultiFloat<T, N>& y) noexcept {
    return (cmp(x, y) >= 0) ? x : y;
}

}  // namespace mf
