#pragma once
// std::numeric_limits specialization for MultiFloat<T, N>.
//
// Note the paper's §4.4 caveats: expansions extend precision, not exponent
// range, so min/max/infinity mirror the base type; and the effective
// overflow threshold is one machine epsilon narrower than the base type's.

#include <limits>

#include "multifloat.hpp"

namespace std {

template <mf::FloatingPoint T, int N>
struct numeric_limits<mf::MultiFloat<T, N>> {
    using MF = mf::MultiFloat<T, N>;
    using base = numeric_limits<T>;

    static constexpr bool is_specialized = true;
    static constexpr bool is_signed = true;
    static constexpr bool is_integer = false;
    static constexpr bool is_exact = false;
    static constexpr bool has_infinity = base::has_infinity;
    static constexpr bool has_quiet_NaN = base::has_quiet_NaN;
    static constexpr bool has_signaling_NaN = false;
    static constexpr bool is_iec559 = false;  // see paper §4.4
    static constexpr bool is_bounded = true;
    static constexpr bool is_modulo = false;
    static constexpr int radix = 2;
    static constexpr float_round_style round_style = round_to_nearest;

    /// Effective precision in bits: N*p + N - 1 (Eq. 7 of the paper).
    static constexpr int digits = MF::precision;
    static constexpr int digits10 = static_cast<int>(digits * 0.30102999566398);
    static constexpr int max_exponent = base::max_exponent;
    static constexpr int min_exponent =
        base::min_exponent + (N - 1) * base::digits;  // full-precision floor

    static constexpr MF min() noexcept { return MF(base::min()); }
    static constexpr MF lowest() noexcept { return MF(base::lowest()); }
    static constexpr MF max() noexcept { return MF(base::max()); }
    static constexpr MF infinity() noexcept { return MF(base::infinity()); }
    static constexpr MF quiet_NaN() noexcept { return MF(base::quiet_NaN()); }
    static constexpr MF denorm_min() noexcept { return MF(base::denorm_min()); }

    /// One unit in the last place of 1.0 at the extended precision.
    static MF epsilon() noexcept {
        MF e(T(1));
        for (int i = 0; i < digits - 1; ++i) e.limb[0] /= T(2);
        return e;
    }

    static MF round_error() noexcept { return MF(T(0.5)); }
};

}  // namespace std
