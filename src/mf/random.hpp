#pragma once
// Random generation of expansions, for tests and benchmark workloads.

#include <cstdint>
#include <random>

#include "add.hpp"
#include "mul.hpp"
#include "multifloat.hpp"

namespace mf {

/// Uniform value in [0, 1) carrying full N*p-bit entropy: each limb draws a
/// fresh p-bit significand at the appropriate scale, then the result is
/// renormalized through the addition network.
template <FloatingPoint T, int N, typename URBG>
[[nodiscard]] MultiFloat<T, N> random_unit(URBG& rng) {
    constexpr int p = std::numeric_limits<T>::digits;
    std::uniform_real_distribution<T> dist(T(0), T(1));
    MultiFloat<T, N> r(dist(rng));
    for (int i = 1; i < N; ++i) {
        r = add(r, std::ldexp(dist(rng), -i * p));
    }
    return r;
}

/// Random value with log-uniform magnitude in [2^emin, 2^emax) and random
/// sign: the adversarial distribution used throughout the test suite.
template <FloatingPoint T, int N, typename URBG>
[[nodiscard]] MultiFloat<T, N> random_signed(URBG& rng, int emin = -8, int emax = 8) {
    std::uniform_int_distribution<int> edist(emin, emax);
    std::bernoulli_distribution sign;
    MultiFloat<T, N> r = random_unit<T, N>(rng);
    r = add(r, T(1));  // keep the leading limb away from zero
    MultiFloat<T, N> scaled = ldexp(r, edist(rng));
    return sign(rng) ? -scaled : scaled;
}

}  // namespace mf
