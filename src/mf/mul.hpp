#pragma once
// Branch-free multiplication of nonoverlapping floating-point expansions
// (paper §4.2, Figures 5-7).
//
// Strategy: by distributivity, x*y is the exact sum of the n^2 pairwise limb
// products. TwoProd makes each pairwise product exact. Two optimizations from
// the paper are applied:
//
//  * Discard optimization: writing e_x, e_y for the exponents of x0, y0, any
//    term with exponent below e_x + e_y - n(p+1) cannot affect an n-term
//    result. Hence p_ij is dropped for i+j >= n and the TwoProd error e_ij is
//    dropped for i+j+1 >= n: only n(n-1)/2 TwoProds and n plain products are
//    needed, and the accumulation network has n^2 inputs instead of 2n^2.
//
//  * Commutativity layer: the symmetric pairs (p_ij, p_ji) and (e_ij, e_ji)
//    are first combined with commutative gates so that mul(x, y) and
//    mul(y, x) are bit-identical -- the property §4.2 highlights for complex
//    conjugate products.
//
// N = 2 is the provably optimal 3-gate, depth-3 network of Figure 5 (error
// <= 2^-(2p-3)|xy|). N = 3, 4 are reconstructions with the same structure
// (commutativity layer + level-pooled accumulation); their error bounds
// (2^-(3p-3), 2^-(4p-4)) are enforced empirically by the test suite against
// the exact BigFloat oracle.

#include "eft.hpp"
#include "multifloat.hpp"
#include "renorm.hpp"

namespace mf {
namespace detail {

/// Figure 5: optimal commutative 2-term multiplication (size 3, depth 3).
template <FloatingPoint T>
MF_ALWAYS_INLINE MultiFloat<T, 2> mul2(const MultiFloat<T, 2>& x, const MultiFloat<T, 2>& y) noexcept {
    const auto [p00, e00] = two_prod(x.limb[0], y.limb[0]);
    const T p01 = x.limb[0] * y.limb[1];  // error below threshold: discarded
    const T p10 = x.limb[1] * y.limb[0];  // error below threshold: discarded
    // (x1*y1 falls entirely below the threshold and is never formed.)
    const T t = p01 + p10;                       // gate 1 (commutative sum)
    const T s = t + e00;                         // gate 2 (sum)
    const auto [z0, z1] = fast_two_sum(p00, s);  // gate 3 (FastTwoSum)
    return MultiFloat<T, 2>({z0, z1});
}

/// 3-term commutative multiplication (cf. Figure 6).
template <FloatingPoint T>
MF_ALWAYS_INLINE MultiFloat<T, 3> mul3(const MultiFloat<T, 3>& x, const MultiFloat<T, 3>& y) noexcept {
    // Expansion step: 3 TwoProds (i+j <= 1) + 3 plain products (i+j == 2).
    const auto [p00, e00] = two_prod(x.limb[0], y.limb[0]);
    const auto [p01, e01] = two_prod(x.limb[0], y.limb[1]);
    const auto [p10, e10] = two_prod(x.limb[1], y.limb[0]);
    const T p02 = x.limb[0] * y.limb[2];
    const T p20 = x.limb[2] * y.limb[0];
    const T p11 = x.limb[1] * y.limb[1];

    // Commutativity layer on symmetric pairs.
    const auto [t1, u1] = two_sum(p01, p10);  // level 1 + error into level 2
    const T f1 = e01 + e10;                   // level 2 (error discardable)
    const T g1 = p02 + p20;                   // level 2 (error discardable)

    // Level pooling. Level 1: {t1, e00}; level 2: {u1, f1, g1, p11, carry}.
    const auto [w1, c1] = two_sum(t1, e00);
    T h = u1 + f1;
    h = h + g1;
    h = h + p11;
    h = h + c1;

    T v[3] = {p00, w1, h};
    accumulate<3, 1>(v);
    return MultiFloat<T, 3>({v[0], v[1], v[2]});
}

/// 4-term commutative multiplication (cf. Figure 7).
template <FloatingPoint T>
MF_ALWAYS_INLINE MultiFloat<T, 4> mul4(const MultiFloat<T, 4>& x, const MultiFloat<T, 4>& y) noexcept {
    // Expansion step: 6 TwoProds (i+j <= 2) + 4 plain products (i+j == 3).
    const auto [p00, e00] = two_prod(x.limb[0], y.limb[0]);
    const auto [p01, e01] = two_prod(x.limb[0], y.limb[1]);
    const auto [p10, e10] = two_prod(x.limb[1], y.limb[0]);
    const auto [p02, e02] = two_prod(x.limb[0], y.limb[2]);
    const auto [p20, e20] = two_prod(x.limb[2], y.limb[0]);
    const auto [p11, e11] = two_prod(x.limb[1], y.limb[1]);
    const T p03 = x.limb[0] * y.limb[3];
    const T p30 = x.limb[3] * y.limb[0];
    const T p12 = x.limb[1] * y.limb[2];
    const T p21 = x.limb[2] * y.limb[1];

    // Commutativity layer.
    const auto [t1, u1] = two_sum(p01, p10);  // level 1; u1 -> level 2
    const auto [t2, u2] = two_sum(p02, p20);  // level 2; u2 -> level 3
    const auto [f1, g1] = two_sum(e01, e10);  // level 2; g1 -> level 3
    const T q1 = p03 + p30;                   // level 3 (errors discardable)
    const T q2 = p12 + p21;                   // level 3
    const T q3 = e02 + e20;                   // level 3

    // Level 1 pool: {t1, e00}.
    const auto [w1, c1] = two_sum(t1, e00);  // c1 -> level 2

    // Level 2 pool: {t2, f1, p11, u1, c1}; keep every rounding error (they
    // land at level 3, still above the discard threshold for N = 4).
    auto [a, d1] = two_sum(t2, f1);
    const auto [a2, d2] = two_sum(a, p11);
    const auto [a3, d3] = two_sum(a2, u1);
    const auto [a4, d4] = two_sum(a3, c1);

    // Level 3 pool: plain sums; rounding errors fall below the threshold.
    T h = u2 + g1;
    h = h + q1;
    h = h + q2;
    h = h + q3;
    h = h + e11;
    h = h + d1;
    h = h + d2;
    h = h + d3;
    h = h + d4;

    T v[4] = {p00, w1, a4, h};
    accumulate<4, 1>(v);
    return MultiFloat<T, 4>({v[0], v[1], v[2], v[3]});
}

/// Non-commutative 2-term multiplication (DWTimesDW-style FMA chain).
/// Slightly cheaper than mul2 but mul_fast2(x, y) != mul_fast2(y, x) in
/// general; kept for the §4.2 commutativity ablation.
template <FloatingPoint T>
MultiFloat<T, 2> mul2_noncommutative(const MultiFloat<T, 2>& x,
                                     const MultiFloat<T, 2>& y) noexcept {
    using std::fma;  // ADL: pack-level fma for SIMD value types
    const auto [p00, e00] = two_prod(x.limb[0], y.limb[0]);
    const T t = fma(x.limb[0], y.limb[1], x.limb[1] * y.limb[0]);
    const T s = t + e00;
    const auto [z0, z1] = fast_two_sum(p00, s);
    return MultiFloat<T, 2>({z0, z1});
}

}  // namespace detail

/// Expansion multiplication.
template <FloatingPoint T, int N>
[[nodiscard]] MF_ALWAYS_INLINE MultiFloat<T, N> mul(const MultiFloat<T, N>& x,
                                   const MultiFloat<T, N>& y) noexcept {
    if constexpr (N == 1) {
        return MultiFloat<T, 1>(x.limb[0] * y.limb[0]);
    } else if constexpr (N == 2) {
        return detail::mul2(x, y);
    } else if constexpr (N == 3) {
        return detail::mul3(x, y);
    } else {
        static_assert(N == 4, "mul: expansion lengths 1-4 are supported");
        return detail::mul4(x, y);
    }
}

/// Mixed expansion-scalar multiplication: N TwoProds + accumulation.
template <FloatingPoint T, int N>
[[nodiscard]] MF_ALWAYS_INLINE MultiFloat<T, N> mul(const MultiFloat<T, N>& x, T y) noexcept {
    if constexpr (N == 1) {
        return MultiFloat<T, 1>(x.limb[0] * y);
    } else {
        // (p_i, e_i) = TwoProd(x_i, y); p_i sits at level i, e_i at level
        // i+1. The last error is below the discard threshold.
        T v[2 * N - 1];
        T carry{};
        for (int i = 0; i < N; ++i) {
            if (i < N - 1) {
                const auto [p, e] = two_prod(x.limb[i], y);
                if (i == 0) {
                    v[0] = p;
                } else {
                    v[2 * i - 1] = p;
                    v[2 * i] = carry;
                }
                carry = e;
            } else {
                v[2 * i - 1] = x.limb[i] * y;
                v[2 * i] = carry;
            }
        }
        detail::accumulate<N, 1>(v);
        MultiFloat<T, N> z;
        for (int i = 0; i < N; ++i) z.limb[i] = v[i];
        return z;
    }
}

/// Exact multiplication by a power of two: applied limb-wise, never rounds.
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> ldexp(const MultiFloat<T, N>& x, int e) noexcept {
    MultiFloat<T, N> r;
    for (int i = 0; i < N; ++i) r.limb[i] = std::ldexp(x.limb[i], e);
    return r;
}

template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> operator*(const MultiFloat<T, N>& x,
                                         const MultiFloat<T, N>& y) noexcept {
    return mul(x, y);
}

template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> operator*(const MultiFloat<T, N>& x, T y) noexcept {
    return mul(x, y);
}

template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> operator*(T x, const MultiFloat<T, N>& y) noexcept {
    return mul(y, x);
}

template <FloatingPoint T, int N>
MultiFloat<T, N>& operator*=(MultiFloat<T, N>& x, const MultiFloat<T, N>& y) noexcept {
    x = mul(x, y);
    return x;
}

template <FloatingPoint T, int N>
MultiFloat<T, N>& operator*=(MultiFloat<T, N>& x, T y) noexcept {
    x = mul(x, y);
    return x;
}

}  // namespace mf
