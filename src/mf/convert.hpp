#pragma once
// Conversions between MultiFloat expansions and the BigFloat software FPU:
// exact embedding, round-and-subtract decomposition (Eq. 6 of the paper),
// and decimal string I/O.
//
// Header-only templates; link against the `bigfloat` library.

#include <ostream>
#include <span>
#include <string>

#include "../bigfloat/bigfloat.hpp"
#include "multifloat.hpp"

namespace mf {

/// Exact value of an expansion as a BigFloat (no rounding).
template <FloatingPoint T, int N>
[[nodiscard]] big::BigFloat to_bigfloat(const MultiFloat<T, N>& x) {
    big::BigFloat acc;
    for (int i = 0; i < N; ++i) {
        acc = acc + big::BigFloat::from_double(static_cast<double>(x.limb[i]));
    }
    return acc;
}

/// Decompose a high-precision constant C into a nonoverlapping expansion via
/// successive round-and-subtract (Eq. 6):
///   x_0 = RN_p(C), x_1 = RN_p(C - x_0), ...
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> from_bigfloat(const big::BigFloat& c) {
    constexpr int p = std::numeric_limits<T>::digits;
    MultiFloat<T, N> x;
    big::BigFloat r = c;
    for (int i = 0; i < N; ++i) {
        const double xi = r.round(p).to_double();
        x.limb[i] = static_cast<T>(xi);  // exact: xi has <= p significant bits
        r = r - big::BigFloat::from_double(static_cast<double>(x.limb[i]));
    }
    return x;
}

/// Parse a decimal string, correctly rounded to the expansion's precision.
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> from_string(const std::string& s) {
    const auto c = big::BigFloat::from_string(s, MultiFloat<T, N>::precision + 8);
    return from_bigfloat<T, N>(c);
}

/// Decimal rendering with (by default) the expansion's full decimal width.
template <FloatingPoint T, int N>
[[nodiscard]] std::string to_string(const MultiFloat<T, N>& x, int digits10 = 0) {
    if (digits10 <= 0) {
        digits10 = static_cast<int>(MultiFloat<T, N>::precision * 0.30103) + 1;
    }
    const auto b = to_bigfloat(x);
    if (b.is_zero()) return "0";
    return b.to_string(digits10);
}

template <FloatingPoint T, int N>
std::ostream& operator<<(std::ostream& os, const MultiFloat<T, N>& x) {
    return os << to_string(x);
}

}  // namespace mf
