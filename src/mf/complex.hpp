#pragma once
// Complex arithmetic over expansions -- the application domain where §4.2's
// commutativity guarantee matters: with a commutative multiplier, the
// conjugate product (a+bi)(a-bi) has an EXACTLY zero imaginary part, so
// complex magnitudes and Hermitian reductions stay real. (The paper notes
// that non-commutative multipliers leave a small nonzero imaginary residue
// that "severely degrades the performance of certain numerical algorithms,
// such as eigensolvers".)

#include "add.hpp"
#include "compare.hpp"
#include "div_sqrt.hpp"
#include "mul.hpp"
#include "multifloat.hpp"

namespace mf {

template <FloatingPoint T, int N>
struct Complex {
    using value_type = MultiFloat<T, N>;

    MultiFloat<T, N> re{};
    MultiFloat<T, N> im{};

    constexpr Complex() = default;
    Complex(const MultiFloat<T, N>& r) : re(r) {}
    Complex(const MultiFloat<T, N>& r, const MultiFloat<T, N>& i) : re(r), im(i) {}
    Complex(T r, T i = T(0)) : re(r), im(i) {}
};

template <FloatingPoint T, int N>
[[nodiscard]] Complex<T, N> conj(const Complex<T, N>& z) {
    return {z.re, -z.im};
}

template <FloatingPoint T, int N>
[[nodiscard]] Complex<T, N> operator+(const Complex<T, N>& a, const Complex<T, N>& b) {
    return {add(a.re, b.re), add(a.im, b.im)};
}

template <FloatingPoint T, int N>
[[nodiscard]] Complex<T, N> operator-(const Complex<T, N>& a, const Complex<T, N>& b) {
    return {sub(a.re, b.re), sub(a.im, b.im)};
}

template <FloatingPoint T, int N>
[[nodiscard]] Complex<T, N> operator-(const Complex<T, N>& a) {
    return {-a.re, -a.im};
}

template <FloatingPoint T, int N>
[[nodiscard]] Complex<T, N> operator*(const Complex<T, N>& a, const Complex<T, N>& b) {
    // (ar br - ai bi) + (ar bi + ai br) i -- with the commutative multiplier
    // this expression is symmetric under conjugation, so z * conj(z) is
    // exactly real (tests/complex_test.cpp).
    return {sub(mul(a.re, b.re), mul(a.im, b.im)),
            add(mul(a.re, b.im), mul(a.im, b.re))};
}

/// |z|^2 = z * conj(z), computed as an exactly-real quantity.
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> norm(const Complex<T, N>& z) {
    return add(mul(z.re, z.re), mul(z.im, z.im));
}

template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> abs(const Complex<T, N>& z) {
    return sqrt(norm(z));
}

template <FloatingPoint T, int N>
[[nodiscard]] Complex<T, N> operator/(const Complex<T, N>& a, const Complex<T, N>& b) {
    const MultiFloat<T, N> inv = recip(norm(b));
    const Complex<T, N> num = a * conj(b);
    return {mul(num.re, inv), mul(num.im, inv)};
}

template <FloatingPoint T, int N>
[[nodiscard]] bool operator==(const Complex<T, N>& a, const Complex<T, N>& b) {
    return a.re == b.re && a.im == b.im;
}

template <FloatingPoint T, int N>
Complex<T, N>& operator+=(Complex<T, N>& a, const Complex<T, N>& b) {
    return a = a + b;
}
template <FloatingPoint T, int N>
Complex<T, N>& operator*=(Complex<T, N>& a, const Complex<T, N>& b) {
    return a = a * b;
}

using Complex64x2 = Complex<double, 2>;
using Complex64x3 = Complex<double, 3>;
using Complex64x4 = Complex<double, 4>;

}  // namespace mf
