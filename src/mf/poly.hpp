#pragma once
// Polynomial evaluation and root polishing at extended precision -- the
// classic consumer of cheap high-precision arithmetic (ill-conditioned
// polynomials like Wilkinson's are the textbook case where double-precision
// Horner loses every digit near a root).
//
//   mf::poly::horner(coeffs, x)            Horner evaluation, MF throughout
//   mf::poly::horner_compensated(c, x)     double coefficients, double x,
//                                          MultiFloat<double, N> result --
//                                          an error-free-transform Horner
//                                          (compensated to N-term precision)
//   mf::poly::newton_polish(coeffs, x0)    refine a root estimate
//
// The compensated Horner uses TwoProd/TwoSum per step and accumulates the
// error terms in an expansion: the EFT-based scheme of the compensated-
// algorithms literature, carried to full N-term precision.

#include <span>

#include "add.hpp"
#include "div_sqrt.hpp"
#include "eft.hpp"
#include "mul.hpp"
#include "multifloat.hpp"

namespace mf::poly {

/// p(x) with coefficients c[0] + c[1] x + ... + c[d] x^d, all in MF.
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> horner(std::span<const MultiFloat<T, N>> c,
                                      const MultiFloat<T, N>& x) {
    if (c.empty()) return MultiFloat<T, N>{};
    MultiFloat<T, N> acc = c.back();
    for (std::size_t i = c.size() - 1; i-- > 0;) {
        acc = add(mul(acc, x), c[i]);
    }
    return acc;
}

/// p(x) and p'(x) in one sweep (for Newton).
template <FloatingPoint T, int N>
struct EvalDeriv {
    MultiFloat<T, N> value;
    MultiFloat<T, N> deriv;
};

template <FloatingPoint T, int N>
[[nodiscard]] EvalDeriv<T, N> horner_with_derivative(
    std::span<const MultiFloat<T, N>> c, const MultiFloat<T, N>& x) {
    EvalDeriv<T, N> r{};
    if (c.empty()) return r;
    r.value = c.back();
    for (std::size_t i = c.size() - 1; i-- > 0;) {
        r.deriv = add(mul(r.deriv, x), r.value);
        r.value = add(mul(r.value, x), c[i]);
    }
    return r;
}

/// Compensated Horner: machine-precision coefficients and argument, N-term
/// result. Each Horner step's product and sum run through error-free
/// transformations; the main chain stays in machine precision (fast) while
/// the error stream accumulates in an expansion, which at the end corrects
/// the machine result to N-term accuracy.
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> horner_compensated(std::span<const T> c, T x) {
    if (c.empty()) return MultiFloat<T, N>{};
    T h = c.back();
    MultiFloat<T, N> err{};
    for (std::size_t i = c.size() - 1; i-- > 0;) {
        const auto [p, ep] = two_prod(h, x);
        const auto [s, es] = two_sum(p, c[i]);
        h = s;
        // err <- err*x + (ep + es), at expansion precision.
        err = add(mul(err, MultiFloat<T, N>(x)), add(MultiFloat<T, N>(ep), es));
    }
    return add(err, h);
}

/// Newton refinement of a root estimate at full working precision.
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> newton_polish(std::span<const MultiFloat<T, N>> c,
                                             MultiFloat<T, N> x, int iterations = 4) {
    for (int it = 0; it < iterations; ++it) {
        const auto [v, d] = horner_with_derivative(c, x);
        if (d.is_zero()) break;
        x = sub(x, div(v, d));
    }
    return x;
}

}  // namespace mf::poly
