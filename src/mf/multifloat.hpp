#pragma once
// MultiFloat<T, N>: an extended-precision number represented as a
// nonoverlapping floating-point expansion of N machine-precision terms
// ("limbs"), limb[0] being the most significant.
//
// The value represented is exactly limb[0] + limb[1] + ... + limb[N-1]
// (as a real number). The nonoverlapping invariant (Eq. 8 of the paper),
//
//     |limb[i]| <= (1/2) * ulp(limb[i-1]),
//
// guarantees an effective precision of N*p + N - 1 bits, where p is the
// precision of T (p = 53 for double): quadruple, sextuple, or octuple
// precision for N = 2, 3, 4 on double-precision hardware.
//
// All arithmetic is branch-free straight-line code built from error-free
// transformations; see add.hpp, mul.hpp, div_sqrt.hpp.

#include <array>
#include <cmath>
#include <cstddef>
#include <limits>

#include "eft.hpp"

namespace mf {

template <FloatingPoint T, int N>
    requires(N >= 1 && N <= 8)
struct MultiFloat {
    using value_type = T;
    static constexpr int num_limbs = N;

    /// Precision of the base type in bits (e.g. 53 for double).
    static constexpr int base_precision = std::numeric_limits<T>::digits;

    /// Effective precision of a nonoverlapping N-term expansion (Eq. 7).
    static constexpr int precision = N * base_precision + (N - 1);

    std::array<T, N> limb{};

    constexpr MultiFloat() noexcept = default;

    /// Exact embedding of a machine number (remaining limbs zero).
    constexpr MultiFloat(T x) noexcept {
        limb[0] = x;
        for (int i = 1; i < N; ++i) limb[i] = T(0);
    }

    /// Construct from raw limbs. Caller promises nonoverlapping order.
    explicit constexpr MultiFloat(const std::array<T, N>& limbs) noexcept
        : limb(limbs) {}

    /// Convenience: any other arithmetic type converts through the base
    /// type (one rounding; exact for integers up to 2^p).
    template <typename U>
        requires(std::is_arithmetic_v<U> && !std::is_same_v<U, T>)
    constexpr MultiFloat(U v) noexcept : MultiFloat(static_cast<T>(v)) {}

    /// Best single-T approximation of the represented value: faithful
    /// (within 1 ulp) for every nonoverlapping expansion, and correctly
    /// rounded except when the value lies exactly on a half-ulp tie (the
    /// low-to-high summation can then double-round by one ulp).
    [[nodiscard]] constexpr T to_float() const noexcept {
        T acc = limb[N - 1];
        for (int i = N - 2; i >= 0; --i) acc += limb[i];
        return acc;
    }

    explicit constexpr operator T() const noexcept { return to_float(); }

    [[nodiscard]] constexpr bool is_zero() const noexcept {
        return limb[0] == T(0);
    }

    [[nodiscard]] bool is_finite() const noexcept {
        bool ok = true;
        for (int i = 0; i < N; ++i) ok = ok && std::isfinite(limb[i]);
        return ok;
    }

    constexpr MultiFloat operator-() const noexcept {
        MultiFloat r;
        for (int i = 0; i < N; ++i) r.limb[i] = -limb[i];
        return r;
    }

    constexpr MultiFloat operator+() const noexcept { return *this; }

    /// Widen or truncate to a different expansion length. Widening is exact;
    /// truncation keeps the M most significant limbs (a valid nonoverlapping
    /// expansion of reduced precision).
    template <int M>
    [[nodiscard]] constexpr MultiFloat<T, M> resize() const noexcept {
        MultiFloat<T, M> r;
        constexpr int K = (M < N) ? M : N;
        for (int i = 0; i < K; ++i) r.limb[i] = limb[i];
        for (int i = K; i < M; ++i) r.limb[i] = T(0);
        return r;
    }
};

/// Debug/test helper: does this expansion satisfy the strict nonoverlapping
/// invariant |limb[i]| <= (1/2) ulp(limb[i-1])? (Branchy; not used by the
/// arithmetic hot paths.)
template <FloatingPoint T, int N>
[[nodiscard]] bool is_nonoverlapping(const MultiFloat<T, N>& x) noexcept {
    constexpr int p = std::numeric_limits<T>::digits;
    for (int i = 1; i < N; ++i) {
        const T hi = x.limb[i - 1];
        const T lo = x.limb[i];
        if (hi == T(0)) {
            if (lo != T(0)) return false;
            continue;
        }
        if (lo == T(0)) continue;
        // ulp(hi) = 2^(exponent(hi) - p + 1); |lo| <= 2^(exponent(hi) - p)
        const int e_hi = std::ilogb(hi);
        const int e_lo = std::ilogb(lo);
        if (e_lo > e_hi - p) return false;
        // Boundary case |lo| == 2^(e_hi - p) exactly is allowed by Eq. 8.
        if (e_lo == e_hi - p && std::abs(lo) != std::ldexp(T(1), e_lo))
            return false;
    }
    return true;
}

/// Weaker diagnostic: limbs decrease by at least `slack` bits fewer than the
/// full precision p. is_nonoverlapping == is_p_overlapping with slack 0.
template <FloatingPoint T, int N>
[[nodiscard]] bool overlap_bits(const MultiFloat<T, N>& x, int* worst = nullptr) noexcept {
    constexpr int p = std::numeric_limits<T>::digits;
    int w = 0;
    for (int i = 1; i < N; ++i) {
        if (x.limb[i - 1] == T(0) || x.limb[i] == T(0)) continue;
        const int gap = std::ilogb(x.limb[i - 1]) - std::ilogb(x.limb[i]);
        if (p - gap > w) w = p - gap;
    }
    if (worst) *worst = w;
    return w <= 0;
}

// Common aliases used throughout the paper's evaluation.
using Float64x2 = MultiFloat<double, 2>;  ///< ~quadruple precision (107 bits)
using Float64x3 = MultiFloat<double, 3>;  ///< ~sextuple precision (161 bits)
using Float64x4 = MultiFloat<double, 4>;  ///< ~octuple precision (215 bits)
using Float32x2 = MultiFloat<float, 2>;
using Float32x3 = MultiFloat<float, 3>;
using Float32x4 = MultiFloat<float, 4>;

}  // namespace mf
