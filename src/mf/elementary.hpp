#pragma once
// Elementary transcendental functions on expansions: exp, log, sin, cos,
// tan, pow, sinh, cosh.
//
// These extend the paper's arithmetic core the way mature expansion
// libraries (QD, MultiFloats.jl) do, using only the branch-free +,-,*,/ of
// this library plus classical argument reduction:
//
//   exp: x = m*ln2 + r, r scaled by 2^-kScale, Horner Taylor, repeated
//        squaring, exact ldexp by m.
//   log: Newton's method on exp (y <- y - 1 + x*exp(-y)), double-precision
//        seed, quadratically convergent.
//   sin/cos: reduce modulo pi/2 at full working precision, quadrant
//        dispatch, Horner Taylor with precomputed inverse factorials.
//
// Accuracy: a few ulps of the expansion's working precision (tested against
// exact series oracles and algebraic identities in tests/elementary_test.cpp).
// Argument reduction uses the working precision, so trigonometric accuracy
// degrades for |x| >> 2^p as usual.
//
// Requires linking the `bigfloat` library (high-precision constants are
// parsed once per (T, N) instantiation via convert.hpp).

#include <array>
#include <cmath>

#include "add.hpp"
#include "convert.hpp"
#include "div_sqrt.hpp"
#include "mul.hpp"

namespace mf {

namespace detail {

/// High-precision constants, parsed once per instantiation (100 decimal
/// digits; plenty for N <= 8 limbs of any base type).
template <FloatingPoint T, int N>
const MultiFloat<T, N>& const_ln2() {
    static const MultiFloat<T, N> v = from_string<T, N>(
        "0.693147180559945309417232121458176568075500134360255254120680009493393"
        "6219696947156058633269964186875");
    return v;
}

template <FloatingPoint T, int N>
const MultiFloat<T, N>& const_pi() {
    static const MultiFloat<T, N> v = from_string<T, N>(
        "3.141592653589793238462643383279502884197169399375105820974944592307816"
        "4062862089986280348253421170680");
    return v;
}

template <FloatingPoint T, int N>
const MultiFloat<T, N>& const_half_pi() {
    static const MultiFloat<T, N> v = from_string<T, N>(
        "1.570796326794896619231321691639751442098584699687552910487472296153908"
        "2031431044993140174126710585340");
    return v;
}

/// Inverse factorials 1/k! as expansions, computed once by exact integer
/// division at full working precision.
template <FloatingPoint T, int N, int KMax>
const std::array<MultiFloat<T, N>, KMax>& inv_factorials() {
    static const std::array<MultiFloat<T, N>, KMax> table = [] {
        std::array<MultiFloat<T, N>, KMax> t;
        big::BigFloat fact = big::BigFloat::from_int(1);
        for (int k = 0; k < KMax; ++k) {
            if (k > 0) fact = fact * big::BigFloat::from_int(k);
            const big::BigFloat inv = big::BigFloat::div(
                big::BigFloat::from_int(1), fact, MultiFloat<T, N>::precision + 16);
            t[static_cast<std::size_t>(k)] = from_bigfloat<T, N>(inv);
        }
        return t;
    }();
    return table;
}

/// Taylor terms needed so that |r|^K / K! < 2^-(precision + margin) for the
/// reduced arguments used below (|r| < 2^-kExpScale for exp, |r| <= pi/4 for
/// sin/cos). Conservative fixed counts per N keep the code branch-light.
template <int N>
inline constexpr int exp_terms = N == 1 ? 14 : N == 2 ? 18 : N == 3 ? 22 : 26;
template <int N>
inline constexpr int trig_terms = N == 1 ? 18 : N == 2 ? 30 : N == 3 ? 38 : 46;

inline constexpr int kExpScale = 9;  // reduce |r| below ln2/2 / 2^9 ~ 6.8e-4

}  // namespace detail

/// e^x. Overflows (to inf in the leading limb) past the base type's range.
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> exp(const MultiFloat<T, N>& x) {
    using MF = MultiFloat<T, N>;
    const double xd = static_cast<double>(x.to_float());
    if (!(std::abs(xd) < 0.99 * static_cast<double>(std::numeric_limits<T>::max_exponent) *
                            0.6931471805599453)) {
        // Out of range (or NaN): defer to the scalar exp for the right
        // special value, exactly as the base type would behave.
        return MF(static_cast<T>(std::exp(xd)));
    }
    // x = m*ln2 + r with |r| <= ln2/2.
    const auto m = static_cast<long>(std::nearbyint(xd / 0.6931471805599453));
    MF r = sub(x, mul(detail::const_ln2<T, N>(), MF(static_cast<T>(m))));
    // Scale r down so the Taylor series needs few terms.
    r = ldexp(r, -detail::kExpScale);
    // Horner over precomputed 1/k!.
    constexpr int K = detail::exp_terms<N>;
    const auto& inv = detail::inv_factorials<T, N, K>();
    MF acc = inv[K - 1];
    for (int k = K - 2; k >= 0; --k) {
        acc = add(mul(acc, r), inv[static_cast<std::size_t>(k)]);
    }
    // Undo the scaling: square kExpScale times, then the exact 2^m.
    for (int s = 0; s < detail::kExpScale; ++s) acc = mul(acc, acc);
    return ldexp(acc, static_cast<int>(m));
}

/// Natural logarithm for x > 0 (NaN limbs otherwise, like the base type).
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> log(const MultiFloat<T, N>& x) {
    using MF = MultiFloat<T, N>;
    const double xd = static_cast<double>(x.to_float());
    if (!(xd > 0.0) || !std::isfinite(xd)) {
        return MF(static_cast<T>(std::log(xd)));
    }
    // Newton on f(y) = e^y - x:  y <- y - 1 + x * e^{-y}; the double seed
    // gives 53 bits and each iteration doubles them.
    MF y(static_cast<T>(std::log(xd)));
    const MF one(T(1));
    const int iters = N <= 2 ? 2 : 3;
    for (int i = 0; i < iters; ++i) {
        const MF e = exp(-y);
        y = add(sub(y, one), mul(x, e));
    }
    return y;
}

namespace detail {

/// sin/cos of a reduced argument |r| <= pi/4 via Horner Taylor.
template <FloatingPoint T, int N>
MultiFloat<T, N> sin_reduced(const MultiFloat<T, N>& r) {
    constexpr int K = trig_terms<N>;
    const auto& inv = inv_factorials<T, N, K>();
    const MultiFloat<T, N> r2 = mul(r, r);
    // sum over odd k: r * (1/1! - r^2/3! + r^4/5! - ...)
    MultiFloat<T, N> acc{};
    for (int k = (K - 1) | 1; k >= 1; k -= 2) {
        const auto& c = inv[static_cast<std::size_t>(k)];
        acc = add(mul(acc, r2), ((k / 2) % 2 == 0) ? c : -c);
    }
    return mul(acc, r);
}

template <FloatingPoint T, int N>
MultiFloat<T, N> cos_reduced(const MultiFloat<T, N>& r) {
    constexpr int K = trig_terms<N>;
    const auto& inv = inv_factorials<T, N, K>();
    const MultiFloat<T, N> r2 = mul(r, r);
    MultiFloat<T, N> acc{};
    for (int k = (K - 1) & ~1; k >= 0; k -= 2) {
        const auto& c = inv[static_cast<std::size_t>(k)];
        acc = add(mul(acc, r2), ((k / 2) % 2 == 0) ? c : -c);
    }
    return acc;
}

/// Argument reduction: r = x - q * pi/2 at full working precision; returns
/// the quadrant q mod 4 (non-negative).
template <FloatingPoint T, int N>
int trig_reduce(const MultiFloat<T, N>& x, MultiFloat<T, N>& r) {
    const double q = std::nearbyint(static_cast<double>(x.to_float()) /
                                    1.5707963267948966);
    r = sub(x, mul(const_half_pi<T, N>(), MultiFloat<T, N>(static_cast<T>(q))));
    const auto qi = static_cast<long long>(q);
    return static_cast<int>(((qi % 4) + 4) % 4);
}

}  // namespace detail

template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> sin(const MultiFloat<T, N>& x) {
    using MF = MultiFloat<T, N>;
    if (!x.is_finite()) return MF(static_cast<T>(std::sin(static_cast<double>(x.to_float()))));
    MF r;
    switch (detail::trig_reduce(x, r)) {
        case 0: return detail::sin_reduced(r);
        case 1: return detail::cos_reduced(r);
        case 2: return -detail::sin_reduced(r);
        default: return -detail::cos_reduced(r);
    }
}

template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> cos(const MultiFloat<T, N>& x) {
    using MF = MultiFloat<T, N>;
    if (!x.is_finite()) return MF(static_cast<T>(std::cos(static_cast<double>(x.to_float()))));
    MF r;
    switch (detail::trig_reduce(x, r)) {
        case 0: return detail::cos_reduced(r);
        case 1: return -detail::sin_reduced(r);
        case 2: return -detail::cos_reduced(r);
        default: return detail::sin_reduced(r);
    }
}

template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> tan(const MultiFloat<T, N>& x) {
    MultiFloat<T, N> r;
    const int q = detail::trig_reduce(x, r);
    const auto s = detail::sin_reduced(r);
    const auto c = detail::cos_reduced(r);
    return (q % 2 == 0) ? div(s, c) : -div(c, s);
}

/// x^y = exp(y log x) for x > 0.
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> pow(const MultiFloat<T, N>& x, const MultiFloat<T, N>& y) {
    return exp(mul(y, log(x)));
}

template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> sinh(const MultiFloat<T, N>& x) {
    // For small x the direct formula cancels; switch to the sinh series via
    // sinh x = s where e = exp(x): s = (e - 1/e)/2.
    const auto e = exp(x);
    return ldexp(sub(e, recip(e)), -1);
}

template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> cosh(const MultiFloat<T, N>& x) {
    const auto e = exp(x);
    return ldexp(add(e, recip(e)), -1);
}

/// pi at the working precision (Eq. 7): handy for user argument reduction.
template <FloatingPoint T, int N>
[[nodiscard]] const MultiFloat<T, N>& pi() {
    return detail::const_pi<T, N>();
}

/// atan via Newton on tan: y <- y - (tan y - x) cos^2 y, double seed,
/// quadratic convergence (2-3 iterations of one sin/cos pair each).
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> atan(const MultiFloat<T, N>& x) {
    using MF = MultiFloat<T, N>;
    const double xd = static_cast<double>(x.to_float());
    if (!std::isfinite(xd)) return MF(static_cast<T>(std::atan(xd)));
    MF y(static_cast<T>(std::atan(xd)));
    const int iters = N <= 2 ? 2 : 3;
    for (int i = 0; i < iters; ++i) {
        // sin/cos of y via quadrant mapping: sin(r + q pi/2), cos(r + q pi/2).
        MF r;
        const int q = detail::trig_reduce(y, r);
        MF s = detail::sin_reduced(r);
        MF c = detail::cos_reduced(r);
        if (q == 1 || q == 3) std::swap(s, c);  // |y| < pi/2, but be safe
        if (q == 1 || q == 2) c = -c;
        if (q == 2 || q == 3) s = -s;
        // y -= (s - x c) * c   ==  y - (tan y - x) cos^2 y
        y = sub(y, mul(sub(s, mul(x, c)), c));
    }
    return y;
}

/// Four-quadrant arc tangent (IEEE-style quadrant handling; a handful of
/// sign branches at the API level, like every atan2).
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> atan2(const MultiFloat<T, N>& y, const MultiFloat<T, N>& x) {
    using MF = MultiFloat<T, N>;
    if (x.is_zero() && y.is_zero()) return MF(T(0));
    if (x.is_zero()) {
        return y.limb[0] > T(0) ? detail::const_half_pi<T, N>()
                                : -detail::const_half_pi<T, N>();
    }
    const MF base = atan(div(y, x));
    if (x.limb[0] > T(0)) return base;
    return y.limb[0] >= T(0) ? add(base, detail::const_pi<T, N>())
                             : sub(base, detail::const_pi<T, N>());
}

/// asin for |x| <= 1: atan(x / sqrt(1 - x^2)) with endpoint handling.
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> asin(const MultiFloat<T, N>& x) {
    using MF = MultiFloat<T, N>;
    const MF one(T(1));
    const MF d = sub(one, mul(x, x));
    if (d.limb[0] <= T(0)) {
        // |x| == 1 (or slightly beyond): +-pi/2 / NaN like the base type.
        if (x == one) return detail::const_half_pi<T, N>();
        if (x == -one) return -detail::const_half_pi<T, N>();
        return MF(static_cast<T>(std::asin(static_cast<double>(x.to_float()))));
    }
    return atan(div(x, sqrt(d)));
}

template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> acos(const MultiFloat<T, N>& x) {
    return sub(detail::const_half_pi<T, N>(), asin(x));
}

/// Base-2 and base-10 variants.
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> exp2(const MultiFloat<T, N>& x) {
    return exp(mul(x, detail::const_ln2<T, N>()));
}

template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> log2(const MultiFloat<T, N>& x) {
    return div(log(x), detail::const_ln2<T, N>());
}

template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> log10(const MultiFloat<T, N>& x) {
    static const MultiFloat<T, N> ln10 = from_string<T, N>(
        "2.302585092994045684017991454684364207601101488628772976033327900967572"
        "6096773524802359972050895983");
    return div(log(x), ln10);
}

}  // namespace mf
