#pragma once
// The one-include public surface of this library. User code needs exactly
//
//   #include <mf/mf.hpp>
//
// and gets, in dependency order:
//
//   <mf/multifloats.hpp>       MultiFloat<T, N> arithmetic, comparisons,
//                              elementary functions, decimal I/O, complex,
//                              reductions, IEEE restoration layer
//   <blas/blas.hpp>            typed views + extended-precision BLAS
//                              (AXPY/DOT/GEMV/GEMM), planar layout, and the
//                              packed cache-blocked GEMM engine
//   <simd/simd.hpp>            Pack<T, W> backends, runtime dispatch, the
//                              width-templated FPAN kernels, tiled GEMM
//   <telemetry/telemetry.hpp>  counters/histograms/trace spans -- optional
//                              in the sense that every MF_TELEM_* macro
//                              compiles to nothing unless the build defines
//                              MF_TELEMETRY (CMake option of the same name)
//
// Finer-grained includes (<mf/multifloats.hpp> alone, <blas/planar.hpp>,
// ...) remain stable for code that wants a narrower dependency; README
// "Library layout" documents the surface.

#include "../blas/blas.hpp"
#include "../simd/simd.hpp"
#include "../telemetry/telemetry.hpp"
#include "multifloats.hpp"
