#pragma once
// Umbrella header for the MultiFloats library: branch-free extended-precision
// floating-point arithmetic on nonoverlapping expansions.
//
//   #include <mf/multifloats.hpp>
//
//   mf::Float64x4 x = ...;            // ~octuple precision on double hardware
//   mf::Float64x4 y = mf::sqrt(x * x + mf::Float64x4(1.0));
//
// See README.md for a tour and DESIGN.md for the paper reproduction map.

#include "add.hpp"
#include "compare.hpp"
#include "complex.hpp"
#include "convert.hpp"
#include "div_sqrt.hpp"
#include "eft.hpp"
#include "elementary.hpp"
#include "ieee.hpp"
#include "limits.hpp"
#include "math.hpp"
#include "mul.hpp"
#include "poly.hpp"
#include "multifloat.hpp"
#include "random.hpp"
#include "reduce.hpp"
#include "renorm.hpp"
