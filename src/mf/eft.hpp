#pragma once
// Error-free transformations (EFTs): the primitive building blocks of all
// floating-point accumulation networks (FPANs).
//
// An EFT computes both a correctly rounded floating-point operation and the
// *exact* rounding error incurred by that operation, using only rounded
// machine-precision arithmetic. See Algorithms 1-3 of Zhang & Aiken (SC'25),
// and the original sources: Moller (1965) / Knuth (1969) for TwoSum, Dekker
// (1971) for FastTwoSum and TwoProd.
//
// All functions here are branch-free straight-line code and are valid for any
// IEEE binary format (float, double, ...) under round-to-nearest-even,
// provided no intermediate overflows and inputs are finite.

#include <cmath>
#include <concepts>
#include <utility>

/// The FPAN kernels must inline completely: a leftover call defeats the loop
/// vectorizer in the data-parallel BLAS kernels (the whole point of being
/// branch-free). GCC stops inlining around the 4-term multiplier's size on
/// its own, so the hot path is annotated explicitly.
#define MF_ALWAYS_INLINE inline __attribute__((always_inline))

namespace mf {

/// Customization point: which types may flow along FPAN wires. Scalar IEEE
/// types qualify natively; other value types that behave like an IEEE scalar
/// under +, -, * and fma (notably mf::simd::Pack<T, W>, which applies the
/// identical correctly rounded operation to W lanes at once) opt in by
/// specializing this variable template. Every gate below is pure +/-/*/fma
/// straight-line code, so a lane-wise IEEE type runs the exact same network.
template <typename T>
inline constexpr bool is_fpan_value_v = std::floating_point<T>;

/// Constrains the value types our networks operate on: scalars natively,
/// SIMD packs (and e.g. a software float modeling IEEE RNE) by opt-in via
/// is_fpan_value_v.
template <typename T>
concept FloatingPoint = is_fpan_value_v<T>;

/// Result pair of an error-free addition: `sum` is the correctly rounded
/// sum and `err` the exact rounding error, so that sum + err == a + b
/// exactly (as real numbers).
template <FloatingPoint T>
struct SumErr {
    T sum;
    T err;
};

/// Result pair of an error-free multiplication: `prod` is the correctly
/// rounded product and `err` the exact rounding error, so that
/// prod + err == a * b exactly.
template <FloatingPoint T>
struct ProdErr {
    T prod;
    T err;
};

/// TwoSum (Algorithm 1): 6-flop error-free addition, valid for all finite
/// inputs regardless of their relative magnitudes.
///
/// Returns (s, e) with s = RN(a + b) and e = (a + b) - s exactly.
template <FloatingPoint T>
[[nodiscard]] MF_ALWAYS_INLINE constexpr SumErr<T> two_sum(T a, T b) noexcept {
    const T s = a + b;
    const T a_eff = s - b;   // the portion of s contributed by a
    const T b_eff = s - a_eff;
    const T da = a - a_eff;  // exact: what a lost
    const T db = b - b_eff;  // exact: what b lost
    return {s, da + db};
}

/// FastTwoSum (Algorithm 3): 3-flop error-free addition, valid only when
/// a == +-0.0, b == +-0.0, or exponent(a) >= exponent(b). In particular it is
/// safe whenever |a| >= |b|.
///
/// Returns (s, e) with s = RN(a + b) and e = (a + b) - s exactly.
template <FloatingPoint T>
[[nodiscard]] MF_ALWAYS_INLINE constexpr SumErr<T> fast_two_sum(T a, T b) noexcept {
    const T s = a + b;
    const T b_eff = s - a;   // exact under the precondition
    return {s, b - b_eff};
}

/// TwoProd (Algorithm 2): FMA-based error-free multiplication.
///
/// Returns (p, e) with p = RN(a * b) and e = a*b - p exactly (barring
/// intermediate under/overflow).
template <FloatingPoint T>
[[nodiscard]] MF_ALWAYS_INLINE ProdErr<T> two_prod(T a, T b) noexcept {
    using std::fma;  // unqualified: ADL picks up pack-level fma for SIMD types
    const T p = a * b;
    return {p, fma(a, b, -p)};
}

/// ThreeSum: error-free compression of three addends into a leading part and
/// two error terms. Used as a convenience in multiplication networks.
/// Returns (s0, s1, s2) with s0 + s1 + s2 == a + b + c exactly and
/// s0 = RN(RN(a+b)+c).
template <FloatingPoint T>
struct TripleErr {
    T s0, s1, s2;
};

template <FloatingPoint T>
[[nodiscard]] constexpr TripleErr<T> three_sum(T a, T b, T c) noexcept {
    const auto [t, e1] = two_sum(a, b);
    const auto [s, e2] = two_sum(t, c);
    return {s, e1, e2};
}

}  // namespace mf
