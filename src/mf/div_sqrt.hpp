#pragma once
// Division and square root via division-free Newton-Raphson iteration
// (paper §4.3).
//
// The reciprocal iterate  r <- r + r*(1 - a*r)  and the inverse-square-root
// iterate  r <- r + (r/2)*(1 - a*r^2)  double the number of correct bits per
// step (multiplication by 1/2 is exact). Starting from the machine-precision
// estimate, ceil(log2(N)) + 1 full-width iterations saturate an N-term
// expansion. A final Karp-Markstein-style correction step fuses the last
// refinement with the multiplication by the dividend / radicand, fixing the
// trailing bits at the cost of one extra multiply-add.
//
// The iteration counts below were validated against the exact BigFloat
// oracle (see tests/divsqrt_test.cpp); progressive-width variants are
// benchmarked in bench/ablation_divsqrt.cpp.

#include <cmath>

#include "../telemetry/events.hpp"
#include "add.hpp"
#include "mul.hpp"
#include "multifloat.hpp"

namespace mf {
namespace detail {

/// Numerical-health events: the Newton paths silently manufacture Inf/NaN
/// (pole division, overflowing quotients) and subnormal leading limbs
/// (gradual underflow), both of which void the paper's error bounds (§4.4).
/// This branch-free tally (adds 0 or 1, no data-dependent branch) is how a
/// live process surfaces "how often do my inputs leave the contractual
/// domain" without a debugger attached. IsDiv picks the op label at compile
/// time, so the name string exists only in each site's one-time id resolve.
template <bool IsDiv, FloatingPoint T, int N>
MF_ALWAYS_INLINE void note_result_health(const MultiFloat<T, N>& z) noexcept {
#if MF_TELEMETRY_ENABLED
    MF_TELEM_COUNT_N(IsDiv ? "mf_divsqrt_nonfinite_total{op=\"div\"}"
                           : "mf_divsqrt_nonfinite_total{op=\"sqrt\"}",
                     !std::isfinite(z.limb[0]));
    MF_TELEM_COUNT_N(IsDiv ? "mf_divsqrt_subnormal_total{op=\"div\"}"
                           : "mf_divsqrt_subnormal_total{op=\"sqrt\"}",
                     std::fpclassify(z.limb[0]) == FP_SUBNORMAL);
#else
    (void)z;
#endif
}

/// Newton iterations needed to refine a machine-precision seed to N terms.
template <int N>
inline constexpr int newton_iters = (N <= 2) ? 2 : 3;

}  // namespace detail

/// Reciprocal 1/a of an expansion, full target precision.
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> recip(const MultiFloat<T, N>& a) noexcept {
    if constexpr (N == 1) {
        return MultiFloat<T, 1>(T(1) / a.limb[0]);
    } else {
        const MultiFloat<T, N> one(T(1));
        MultiFloat<T, N> r(T(1) / a.limb[0]);
        for (int k = 0; k < detail::newton_iters<N>; ++k) {
            r = r + r * (one - a * r);
        }
        return r;
    }
}

/// Progressive-width reciprocal (the §4.3 optimization): the k-th Newton
/// iterate only carries ~2^k * p correct bits, so early iterations are run
/// at half the expansion width, then widened for one full-width iteration.
/// Same accuracy contract as recip(); benchmarked in bench/ablation_divsqrt.
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> recip_progressive(const MultiFloat<T, N>& a) noexcept {
    if constexpr (N <= 2) {
        return recip(a);
    } else {
        constexpr int H = (N + 1) / 2;
        const MultiFloat<T, H> half = recip_progressive(a.template resize<H>());
        const MultiFloat<T, N> one(T(1));
        MultiFloat<T, N> r = half.template resize<N>();
        r = r + r * (one - a * r);
        return r;
    }
}

/// Quotient b/a using the progressive-width reciprocal.
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> div_progressive(const MultiFloat<T, N>& b,
                                               const MultiFloat<T, N>& a) noexcept {
    if constexpr (N == 1) {
        return MultiFloat<T, 1>(b.limb[0] / a.limb[0]);
    } else {
        const MultiFloat<T, N> r = recip_progressive(a);
        MultiFloat<T, N> q = b * r;
        q = q + r * (b - a * q);
        return q;
    }
}

/// Quotient b/a with a Karp-Markstein correction step.
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> div(const MultiFloat<T, N>& b,
                                   const MultiFloat<T, N>& a) noexcept {
    if constexpr (N == 1) {
        const MultiFloat<T, 1> q(b.limb[0] / a.limb[0]);
        detail::note_result_health<true>(q);
        return q;
    } else {
        const MultiFloat<T, N> r = recip(a);
        MultiFloat<T, N> q = b * r;
        q = q + r * (b - a * q);  // correction: fixes the trailing bits
        detail::note_result_health<true>(q);
        return q;
    }
}

/// Inverse square root 1/sqrt(a) for a > 0.
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> rsqrt(const MultiFloat<T, N>& a) noexcept {
    if constexpr (N == 1) {
        return MultiFloat<T, 1>(T(1) / std::sqrt(a.limb[0]));
    } else {
        const MultiFloat<T, N> one(T(1));
        MultiFloat<T, N> r(T(1) / std::sqrt(a.limb[0]));
        for (int k = 0; k < detail::newton_iters<N>; ++k) {
            const MultiFloat<T, N> d = one - a * (r * r);
            r = r + ldexp(r * d, -1);
        }
        return r;
    }
}

/// Square root for a >= 0 (a == 0 returns 0; negative a yields NaN limbs,
/// matching the base type's sqrt semantics).
template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> sqrt(const MultiFloat<T, N>& a) noexcept {
    if constexpr (N == 1) {
        const MultiFloat<T, 1> s(std::sqrt(a.limb[0]));
        detail::note_result_health<false>(s);
        return s;
    } else {
        if (a.is_zero()) return MultiFloat<T, N>(std::sqrt(a.limb[0]));
        const MultiFloat<T, N> r = rsqrt(a);
        MultiFloat<T, N> s = a * r;
        // Karp-Markstein correction: s <- s + (r/2) * (a - s^2).
        s = s + ldexp(r, -1) * (a - s * s);
        detail::note_result_health<false>(s);
        return s;
    }
}

template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> operator/(const MultiFloat<T, N>& b,
                                         const MultiFloat<T, N>& a) noexcept {
    return div(b, a);
}

template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> operator/(const MultiFloat<T, N>& b, T a) noexcept {
    return div(b, MultiFloat<T, N>(a));
}

template <FloatingPoint T, int N>
[[nodiscard]] MultiFloat<T, N> operator/(T b, const MultiFloat<T, N>& a) noexcept {
    return div(MultiFloat<T, N>(b), a);
}

template <FloatingPoint T, int N>
MultiFloat<T, N>& operator/=(MultiFloat<T, N>& x, const MultiFloat<T, N>& y) noexcept {
    x = div(x, y);
    return x;
}

template <FloatingPoint T, int N>
MultiFloat<T, N>& operator/=(MultiFloat<T, N>& x, T y) noexcept {
    x = x / y;
    return x;
}

}  // namespace mf
