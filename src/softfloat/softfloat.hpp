#pragma once
// SoftFloat: a software model of binary floating-point arithmetic with a
// runtime-parameterized precision p and round-to-nearest-even, stored as
// (sign, mantissa, exponent) machine integers.
//
// Purpose: the paper's FPANs are claimed correct "for all values of p". Our
// empirical verifier (fpan/checker.*) exploits this by exhaustively
// enumerating ALL p-bit inputs for small p (3-6 bits), which exercises every
// rounding-error pattern a network can produce -- the same case explosion the
// paper's SMT encoding reasons about symbolically.
//
// The model is exact: intermediate alignment uses 128-bit integers with
// sticky-bit collapse for huge exponent gaps, so every operation is a true
// RNE rounding of the exact real result. Cross-validated against BigFloat
// and (at p = 53) against hardware doubles in tests/softfloat_test.cpp.

#include <cstdint>
#include <compare>

namespace mf::soft {

class SoftFloat {
public:
    /// Zero at precision p.
    explicit SoftFloat(int precision = 53) noexcept : prec_(precision) {}

    /// Construct a p-bit value: sign * mant * 2^exp, |mant| < 2^p.
    /// The value is normalized but NOT re-rounded (it must already fit).
    static SoftFloat make(int precision, int sign, std::uint64_t mant,
                          std::int64_t exp) noexcept;

    /// Round an arbitrary double to p bits (RNE) -- entry point for tests.
    static SoftFloat from_double(double x, int precision) noexcept;

    [[nodiscard]] double to_double() const noexcept;

    [[nodiscard]] int precision() const noexcept { return prec_; }
    [[nodiscard]] bool is_zero() const noexcept { return sign_ == 0; }
    [[nodiscard]] int sign() const noexcept { return sign_; }
    /// Mantissa (normalized: bit p-1 set) and exponent of the lsb.
    [[nodiscard]] std::uint64_t mantissa() const noexcept { return mant_; }
    [[nodiscard]] std::int64_t exponent() const noexcept { return exp_; }
    /// Exponent of the leading bit (value in [2^e, 2^(e+1))).
    [[nodiscard]] std::int64_t ilogb() const noexcept;

    /// ulp = 2^(ilogb - p + 1) as a SoftFloat.
    [[nodiscard]] SoftFloat ulp() const noexcept;

    friend SoftFloat operator+(const SoftFloat& a, const SoftFloat& b) noexcept;
    friend SoftFloat operator-(const SoftFloat& a, const SoftFloat& b) noexcept;
    friend SoftFloat operator*(const SoftFloat& a, const SoftFloat& b) noexcept;
    SoftFloat operator-() const noexcept;

    /// Exact comparison of represented values.
    friend int cmp(const SoftFloat& a, const SoftFloat& b) noexcept;
    friend bool operator==(const SoftFloat& a, const SoftFloat& b) noexcept {
        return cmp(a, b) == 0;
    }
    friend bool operator<(const SoftFloat& a, const SoftFloat& b) noexcept {
        return cmp(a, b) < 0;
    }
    friend bool operator<=(const SoftFloat& a, const SoftFloat& b) noexcept {
        return cmp(a, b) <= 0;
    }

    /// True if the addition a + b was exact (no rounding error) -- cheap
    /// diagnostic used by the checker.
    static bool add_is_exact(const SoftFloat& a, const SoftFloat& b) noexcept;

private:
    /// Round sign * mag * 2^exp (mag up to 128 bits, exact) to p bits RNE.
    static SoftFloat round_from(int precision, int sign, unsigned __int128 mag,
                                std::int64_t exp, bool sticky) noexcept;

    int prec_ = 53;
    int sign_ = 0;              // -1, 0, +1
    std::uint64_t mant_ = 0;    // normalized: top bit at position prec_-1
    std::int64_t exp_ = 0;      // value = sign * mant * 2^exp
};

/// Error-free product: returns (p, e) with p = RNE(a*b) and e the exact
/// rounding error (always representable in p bits). The software analogue of
/// the FMA-based TwoProd used to feed multiplication FPANs.
struct SoftProd {
    SoftFloat prod;
    SoftFloat err;
};
[[nodiscard]] SoftProd two_prod(const SoftFloat& a, const SoftFloat& b) noexcept;

/// Enumeration support: visit every nonzero p-bit value with leading-bit
/// exponent in [emin, emax], plus zero. Calls f(SoftFloat).
template <typename F>
void for_each_value(int precision, std::int64_t emin, std::int64_t emax, F&& f) {
    f(SoftFloat(precision));  // zero
    const std::uint64_t lo = std::uint64_t(1) << (precision - 1);
    const std::uint64_t hi = std::uint64_t(1) << precision;
    for (std::int64_t e = emin; e <= emax; ++e) {
        for (std::uint64_t m = lo; m < hi; ++m) {
            // exponent of leading bit = e  =>  lsb exponent = e - p + 1
            f(SoftFloat::make(precision, +1, m, e - precision + 1));
            f(SoftFloat::make(precision, -1, m, e - precision + 1));
        }
    }
}

}  // namespace mf::soft
