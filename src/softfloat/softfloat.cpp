#include "softfloat.hpp"

#include <bit>
#include <cassert>
#include <cmath>

namespace mf::soft {

namespace {

int bit_length_u128(unsigned __int128 v) noexcept {
    const auto hi = static_cast<std::uint64_t>(v >> 64);
    if (hi != 0) return 128 - std::countl_zero(hi);
    const auto lo = static_cast<std::uint64_t>(v);
    if (lo != 0) return 64 - std::countl_zero(lo);
    return 0;
}

}  // namespace

SoftFloat SoftFloat::make(int precision, int sign, std::uint64_t mant,
                          std::int64_t exp) noexcept {
    SoftFloat r(precision);
    if (mant == 0 || sign == 0) return r;
    // Normalize: shift out trailing zeros (canonical lsb-anchored form is not
    // required, but a set top bit at prec-1 is; callers pass mant < 2^prec).
    assert((mant >> precision) == 0);
    r.sign_ = sign < 0 ? -1 : 1;
    r.mant_ = mant;
    r.exp_ = exp;
    // Re-anchor so that the top bit sits at position prec-1.
    const int bl = 64 - std::countl_zero(mant);
    const int shift = precision - bl;
    r.mant_ <<= shift;
    r.exp_ -= shift;
    return r;
}

SoftFloat SoftFloat::from_double(double x, int precision) noexcept {
    SoftFloat r(precision);
    if (x == 0.0 || !std::isfinite(x)) return r;
    int sign = 1;
    if (x < 0) {
        sign = -1;
        x = -x;
    }
    int e = 0;
    const double frac = std::frexp(x, &e);
    const auto mant = static_cast<unsigned __int128>(std::ldexp(frac, 53));
    return round_from(precision, sign, mant, static_cast<std::int64_t>(e) - 53,
                      false);
}

double SoftFloat::to_double() const noexcept {
    if (sign_ == 0) return 0.0;
    const double m = static_cast<double>(mant_);  // exact: prec_ <= 53 in use
    return std::ldexp(sign_ < 0 ? -m : m, static_cast<int>(exp_));
}

std::int64_t SoftFloat::ilogb() const noexcept {
    assert(sign_ != 0);
    return exp_ + (64 - std::countl_zero(mant_)) - 1;
}

SoftFloat SoftFloat::ulp() const noexcept {
    assert(sign_ != 0);
    return make(prec_, +1, 1, ilogb() - prec_ + 1);
}

SoftFloat SoftFloat::round_from(int precision, int sign, unsigned __int128 mag,
                                std::int64_t exp, bool sticky) noexcept {
    SoftFloat r(precision);
    if (mag == 0) return r;  // (sticky-only values cannot occur here)
    const int bl = bit_length_u128(mag);
    const int drop = bl - precision;
    if (drop <= 0) {
        return make(precision, sign, static_cast<std::uint64_t>(mag), exp);
    }
    const unsigned __int128 one = 1;
    unsigned __int128 kept = mag >> drop;
    const bool guard = (mag >> (drop - 1)) & 1;
    const bool below = sticky || (mag & ((one << (drop - 1)) - 1)) != 0;
    const bool lsb = kept & 1;
    if (guard && (below || lsb)) {
        ++kept;
        if (bit_length_u128(kept) > precision) {
            kept >>= 1;
            exp += 1;
        }
    }
    return make(precision, sign, static_cast<std::uint64_t>(kept), exp + drop);
}

SoftFloat operator+(const SoftFloat& a, const SoftFloat& b) noexcept {
    assert(a.prec_ == b.prec_ || a.is_zero() || b.is_zero());
    const int prec = a.is_zero() ? b.prec_ : a.prec_;
    if (a.is_zero()) return b;
    if (b.is_zero()) return a;
    // Order so that |big| >= |small| by leading-bit exponent.
    const SoftFloat* big = &a;
    const SoftFloat* small = &b;
    if (b.ilogb() > a.ilogb() ||
        (b.ilogb() == a.ilogb() && b.mant_ > a.mant_)) {
        big = &b;
        small = &a;
    }
    const std::int64_t shift = big->exp_ - small->exp_;
    // If the gap exceeds p + 1 bits, the small operand is below a quarter
    // ulp of the big one and cannot change an RNE result.
    if (shift >= prec + 2) return *big;
    // Otherwise the aligned sum fits in 2p + 2 <= 128 bits: exact.
    const unsigned __int128 ms = small->mant_;
    const std::int64_t exp = small->exp_;
    const unsigned __int128 mb = static_cast<unsigned __int128>(big->mant_) << shift;
    if (a.sign_ == b.sign_) {
        return SoftFloat::round_from(prec, big->sign_, mb + ms, exp, false);
    }
    if (mb == ms) return SoftFloat(prec);
    return SoftFloat::round_from(prec, big->sign_, mb - ms, exp, false);
}

SoftFloat SoftFloat::operator-() const noexcept {
    SoftFloat r = *this;
    r.sign_ = -r.sign_;
    return r;
}

SoftFloat operator-(const SoftFloat& a, const SoftFloat& b) noexcept {
    return a + (-b);
}

SoftFloat operator*(const SoftFloat& a, const SoftFloat& b) noexcept {
    assert(a.prec_ == b.prec_ || a.is_zero() || b.is_zero());
    const int prec = a.is_zero() ? b.prec_ : a.prec_;
    if (a.is_zero() || b.is_zero()) return SoftFloat(prec);
    const unsigned __int128 m =
        static_cast<unsigned __int128>(a.mant_) * b.mant_;
    return SoftFloat::round_from(prec, a.sign_ * b.sign_, m, a.exp_ + b.exp_,
                                 false);
}

int cmp(const SoftFloat& a, const SoftFloat& b) noexcept {
    const SoftFloat d = a - b;  // rounding never changes the sign of a diff
    return d.sign_;
}

SoftProd two_prod(const SoftFloat& a, const SoftFloat& b) noexcept {
    const SoftFloat p = a * b;
    if (a.is_zero() || b.is_zero() || p.is_zero()) {
        return {p, SoftFloat(p.precision())};
    }
    // Exact product mantissa (<= 2p bits) minus the rounded product, both
    // expressed at the exponent of the exact product's lsb.
    const auto exact =
        static_cast<unsigned __int128>(a.mantissa()) * b.mantissa();
    const std::int64_t exact_exp = a.exponent() + b.exponent();
    const std::int64_t shift = p.exponent() - exact_exp;  // >= 0
    const unsigned __int128 rounded = static_cast<unsigned __int128>(p.mantissa())
                                      << shift;
    int sign = a.sign() * b.sign();
    unsigned __int128 diff;
    if (exact >= rounded) {
        diff = exact - rounded;
    } else {
        diff = rounded - exact;
        sign = -sign;
    }
    if (diff == 0) return {p, SoftFloat(p.precision())};
    // The error fits in p bits by construction.
    return {p, SoftFloat::make(p.precision(), sign,
                               static_cast<std::uint64_t>(diff), exact_exp)};
}

bool SoftFloat::add_is_exact(const SoftFloat& a, const SoftFloat& b) noexcept {
    const SoftFloat s = a + b;
    const SoftFloat r = (s - a) - b;
    return r.is_zero();
}

}  // namespace mf::soft
