// The empirical verification campaigns for all six paper networks -- the
// reproduction of the paper's §3 correctness story -- plus regression cases
// for defects the exhaustive checker has actually caught.

#include <gtest/gtest.h>

#include "fpan/checker.hpp"
#include "fpan/library.hpp"

namespace {

using namespace mf::fpan;

class NetworkCampaign : public ::testing::TestWithParam<int> {};

TEST_P(NetworkCampaign, AddRandomizedPasses) {
    const int n = GetParam();
    const CheckResult r =
        check_add_random(make_add_network(n), n, 30000, 101, paper_add_bound_bits(n, 53));
    EXPECT_TRUE(r.pass) << r.note << " worst=2^" << r.worst_err_log2
                        << " ovl=" << r.worst_overlap_bits;
    EXPECT_EQ(r.cases, 30000);
    EXPECT_EQ(r.worst_overlap_bits, 0);
}

TEST_P(NetworkCampaign, MulRandomizedPasses) {
    const int n = GetParam();
    const CheckResult r =
        check_mul_random(make_mul_network(n), n, 30000, 202, paper_mul_bound_bits(n, 53));
    EXPECT_TRUE(r.pass) << r.note << " worst=2^" << r.worst_err_log2;
    EXPECT_EQ(r.worst_overlap_bits, 0);
}

INSTANTIATE_TEST_SUITE_P(AllSizes, NetworkCampaign, ::testing::Values(2, 3, 4));

TEST(NetworkExhaustive, Add2AtP3) {
    // Every pair of nonoverlapping 2-term p=3 expansions in the window:
    // the full combinatorial space of rounding patterns at this precision.
    const CheckResult r = check_add_exhaustive(make_add_network(2), 2, 3, 3, 5);
    EXPECT_TRUE(r.pass) << r.note;
    EXPECT_GT(r.cases, 500000);
    EXPECT_EQ(r.worst_overlap_bits, 0);
}

TEST(NetworkExhaustive, Add2AtP4) {
    const CheckResult r = check_add_exhaustive(make_add_network(2), 2, 4, 2, 4);
    EXPECT_TRUE(r.pass) << r.note;
    EXPECT_GT(r.cases, 100000);
}

TEST(NetworkExhaustive, Mul2AtP3) {
    const CheckResult r = check_mul_exhaustive(make_mul_network(2), 2, 3, 3, 5);
    EXPECT_TRUE(r.pass) << r.note;
    EXPECT_GT(r.cases, 100000);
}

TEST(NetworkExhaustive, Add3ReducedWindow) {
    const CheckResult r = check_add_exhaustive(make_add_network(3), 3, 3, 1, 1);
    EXPECT_TRUE(r.pass) << r.note;
    EXPECT_GT(r.cases, 1000000);
}

TEST(NetworkRegression, SweepWithoutRenormOverlapsAtSmallP) {
    // Found by the exhaustive checker during development: dropping the final
    // FastTwoSum renormalization pass leaves a 1-bit nonoverlap violation for
    // n = 3 that 400k randomized double-precision trials did NOT catch. This
    // is the paper's core argument for exhaustive/formal verification.
    Network net;
    net.name = "add3_no_renorm";
    net.num_wires = 6;
    for (int i = 0; i < 3; ++i) net.gates.push_back({GateKind::TwoSum, 2 * i, 2 * i + 1});
    const int perm[6] = {0, 2, 1, 4, 3, 5};
    for (int pass = 0; pass < 3; ++pass) {
        for (int i = 4; i >= pass; --i) {
            net.gates.push_back({GateKind::TwoSum, perm[i], perm[i + 1]});
        }
    }
    net.outputs = {0, 2, 1};
    ASSERT_TRUE(net.well_formed());
    const CheckResult r = check_add_exhaustive(net, 3, 3, 2, 2);
    EXPECT_FALSE(r.pass);
    EXPECT_GE(r.worst_overlap_bits, 1);
}

TEST(NetworkRegression, NaiveTermwiseSumFails) {
    // Eq. 9's strawman degrades to machine precision; the checker must
    // reject it quickly.
    for (int n : {2, 3, 4}) {
        const CheckResult r = check_add_random(make_naive_add_network(n), n, 5000, 7,
                                               paper_add_bound_bits(n, 53));
        EXPECT_FALSE(r.pass) << "n=" << n;
    }
}

TEST(NetworkRegression, TruncatedGoodNetworkFails) {
    // Removing a gate from the verified 2-term adder must break it --
    // consistent with the paper's claim that size 6 is optimal. Dropping the
    // gate that folds v1 into the low output loses ~half an ulp of the
    // leading limb.
    Network net = make_add_network(2);
    net.gates.erase(net.gates.begin() + 4);  // A(3,2): w = e1 + v1
    const CheckResult r = check_add_random(net, 2, 20000, 9, paper_add_bound_bits(2, 53));
    EXPECT_FALSE(r.pass);
}

TEST(CheckerApi, BoundHelpers) {
    EXPECT_EQ(paper_add_bound_bits(2, 53), 105);
    EXPECT_EQ(paper_add_bound_bits(3, 53), 156);
    EXPECT_EQ(paper_add_bound_bits(4, 53), 208);
    EXPECT_EQ(paper_mul_bound_bits(2, 53), 103);
    EXPECT_EQ(paper_mul_bound_bits(3, 53), 156);
    EXPECT_EQ(paper_mul_bound_bits(4, 53), 208);
}

}  // namespace
