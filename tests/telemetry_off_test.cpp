// Compiled-out telemetry: this translation unit defines MF_TELEMETRY_DISABLE
// (see tests/CMakeLists.txt), the per-TU escape hatch that forces
// MF_TELEMETRY_ENABLED to 0 even inside an MF_TELEMETRY=ON build. It proves
// the zero-overhead-when-off contract:
//
//   1. every MF_TELEM_* macro expands to ((void)0) -- demonstrated the
//      strongest way possible, by running instrumented code paths inside
//      constant evaluation, where any residual registry call, static local
//      or clock read would be a compile error;
//   2. arithmetic through the instrumented kernels registers NOTHING in the
//      process registry (which itself stays linkable: exporters and tools
//      use the registry API unconditionally).

#ifndef MF_TELEMETRY_DISABLE
#error "this test must be compiled with MF_TELEMETRY_DISABLE (see tests/CMakeLists.txt)"
#endif

#include <gtest/gtest.h>

#include "blas/planar.hpp"
#include "mf/multifloats.hpp"
#include "simd/tiling.hpp"
#include "telemetry/telemetry.hpp"

static_assert(MF_TELEMETRY_ENABLED == 0,
              "MF_TELEMETRY_DISABLE must force the macros off");

namespace {

// Instrumented macros inside a constexpr function: only legal because they
// vanish. With telemetry ON this function would not compile (static locals
// and registry calls are not constant-evaluable).
constexpr int probe() {
    MF_TELEM_COUNT("off_probe_total");
    MF_TELEM_COUNT_N("off_probe_n_total", 3);
    MF_TELEM_HIST("off_probe_hist", 17);
    MF_TELEM_SPAN("off_probe_span");
    MF_TELEM_SPAN_TIMED("off_probe_span_timed", "off_probe_timed_hist");
    return 7;
}
static_assert(probe() == 7, "macros must vanish inside constant evaluation");

// The instrumented kernels themselves must stay constexpr-usable.
constexpr double constexpr_renorm_result() {
    using MF2 = mf::MultiFloat<double, 2>;
    const MF2 s = mf::add(MF2(1.0), MF2(0x1p-70));
    return s.limb[0];
}
static_assert(constexpr_renorm_result() == 1.0);

TEST(TelemetryOff, InstrumentedArithmeticRegistersNothing) {
    using namespace mf::telemetry;
    Registry::instance().reset();
    Registry::instance().set_trace_enabled(true);

    // Drive every instrumented layer: renorm networks, IEEE fixups, Newton
    // health events, SIMD dispatch + kernels + the tiled GEMM spans.
    using MF4 = mf::MultiFloat<double, 4>;
    const MF4 x(1.5), y(0x1p-80);
    (void)(x + y);
    (void)mf::add_ieee(x, y);
    (void)mf::div_ieee(x, MF4(0.0));
    (void)mf::sqrt(MF4(2.0));
    constexpr std::size_t n = 4;
    mf::planar::Vector<double, 4> a(n * n), b(n * n), c(n * n);
    for (std::size_t i = 0; i < n * n; ++i) {
        a.set(i, MF4(1.0 + double(i)));
        b.set(i, MF4(2.0));
    }
    mf::simd::gemm_tiled(mf::planar::matrix_view(a, n, n),
                         mf::planar::matrix_view(b, n, n),
                         mf::planar::matrix_view(c, n, n));

    Registry::instance().set_trace_enabled(false);
    const Snapshot snap = Registry::instance().snapshot();
    EXPECT_TRUE(snap.counters.empty());
    EXPECT_TRUE(snap.histograms.empty());
    EXPECT_TRUE(snap.spans.empty());
}

TEST(TelemetryOff, RegistryApiStillWorks) {
    // The registry is mode-independent: tools that link it must keep working
    // in OFF builds (they just see whatever was explicitly registered).
    using namespace mf::telemetry;
    Registry::instance().reset();
    const CounterId id = Registry::instance().counter("off_manual_total");
    Registry::instance().add(id, 4);
    const Snapshot snap = Registry::instance().snapshot();
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].name, "off_manual_total");
    EXPECT_EQ(snap.counters[0].value, 4u);
}

}  // namespace
