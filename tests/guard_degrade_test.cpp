// mf::guard graceful degradation (DESIGN.md §12).
//
// Drives the guard::inject fault hooks through the real execution paths and
// asserts the degradation contracts: a failed worker spawn is absorbed by
// parallel_blocks_slots with every block still executed exactly once, a
// failed packing allocation routes gemm_packed onto the planar fallback with
// a bit-identical result, and the full check::run_fault_matrix -- the same
// matrix `mf_fuzz --inject` runs in CI -- comes back clean. Faults here are
// injected, never real: the suite must pass on any machine.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <new>
#include <random>
#include <vector>

#include "blas/engine/packing.hpp"
#include "blas/engine/threading.hpp"
#include "check/robustness.hpp"
#include "guard/guard.hpp"

namespace {

using namespace mf;

class GuardDegradeTest : public ::testing::Test {
protected:
    void TearDown() override { guard::inject::reset(); }
};

TEST_F(GuardDegradeTest, SpawnFaultStillVisitsEveryBlockExactlyOnce) {
    constexpr std::size_t nblocks = 13;
    const unsigned planned = blas::engine::planned_workers(
        nblocks, blas::engine::ThreadMode::pool, /*max_threads=*/4);
    // Fail the 0th, 1st, and last spawn in turn; also run fault-free.
    std::vector<long> faults{0, 1, static_cast<long>(planned) - 1, -1};
    for (long nth : faults) {
        if (nth >= 0) guard::inject::arm_spawn(nth);
        std::vector<std::atomic<int>> visits(nblocks);
        std::atomic<unsigned> max_slot{0};
        blas::engine::parallel_blocks_slots(
            nblocks,
            [&](std::size_t blk, unsigned slot) {
                visits[blk].fetch_add(1, std::memory_order_relaxed);
                unsigned cur = max_slot.load(std::memory_order_relaxed);
                while (slot > cur &&
                       !max_slot.compare_exchange_weak(cur, slot)) {
                }
            },
            blas::engine::ThreadMode::pool, /*max_threads=*/4);
        guard::inject::reset();
        for (std::size_t b = 0; b < nblocks; ++b) {
            EXPECT_EQ(visits[b].load(), 1)
                << "block " << b << " with spawn fault at " << nth;
        }
        EXPECT_LT(max_slot.load(), planned) << "slot out of planned range";
    }
}

TEST_F(GuardDegradeTest, AlignedBufferInjectedAllocThrowsOnceThenRecovers) {
    blas::engine::AlignedBuffer<double> buf;
    guard::inject::arm_alloc(0);
    EXPECT_THROW(buf.ensure(64), std::bad_alloc);
    // The countdown disarms after firing: the retry must succeed.
    double* p = buf.ensure(64);
    ASSERT_NE(p, nullptr);
    p[0] = 1.0;
    p[63] = 2.0;
    EXPECT_EQ(p[0] + p[63], 3.0);
}

TEST_F(GuardDegradeTest, GemmAllocFaultFallsBackBitIdentically) {
    constexpr std::size_t n = 24, k = 9, m = 17;
    check::GenConfig cfg;
    std::mt19937_64 rng(42);
    planar::Vector<double, 2> a, b, c_seed;
    check::detail::fill_vectors(rng, n * k, cfg, a);
    check::detail::fill_vectors(rng, k * m, cfg, b);
    // C += A*B accumulate contract: seed C with nonzero data so a fallback
    // that double-added (packed partial + planar full) would be caught.
    check::detail::fill_vectors(rng, n * m, cfg, c_seed);

    blas::GemmConfig gcfg;
    gcfg.threads = blas::engine::ThreadMode::serial;
    gcfg.blocks = blas::BlockShape{8, 8, 16};  // several macro-panels

    planar::Vector<double, 2> c_ref = c_seed;
    blas::gemm_packed(planar::matrix_view(a, n, k), planar::matrix_view(b, k, m),
                      planar::matrix_view(c_ref, n, m), gcfg);

    // Every pre-reserve allocation index must degrade identically. Serial
    // plan reserves the B panel (0) then one A block (1).
    for (long nth = 0; nth < 2; ++nth) {
        planar::Vector<double, 2> c = c_seed;
        guard::inject::arm_alloc(nth);
        ASSERT_NO_THROW(blas::gemm_packed(planar::matrix_view(a, n, k),
                                          planar::matrix_view(b, k, m),
                                          planar::matrix_view(c, n, m), gcfg));
        guard::inject::reset();
        EXPECT_EQ(check::detail::count_mismatches(c, c_ref, n * m), 0u)
            << "alloc fault at " << nth;
    }
}

TEST_F(GuardDegradeTest, FullFaultMatrixIsClean) {
    check::RobustnessOptions opt;
    const std::vector<check::FaultCase> cases = check::run_fault_matrix(opt);
    ASSERT_FALSE(cases.empty());
    for (const check::FaultCase& fc : cases) {
        EXPECT_TRUE(fc.expectation_met) << fc.name << ": " << fc.detail;
    }
    EXPECT_TRUE(check::fault_matrix_clean(cases));
}

}  // namespace
