// Complex arithmetic over expansions: §4.2's conjugate-product guarantee and
// field axioms to working accuracy.

#include <gtest/gtest.h>

#include <random>

#include "mf/complex.hpp"
#include "support.hpp"

namespace {

using namespace mf;
using mf::big::BigFloat;
using mf::test::adversarial;
using mf::test::exact;

template <int N>
Complex<double, N> random_z(std::mt19937_64& rng) {
    return {adversarial<double, N>(rng, -8, 8), adversarial<double, N>(rng, -8, 8)};
}

TEST(Complex, ConjugateProductIsExactlyReal) {
    // The paper's §4.2 headline property: z * conj(z) has imaginary part
    // EXACTLY zero (not just small), because mul is bit-commutative.
    std::mt19937_64 rng(1);
    for (int i = 0; i < 10000; ++i) {
        const auto z = random_z<3>(rng);
        const auto p = z * conj(z);
        EXPECT_TRUE(p.im.is_zero()) << "case " << i;
        EXPECT_GE(p.re.limb[0], 0.0);
        // And it equals norm(z) exactly (same expression).
        const auto n = norm(z);
        for (int k = 0; k < 3; ++k) EXPECT_EQ(p.re.limb[k], n.limb[k]);
    }
}

TEST(Complex, MultiplicationMatchesOracle) {
    std::mt19937_64 rng(2);
    for (int i = 0; i < 3000; ++i) {
        const auto a = random_z<2>(rng);
        const auto b = random_z<2>(rng);
        const auto p = a * b;
        const BigFloat re = exact(a.re) * exact(b.re) - exact(a.im) * exact(b.im);
        const BigFloat im = exact(a.re) * exact(b.im) + exact(a.im) * exact(b.re);
        if (!re.is_zero()) MF_EXPECT_REL_BOUND(p.re, re, 2 * 53 - 2 - 24);
        if (!im.is_zero()) MF_EXPECT_REL_BOUND(p.im, im, 2 * 53 - 2 - 24);
    }
}

TEST(Complex, DivisionRoundTrips) {
    std::mt19937_64 rng(3);
    for (int i = 0; i < 1000; ++i) {
        const auto a = random_z<3>(rng);
        auto b = random_z<3>(rng);
        if (norm(b).is_zero()) b = Complex<double, 3>(1.0, 1.0);
        const auto back = (a / b) * b;
        const BigFloat wr = exact(a.re);
        const BigFloat wi = exact(a.im);
        // Compare against |a| scale (division mixes components).
        const BigFloat scale = wr.abs() + wi.abs();
        if (scale.is_zero()) continue;
        const BigFloat er = (exact(back.re) - wr).abs();
        const BigFloat ei = (exact(back.im) - wi).abs();
        EXPECT_LE(static_cast<double>((er + ei).is_zero() ? -1000 : (er + ei).ilogb()),
                  static_cast<double>(scale.ilogb()) - (3 * 53 - 3 - 30))
            << "case " << i;
    }
}

TEST(Complex, FieldIdentities) {
    std::mt19937_64 rng(4);
    const Complex<double, 2> one(1.0);
    const Complex<double, 2> i_unit(0.0, 1.0);
    // i^2 == -1 exactly.
    const auto i2 = i_unit * i_unit;
    EXPECT_EQ(i2.re.limb[0], -1.0);
    EXPECT_TRUE(i2.im.is_zero());
    for (int i = 0; i < 2000; ++i) {
        const auto z = random_z<2>(rng);
        // z * 1 == z exactly in value.
        const auto zi = z * one;
        EXPECT_EQ(BigFloat::cmp(exact(zi.re), exact(z.re)), 0);
        EXPECT_EQ(BigFloat::cmp(exact(zi.im), exact(z.im)), 0);
        // Commutativity, bit-exact (inherited from mul/add).
        const auto w = random_z<2>(rng);
        const auto zw = z * w;
        const auto wz = w * z;
        for (int k = 0; k < 2; ++k) {
            EXPECT_EQ(zw.re.limb[k], wz.re.limb[k]);
            EXPECT_EQ(zw.im.limb[k], wz.im.limb[k]);
        }
    }
}

TEST(Complex, AbsMatchesHypot) {
    std::mt19937_64 rng(5);
    for (int i = 0; i < 500; ++i) {
        const auto z = random_z<2>(rng);
        if (norm(z).is_zero()) continue;
        const auto a = mf::abs(z);
        const BigFloat want = BigFloat::sqrt(
            exact(z.re) * exact(z.re) + exact(z.im) * exact(z.im), 160);
        MF_EXPECT_REL_BOUND(a, want, 2 * 53 - 2 - 8);
    }
}

TEST(Complex, PowersOnUnitCircle) {
    // (cos t + i sin t)^k stays on the unit circle to working accuracy --
    // the eigensolver-style stability §4.2 is about.
    const auto t = mf::from_string<double, 3>("0.7853981633974483096156608458198757");
    Complex<double, 3> z(mf::cos(t), mf::sin(t));
    Complex<double, 3> acc(1.0);
    for (int k = 0; k < 64; ++k) acc *= z;
    const auto n = norm(acc);
    const BigFloat one = BigFloat::from_int(1);
    MF_EXPECT_REL_BOUND(n, one, 3 * 53 - 3 - 16);
}

}  // namespace
