// BigFloat decimal conversion: known constants, round trips, parser edges.

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "bigfloat/bigfloat.hpp"

namespace {

using mf::big::BigFloat;

TEST(BigFloatString, KnownConstants) {
    EXPECT_EQ(BigFloat::from_int(1).to_string(5), "1.0000e+0");
    EXPECT_EQ(BigFloat::from_int(-255).to_string(4), "-2.550e+2");
    EXPECT_EQ(BigFloat::from_double(0.5).to_string(3), "5.00e-1");
    EXPECT_EQ(BigFloat{}.to_string(10), "0");
    EXPECT_EQ(BigFloat::div(BigFloat::from_int(1), BigFloat::from_int(3), 120).to_string(12),
              "3.33333333333e-1");
}

TEST(BigFloatString, PiAt50Digits) {
    const std::string pi50 = "3.1415926535897932384626433832795028841971693993751";
    const BigFloat pi = BigFloat::from_string(pi50, 200);
    EXPECT_EQ(pi.to_string(50), "3.1415926535897932384626433832795028841971693993751e+0");
}

TEST(BigFloatString, ParseFormats) {
    EXPECT_EQ(BigFloat::from_string("42", 60).to_double(), 42.0);
    EXPECT_EQ(BigFloat::from_string("-42.5", 60).to_double(), -42.5);
    EXPECT_EQ(BigFloat::from_string("+0.125", 60).to_double(), 0.125);
    EXPECT_EQ(BigFloat::from_string("1e3", 60).to_double(), 1000.0);
    EXPECT_EQ(BigFloat::from_string("2.5E-2", 60).to_double(), 0.025);
    EXPECT_EQ(BigFloat::from_string("1.5e+1", 60).to_double(), 15.0);
}

TEST(BigFloatString, MalformedInputsAreZero) {
    EXPECT_TRUE(BigFloat::from_string("", 60).is_zero());
    EXPECT_TRUE(BigFloat::from_string("abc", 60).is_zero());
    EXPECT_TRUE(BigFloat::from_string("-", 60).is_zero());
    EXPECT_TRUE(BigFloat::from_string(".", 60).is_zero());
    EXPECT_TRUE(BigFloat::from_string("0", 60).is_zero());
    EXPECT_TRUE(BigFloat::from_string("0.000", 60).is_zero());
}

TEST(BigFloatString, ParseIsCorrectlyRounded) {
    // 0.1 is not dyadic; parsing at 53 bits must equal the double literal.
    EXPECT_EQ(BigFloat::from_string("0.1", 53).to_double(), 0.1);
    EXPECT_EQ(BigFloat::from_string("3.14159", 53).to_double(), 3.14159);
    EXPECT_EQ(BigFloat::from_string("1e-300", 53).to_double(), 1e-300);
    EXPECT_EQ(BigFloat::from_string("123456789123456789", 53).to_double(),
              123456789123456789.0);
}

TEST(BigFloatString, RoundTripRandomDoubles) {
    std::mt19937_64 rng(13);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    for (int i = 0; i < 2000; ++i) {
        const double x = std::ldexp(u(rng), static_cast<int>(rng() % 120) - 60);
        if (x == 0.0) continue;
        // 17 significant digits uniquely identify a double.
        const std::string s = mf::big::BigFloat::from_double(x).to_string(17);
        EXPECT_EQ(BigFloat::from_string(s, 53).to_double(), x) << s;
    }
}

TEST(BigFloatString, CarryAcrossDecade) {
    // 9.999... rounds up into an extra digit: exercises the retry loop.
    const BigFloat v = BigFloat::from_string("9.99999999", 120);
    EXPECT_EQ(v.to_string(3), "1.00e+1");
    const BigFloat w = BigFloat::from_string("0.99951", 120);
    EXPECT_EQ(w.to_string(3), "1.00e+0");
}

TEST(BigFloatString, NegativeExponentsAndSmallValues) {
    const BigFloat v = BigFloat::from_string("4.375e-12", 120);
    EXPECT_NEAR(v.to_double(), 4.375e-12, 1e-24);
    EXPECT_EQ(v.to_string(4), "4.375e-12");
}

}  // namespace
