// Multiplication FPANs: error bounds (paper Figures 5-7), nonoverlap, the
// commutativity guarantee of §4.2, and the discard-optimization threshold.

#include <gtest/gtest.h>

#include <random>

#include "support.hpp"

namespace {

using namespace mf;
using mf::test::adversarial;
using mf::test::exact;

template <typename MF>
class MulTyped : public ::testing::Test {};

using MulTypes = ::testing::Types<MultiFloat<double, 2>, MultiFloat<double, 3>,
                                  MultiFloat<double, 4>, MultiFloat<float, 2>,
                                  MultiFloat<float, 3>, MultiFloat<float, 4>>;
TYPED_TEST_SUITE(MulTyped, MulTypes);

TYPED_TEST(MulTyped, ErrorBoundAndNonoverlapRandomized) {
    using T = typename TypeParam::value_type;
    constexpr int N = TypeParam::num_limbs;
    constexpr int p = std::numeric_limits<T>::digits;
    const int bound = mf::test::mul_bound<N>(p);
    std::mt19937_64 rng(100 + N + p);
    for (int i = 0; i < 8000; ++i) {
        const TypeParam x = adversarial<T, N>(rng, -15, 15);
        const TypeParam y = adversarial<T, N>(rng, -15, 15);
        const TypeParam z = mul(x, y);
        const auto want = exact(x) * exact(y);
        if (!want.is_zero()) MF_EXPECT_REL_BOUND(z, want, bound);
        EXPECT_TRUE(is_nonoverlapping(z)) << "case " << i;
    }
}

TYPED_TEST(MulTyped, IsCommutativeBitExact) {
    // §4.2: the commutativity layer makes mul(x, y) == mul(y, x) exactly --
    // the property whose absence breaks complex conjugate products.
    using T = typename TypeParam::value_type;
    constexpr int N = TypeParam::num_limbs;
    std::mt19937_64 rng(200 + N);
    for (int i = 0; i < 6000; ++i) {
        const TypeParam x = adversarial<T, N>(rng, -12, 12);
        const TypeParam y = adversarial<T, N>(rng, -12, 12);
        const TypeParam xy = mul(x, y);
        const TypeParam yx = mul(y, x);
        for (int k = 0; k < N; ++k) EXPECT_EQ(xy.limb[k], yx.limb[k]) << "case " << i;
    }
}

TYPED_TEST(MulTyped, MultiplicativeIdentityAndZero) {
    using T = typename TypeParam::value_type;
    constexpr int N = TypeParam::num_limbs;
    std::mt19937_64 rng(300 + N);
    const TypeParam one(T(1));
    const TypeParam zero{};
    for (int i = 0; i < 3000; ++i) {
        const TypeParam x = adversarial<T, N>(rng, -12, 12);
        // Value-exact (limb layout may re-canonicalize at half-ulp
        // boundaries; see add_test.cpp).
        const TypeParam xi = mul(x, one);
        EXPECT_EQ(mf::big::BigFloat::cmp(exact(xi), exact(x)), 0) << "case " << i;
        EXPECT_TRUE(is_nonoverlapping(xi));
        EXPECT_TRUE(mul(x, zero).is_zero());
    }
}

TYPED_TEST(MulTyped, PowerOfTwoScalingIsExact) {
    using T = typename TypeParam::value_type;
    constexpr int N = TypeParam::num_limbs;
    std::mt19937_64 rng(400 + N);
    constexpr int p = std::numeric_limits<T>::digits;
    for (int i = 0; i < 3000; ++i) {
        const TypeParam x = adversarial<T, N>(rng, -8, 8);
        const int e = static_cast<int>(rng() % 30) - 15;
        // Exactness requires staying inside the normal exponent range
        // (paper §4.4: expansions extend precision, not range).
        int lowest = 0;
        for (int k = 0; k < N; ++k) {
            if (x.limb[k] != T(0)) lowest = std::ilogb(x.limb[k]);
        }
        if (lowest + e < std::numeric_limits<T>::min_exponent + p) continue;
        const TypeParam scaled = ldexp(x, e);
        // Exact: every limb scaled, value scaled.
        const auto want = exact(x).ldexp(e);
        EXPECT_EQ(mf::big::BigFloat::cmp(exact(scaled), want), 0);
        // Multiplying by the expansion 2^e agrees bit-for-bit in value.
        const TypeParam viaMul = mul(x, TypeParam(std::ldexp(T(1), e)));
        EXPECT_EQ(mf::big::BigFloat::cmp(exact(viaMul), want), 0) << "case " << i;
    }
}

TYPED_TEST(MulTyped, ScalarMulMatchesWidened) {
    using T = typename TypeParam::value_type;
    constexpr int N = TypeParam::num_limbs;
    constexpr int p = std::numeric_limits<T>::digits;
    const int bound = mf::test::mul_bound<N>(p);
    std::mt19937_64 rng(500 + N);
    std::uniform_real_distribution<T> u(T(-2), T(2));
    for (int i = 0; i < 4000; ++i) {
        const TypeParam x = adversarial<T, N>(rng, -10, 10);
        const T s = std::ldexp(u(rng), static_cast<int>(rng() % 20) - 10);
        const TypeParam z = mul(x, s);
        const auto want = exact(x) * mf::big::BigFloat::from_double(static_cast<double>(s));
        if (!want.is_zero()) MF_EXPECT_REL_BOUND(z, want, bound);
        EXPECT_TRUE(is_nonoverlapping(z));
    }
}

TYPED_TEST(MulTyped, SquareIsNonNegative) {
    using T = typename TypeParam::value_type;
    constexpr int N = TypeParam::num_limbs;
    std::mt19937_64 rng(600 + N);
    for (int i = 0; i < 3000; ++i) {
        const TypeParam x = adversarial<T, N>(rng, -10, 10);
        const TypeParam sq = sqr(x);
        EXPECT_GE(sq.limb[0], T(0));
    }
}

TEST(MulDirected, ConjugateProductHasZeroImaginaryPart) {
    // (a+bi)(a-bi) imaginary part = a*b - b*a: commutativity makes the two
    // products bit-identical, so the branch-free subtraction yields exact 0.
    std::mt19937_64 rng(55);
    for (int i = 0; i < 4000; ++i) {
        const Float64x3 a = mf::test::adversarial<double, 3>(rng, -10, 10);
        const Float64x3 b = mf::test::adversarial<double, 3>(rng, -10, 10);
        const Float64x3 im = sub(mul(a, b), mul(b, a));
        EXPECT_TRUE(im.is_zero()) << "case " << i;
    }
}

TEST(MulDirected, NonCommutativeVariantIsAccurateButAsymmetric) {
    std::mt19937_64 rng(66);
    bool found_asymmetry = false;
    for (int i = 0; i < 4000; ++i) {
        const Float64x2 x = mf::test::adversarial<double, 2>(rng, -10, 10);
        const Float64x2 y = mf::test::adversarial<double, 2>(rng, -10, 10);
        const Float64x2 xy = mf::detail::mul2_noncommutative(x, y);
        const Float64x2 yx = mf::detail::mul2_noncommutative(y, x);
        const auto want = mf::test::exact(x) * mf::test::exact(y);
        if (!want.is_zero()) {
            // Still meets the paper's error bound...
            MF_EXPECT_REL_BOUND(xy, want, mf::test::mul_bound<2>(53));
        }
        // ...but is not symmetric in general.
        if (xy.limb[1] != yx.limb[1]) found_asymmetry = true;
    }
    EXPECT_TRUE(found_asymmetry)
        << "fma-chained multiplication unexpectedly commutative";
}

TEST(MulDirected, DiscardThresholdTightness) {
    // The discarded x1*y1 term in mul2 sits right at the threshold: verify
    // the bound still holds when both tails are maximal (worst case for the
    // discard optimization of §4.2).
    const Float64x2 x({1.0 + 0x1p-1, 0x1p-54 * (1.0 + 0x1p-1)});
    const Float64x2 y({1.0 + 0x1p-2, 0x1p-54 * (1.0 + 0x1p-2)});
    const Float64x2 z = mul(x, y);
    const auto want = mf::test::exact(x) * mf::test::exact(y);
    EXPECT_LE(mf::test::rel_err_log2(z, want), -static_cast<double>(mf::test::mul_bound<2>(53)));
    EXPECT_TRUE(is_nonoverlapping(z));
}

}  // namespace
