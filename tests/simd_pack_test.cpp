// mf::simd::Pack: every backend's pack must be a lane-wise clone of the
// scalar IEEE arithmetic -- load/store/broadcast round-trips, the five
// arithmetic operations, and the EFT gates instantiated over packs must be
// bit-for-bit identical to the scalar results in every lane, including for
// special values (signed zeros, infinities, subnormals) and misaligned
// loads. On this build the instantiated widths cover whichever intrinsic
// specializations the compiler enabled (see MF_SIMD_HAVE_* in pack.hpp);
// with MF_SIMD_FORCE_SCALAR they all collapse to the portable fallback and
// the same assertions must still hold.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <type_traits>
#include <vector>

#include "simd/simd.hpp"

namespace {

using mf::simd::Pack;

template <typename T>
using Bits = std::conditional_t<sizeof(T) == 8, std::uint64_t, std::uint32_t>;

template <typename T>
Bits<T> bits(T x) {
    return std::bit_cast<Bits<T>>(x);
}

/// Invoke f(integral_constant<int, W>) for every width we exercise.
template <typename T, typename F>
void for_each_width(F f) {
    f(std::integral_constant<int, 1>{});
    f(std::integral_constant<int, 2>{});
    f(std::integral_constant<int, 4>{});
    f(std::integral_constant<int, 8>{});
    if constexpr (sizeof(T) == 4) f(std::integral_constant<int, 16>{});
}

/// Interesting scalar values: specials plus adversarially scaled randoms.
template <typename T>
std::vector<T> sample_values(std::size_t n, std::uint64_t seed) {
    std::vector<T> v = {T(0),
                        -T(0),
                        T(1),
                        T(-1),
                        std::numeric_limits<T>::infinity(),
                        -std::numeric_limits<T>::infinity(),
                        std::numeric_limits<T>::denorm_min(),
                        -std::numeric_limits<T>::denorm_min(),
                        std::numeric_limits<T>::min(),
                        std::numeric_limits<T>::max() / T(4)};
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<T> u(T(-2), T(2));
    std::uniform_int_distribution<int> e(-40, 40);
    while (v.size() < n) v.push_back(std::ldexp(u(rng), e(rng)));
    return v;
}

template <typename T>
class PackTyped : public ::testing::Test {};

using BaseTypes = ::testing::Types<float, double>;
TYPED_TEST_SUITE(PackTyped, BaseTypes);

TYPED_TEST(PackTyped, LoadStoreBroadcastRoundTrip) {
    using T = TypeParam;
    for_each_width<T>([](auto w) {
        constexpr int W = w();
        using P = Pack<T, W>;
        static_assert(P::width == W);
        const auto vals = sample_values<T>(64, 100 + W);
        // Misaligned offsets 0..W-1 into the buffer.
        for (int off = 0; off < W; ++off) {
            for (std::size_t i = 0; off + i + W <= vals.size(); i += W) {
                const P p = P::load(vals.data() + off + i);
                T out[W];
                p.store(out);
                for (int j = 0; j < W; ++j) {
                    ASSERT_EQ(bits(out[j]), bits(vals[off + i + j])) << "W=" << W;
                    ASSERT_EQ(bits(p[j]), bits(vals[off + i + j])) << "W=" << W;
                }
            }
        }
        const P b = P::broadcast(T(1.5));
        for (int j = 0; j < W; ++j) ASSERT_EQ(b[j], T(1.5));
        const P z;  // default = all lanes zero
        for (int j = 0; j < W; ++j) ASSERT_EQ(bits(z[j]), bits(T(0)));
    });
}

TYPED_TEST(PackTyped, ArithmeticBitExactPerLane) {
    using T = TypeParam;
    for_each_width<T>([](auto w) {
        constexpr int W = w();
        using P = Pack<T, W>;
        const auto as = sample_values<T>(16 * W, 7);
        const auto bs = sample_values<T>(16 * W, 8);
        const auto cs = sample_values<T>(16 * W, 9);
        for (std::size_t i = 0; i + W <= as.size(); i += W) {
            const P a = P::load(as.data() + i);
            const P b = P::load(bs.data() + i);
            const P c = P::load(cs.data() + i);
            const P sum = a + b;
            const P dif = a - b;
            const P prd = a * b;
            const P neg = -a;
            const P fm = fma(a, b, c);
            for (int j = 0; j < W; ++j) {
                const T x = as[i + j];
                const T y = bs[i + j];
                const T z = cs[i + j];
                // NaN results (inf - inf etc.) compare by classification, not
                // payload: payload propagation is not pinned down by IEEE.
                const auto check = [&](T got, T want, const char* op) {
                    if (std::isnan(want)) {
                        ASSERT_TRUE(std::isnan(got)) << op << " W=" << W;
                    } else {
                        ASSERT_EQ(bits(got), bits(want)) << op << " W=" << W << " lane=" << j;
                    }
                };
                check(sum[j], x + y, "add");
                check(dif[j], x - y, "sub");
                check(prd[j], x * y, "mul");
                check(neg[j], -x, "neg");
                check(fm[j], std::fma(x, y, z), "fma");
            }
        }
    });
}

TYPED_TEST(PackTyped, EftGatesBitExactPerLane) {
    using T = TypeParam;
    for_each_width<T>([](auto w) {
        constexpr int W = w();
        using P = Pack<T, W>;
        // Finite values only: the gate algebra assumes no intermediate
        // overflow, exactly as for the scalar kernels.
        std::mt19937_64 rng(17);
        std::uniform_real_distribution<T> u(T(-2), T(2));
        std::uniform_int_distribution<int> e(-30, 30);
        for (int rep = 0; rep < 64; ++rep) {
            T xs[W], ys[W];
            for (int j = 0; j < W; ++j) {
                xs[j] = std::ldexp(u(rng), e(rng));
                ys[j] = std::ldexp(u(rng), e(rng));
            }
            const P x = P::load(xs);
            const P y = P::load(ys);
            const auto [s, err] = mf::two_sum(x, y);
            const auto [p, perr] = mf::two_prod(x, y);
            for (int j = 0; j < W; ++j) {
                const auto [ss, se] = mf::two_sum(xs[j], ys[j]);
                ASSERT_EQ(bits(s[j]), bits(ss)) << "two_sum W=" << W;
                ASSERT_EQ(bits(err[j]), bits(se)) << "two_sum err W=" << W;
                const auto [pp, pe] = mf::two_prod(xs[j], ys[j]);
                ASSERT_EQ(bits(p[j]), bits(pp)) << "two_prod W=" << W;
                ASSERT_EQ(bits(perr[j]), bits(pe)) << "two_prod err W=" << W;
            }
            // FastTwoSum needs |a| >= |b|: order the operands per lane first.
            T hs[W], ls[W];
            for (int j = 0; j < W; ++j) {
                hs[j] = std::abs(xs[j]) >= std::abs(ys[j]) ? xs[j] : ys[j];
                ls[j] = std::abs(xs[j]) >= std::abs(ys[j]) ? ys[j] : xs[j];
            }
            const auto [f, ferr] = mf::fast_two_sum(P::load(hs), P::load(ls));
            for (int j = 0; j < W; ++j) {
                const auto [fs, fe] = mf::fast_two_sum(hs[j], ls[j]);
                ASSERT_EQ(bits(f[j]), bits(fs)) << "fast_two_sum W=" << W;
                ASSERT_EQ(bits(ferr[j]), bits(fe)) << "fast_two_sum err W=" << W;
            }
        }
    });
}

TEST(Backend, EnumerationAndWidths) {
    using namespace mf::simd;
    // scalar is always compiled, supported, and selectable.
    EXPECT_TRUE(backend_available(Backend::scalar));
    EXPECT_EQ(backend_width<double>(Backend::scalar), 1);
    EXPECT_EQ(backend_width<float>(Backend::scalar), 1);
    EXPECT_EQ(backend_width<double>(Backend::sse2), 2);
    EXPECT_EQ(backend_width<double>(Backend::avx2), 4);
    EXPECT_EQ(backend_width<double>(Backend::avx512), 8);
    EXPECT_EQ(backend_width<float>(Backend::avx512), 16);
    // Name round-trips.
    for (Backend b : {Backend::scalar, Backend::sse2, Backend::avx2,
                      Backend::avx512, Backend::neon}) {
        Backend parsed;
        ASSERT_TRUE(parse_backend(backend_name(b), &parsed));
        EXPECT_EQ(parsed, b);
    }
    Backend dummy;
    EXPECT_FALSE(parse_backend("riscv-vector", &dummy));
    // The startup choice is available, and set_backend round-trips through
    // every available backend; the active width always matches the enum's.
    const Backend initial = active_backend();
    EXPECT_TRUE(backend_available(initial));
    for (Backend b : {Backend::scalar, Backend::sse2, Backend::avx2,
                      Backend::avx512, Backend::neon}) {
        if (!backend_available(b)) {
            EXPECT_FALSE(set_backend(b));
            continue;
        }
        ASSERT_TRUE(set_backend(b));
        EXPECT_EQ(active_backend(), b);
        EXPECT_EQ(active_width<double>(), backend_width<double>(b));
        EXPECT_EQ(active_width<float>(), backend_width<float>(b));
    }
    ASSERT_TRUE(set_backend(initial));
}

}  // namespace
