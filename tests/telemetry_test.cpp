// mf::telemetry: registry semantics (concurrent sharded counting, log2
// histogram bucketing, span recording), exporter formats (Prometheus text
// exposition, chrome://tracing JSON vs a committed golden file), and the
// end-to-end wiring through the instrumented GEMM stack.
//
// Each TEST runs in its own process (gtest_discover_tests), but every test
// still calls reset() up front so counts from static initialization or
// backend detection never leak into assertions.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "blas/planar.hpp"
#include "simd/tiling.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace mf::telemetry;

Registry& reg() { return Registry::instance(); }

const CounterSnap* find_counter(const Snapshot& s, const std::string& name) {
    for (const CounterSnap& c : s.counters) {
        if (c.name == name) return &c;
    }
    return nullptr;
}

const HistogramSnap* find_hist(const Snapshot& s, const std::string& name) {
    for (const HistogramSnap& h : s.histograms) {
        if (h.name == name) return &h;
    }
    return nullptr;
}

std::uint64_t sum_counters_with_prefix(const Snapshot& s, const std::string& prefix) {
    std::uint64_t total = 0;
    for (const CounterSnap& c : s.counters) {
        if (c.name.rfind(prefix, 0) == 0) total += c.value;
    }
    return total;
}

TEST(TelemetryRegistry, ConcurrentShardedIncrementsMergeExactly) {
    reg().reset();
    const CounterId id = reg().counter("test_concurrent_total");
    constexpr int kThreads = 16;
    constexpr std::uint64_t kPerThread = 100000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([id] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) reg().add(id);
        });
    }
    for (std::thread& w : workers) w.join();
    // All 16 worker threads have exited; their shards must still contribute
    // ("merged on flush" semantics -- shards outlive their threads).
    const Snapshot snap = reg().snapshot();
    const CounterSnap* c = find_counter(snap, "test_concurrent_total");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->value, kThreads * kPerThread);
}

TEST(TelemetryRegistry, CounterIdIsStableAndAddNIsExact) {
    reg().reset();
    const CounterId a = reg().counter("test_stable_total");
    const CounterId b = reg().counter("test_stable_total");
    EXPECT_EQ(a.idx, b.idx);
    reg().add(a, 5);
    reg().add(b, 7);
    const Snapshot snap = reg().snapshot();
    const CounterSnap* c = find_counter(snap, "test_stable_total");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->value, 12u);
}

TEST(TelemetryRegistry, InertIdsAreNoOps) {
    reg().reset();
    CounterId none;      // default: idx = -1
    HistogramId hnone;   // default: idx = -1
    reg().add(none, 3);  // must not crash or count anything
    reg().observe(hnone, 42);
    const Snapshot snap = reg().snapshot();
    for (const CounterSnap& c : snap.counters) EXPECT_EQ(c.value, 0u) << c.name;
    for (const HistogramSnap& h : snap.histograms) EXPECT_EQ(h.count, 0u) << h.name;
}

TEST(TelemetryHistogram, PowerOfTwoBucketEdges) {
    // Bucket 0 = [0, 2), bucket b = [2^b, 2^(b+1)): the exact contract the
    // exposition's `le` edges encode.
    EXPECT_EQ(log2_bucket(0), 0);
    EXPECT_EQ(log2_bucket(1), 0);
    EXPECT_EQ(log2_bucket(2), 1);
    EXPECT_EQ(log2_bucket(3), 1);
    EXPECT_EQ(log2_bucket(4), 2);
    EXPECT_EQ(log2_bucket(7), 2);
    EXPECT_EQ(log2_bucket(8), 3);
    EXPECT_EQ(log2_bucket((std::uint64_t{1} << 40) - 1), 39);
    EXPECT_EQ(log2_bucket(std::uint64_t{1} << 40), 40);
    EXPECT_EQ(log2_bucket(~std::uint64_t{0}), kHistBuckets - 1);

    reg().reset();
    const HistogramId h = reg().histogram("test_buckets");
    for (std::uint64_t v : {0u, 1u, 2u, 3u, 4u, 7u, 8u}) reg().observe(h, v);
    const Snapshot snap = reg().snapshot();
    const HistogramSnap* s = find_hist(snap, "test_buckets");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->bucket[0], 2u);  // 0, 1
    EXPECT_EQ(s->bucket[1], 2u);  // 2, 3
    EXPECT_EQ(s->bucket[2], 2u);  // 4, 7
    EXPECT_EQ(s->bucket[3], 1u);  // 8
    EXPECT_EQ(s->count, 7u);
    EXPECT_EQ(s->sum, 0u + 1 + 2 + 3 + 4 + 7 + 8);
}

TEST(TelemetryTrace, GoldenChromeTraceJson) {
    reg().reset();
    // Deterministic injected spans (explicit tid + timestamps): the exporter
    // output for these is byte-stable, so it lives as a committed golden
    // file. Regenerate with tools/mf_top + this test's inputs if the format
    // deliberately changes.
    reg().record_span("alpha", /*tid=*/0, /*begin_ns=*/1000, /*end_ns=*/2500);
    reg().record_span("beta", /*tid=*/1, /*begin_ns=*/2000, /*end_ns=*/4000);
    const std::string got = chrome_trace_json(reg().snapshot());

    std::ifstream golden(std::string(MF_GOLDEN_DIR) + "/trace_golden.json");
    ASSERT_TRUE(golden.is_open()) << "missing " MF_GOLDEN_DIR "/trace_golden.json";
    std::stringstream want;
    want << golden.rdbuf();
    EXPECT_EQ(got, want.str());
}

// The remaining tests exercise the MF_TELEM_* macros and the instrumented
// kernels, so they are meaningful only when the instrumentation is compiled
// in (MF_TELEMETRY=ON, the default). In an OFF build the registry/exporter
// tests above still run; these skip.

TEST(TelemetryTrace, ScopedSpanRecordsOnlyWhenEnabled) {
#if !MF_TELEMETRY_ENABLED
    GTEST_SKIP() << "telemetry instrumentation compiled out";
#else
    reg().reset();
    reg().set_trace_enabled(false);
    { MF_TELEM_SPAN("quiet"); }
    EXPECT_TRUE(reg().snapshot().spans.empty());
    reg().set_trace_enabled(true);
    { MF_TELEM_SPAN("loud"); }
    reg().set_trace_enabled(false);
    const Snapshot snap = reg().snapshot();
    ASSERT_EQ(snap.spans.size(), 1u);
    EXPECT_EQ(snap.spans[0].name, "loud");
    EXPECT_LE(snap.spans[0].begin_ns, snap.spans[0].end_ns);
#endif
}

TEST(TelemetryExposition, RendersCountersHistogramsAndBuildInfo) {
    reg().reset();
    reg().add(reg().counter("test_expo_total{kind=\"a\"}"), 3);
    reg().add(reg().counter("test_expo_total{kind=\"b\"}"), 4);
    const HistogramId h = reg().histogram("test_expo_ns");
    reg().observe(h, 1);  // bucket 0 -> le="2"
    reg().observe(h, 5);  // bucket 2 -> le="8"
    const std::string text = render_exposition(reg().snapshot(), build_info());

    // One TYPE line for the shared base name, then both labeled series.
    EXPECT_NE(text.find("# TYPE test_expo_total counter"), std::string::npos);
    EXPECT_NE(text.find("test_expo_total{kind=\"a\"} 3\n"), std::string::npos);
    EXPECT_NE(text.find("test_expo_total{kind=\"b\"} 4\n"), std::string::npos);
    // Histogram: cumulative buckets with exact power-of-two edges.
    EXPECT_NE(text.find("# TYPE test_expo_ns histogram"), std::string::npos);
    EXPECT_NE(text.find("test_expo_ns_bucket{le=\"2\"} 1\n"), std::string::npos);
    EXPECT_NE(text.find("test_expo_ns_bucket{le=\"8\"} 2\n"), std::string::npos);
    EXPECT_NE(text.find("test_expo_ns_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
    EXPECT_NE(text.find("test_expo_ns_sum 6\n"), std::string::npos);
    EXPECT_NE(text.find("test_expo_ns_count 2\n"), std::string::npos);
    // Build provenance rides along as the standard info-gauge.
    EXPECT_NE(text.find("# TYPE mf_build_info gauge"), std::string::npos);
    EXPECT_NE(text.find("mf_build_info{git_sha="), std::string::npos);
    EXPECT_NE(text.find("backend="), std::string::npos);
}

TEST(TelemetryWiring, GemmPopulatesDispatchRenormAndTileCounters) {
#if !MF_TELEMETRY_ENABLED
    GTEST_SKIP() << "telemetry instrumentation compiled out";
#else
    reg().reset();
    reg().set_trace_enabled(true);
    constexpr std::size_t n = 8;
    mf::planar::Vector<double, 4> a(n * n), b(n * n), c(n * n);
    for (std::size_t i = 0; i < n * n; ++i) {
        a.set(i, mf::MultiFloat<double, 4>(1.0 + double(i) * 0x1p-20));
        b.set(i, mf::MultiFloat<double, 4>(2.0 - double(i) * 0x1p-21));
    }
    mf::simd::gemm_tiled(mf::planar::matrix_view(a, n, n),
                         mf::planar::matrix_view(b, n, n),
                         mf::planar::matrix_view(c, n, n));
    reg().set_trace_enabled(false);

    const Snapshot snap = reg().snapshot();
    // One dispatch resolve (hoisted out of the tile loops), one row tile
    // (n = 8 < the 32-row tile height), n^3 fused multiply-add kernel ops,
    // and a renorm per element update.
    EXPECT_EQ(sum_counters_with_prefix(snap, "mf_simd_dispatch_total"), 1u);
    const CounterSnap* tiles = find_counter(snap, "mf_gemm_tiles_total");
    ASSERT_NE(tiles, nullptr);
    EXPECT_EQ(tiles->value, 1u);
    EXPECT_EQ(sum_counters_with_prefix(snap, "mf_simd_kernel_ops_total"), n * n * n);
    EXPECT_GT(sum_counters_with_prefix(snap, "mf_renorm_accumulate_total"), 0u);
    // The traced row tile must appear as a span and as a latency observation.
    EXPECT_EQ(snap.spans.size(), 1u);
    const HistogramSnap* lat = find_hist(snap, "mf_gemm_tile_ns");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->count, 1u);
#endif
}

TEST(TelemetryWiring, IeeeFixupEventsCountSpecials) {
#if !MF_TELEMETRY_ENABLED
    GTEST_SKIP() << "telemetry instrumentation compiled out";
#else
    reg().reset();
    using MF4 = mf::MultiFloat<double, 4>;
    const MF4 inf(std::numeric_limits<double>::infinity());
    const MF4 one(1.0);
    (void)mf::add_ieee(inf, one);   // fixup: Inf propagates
    (void)mf::add_ieee(one, one);   // no fixup
    (void)mf::div_ieee(one, MF4(0.0));  // fixup: 1/0 = Inf
    const Snapshot snap = reg().snapshot();
    const CounterSnap* add = find_counter(snap, "mf_ieee_fixup_total{op=\"add\"}");
    ASSERT_NE(add, nullptr);
    EXPECT_EQ(add->value, 1u);
    const CounterSnap* div = find_counter(snap, "mf_ieee_fixup_total{op=\"div\"}");
    ASSERT_NE(div, nullptr);
    EXPECT_EQ(div->value, 1u);
    // div() on a zero divisor also raises the non-finite health event.
    EXPECT_GE(sum_counters_with_prefix(snap, "mf_divsqrt_nonfinite_total"), 1u);
#endif
}

TEST(TelemetryRegistry, ResetZeroesValuesButKeepsSeries) {
    reg().reset();
    const CounterId id = reg().counter("test_reset_total");
    reg().add(id, 9);
    reg().reset();
    const Snapshot after_reset = reg().snapshot();
    const CounterSnap* c = find_counter(after_reset, "test_reset_total");
    ASSERT_NE(c, nullptr);  // name survives reset
    EXPECT_EQ(c->value, 0u);
    reg().add(id, 2);  // pre-reset id still valid
    const Snapshot after_add = reg().snapshot();
    ASSERT_NE(find_counter(after_add, "test_reset_total"), nullptr);
    EXPECT_EQ(find_counter(after_add, "test_reset_total")->value, 2u);
}

}  // namespace
