// Accurate reductions over plain machine arrays (mf::sum / mf::dot):
// pathological cancellation cases against the exact oracle.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "mf/reduce.hpp"
#include "support.hpp"

namespace {

using namespace mf;
using mf::big::BigFloat;

TEST(Reduce, SumOfCancellingSeriesIsExact) {
    // +x and -x pairs shuffled: the exact sum is the one leftover element.
    // At N = 4 every partial sum fits the 215-bit window (values span
    // 80 + 53 bits plus ~9 bits of carry growth), so no add ever discards
    // information and the result is EXACT despite total cancellation.
    std::mt19937_64 rng(1);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    for (int rep = 0; rep < 50; ++rep) {
        std::vector<double> xs;
        for (int i = 0; i < 200; ++i) {
            const double v = std::ldexp(u(rng), static_cast<int>(rng() % 80) - 40);
            xs.push_back(v);
            xs.push_back(-v);
        }
        const double leftover = std::ldexp(u(rng), -30);
        xs.push_back(leftover);
        std::shuffle(xs.begin(), xs.end(), rng);
        const auto s = mf::sum<double, 4>({xs.data(), xs.size()});
        EXPECT_EQ(BigFloat::cmp(mf::test::exact(s), BigFloat::from_double(leftover)), 0)
            << "rep " << rep;
        // At N = 2 the 107-bit window cannot hold the full span: the sum is
        // close but NOT guaranteed exact -- the contrast is the point.
        const auto s2 = mf::sum<double, 2>({xs.data(), xs.size()});
        const BigFloat err =
            (mf::test::exact(s2) - BigFloat::from_double(leftover)).abs();
        if (!err.is_zero()) {
            // Partial sums reach ~2^41 and N=2 keeps 107 bits, so the
            // residual floor is ~2^-66 with a few bits of accumulation.
            EXPECT_LE(err.ilogb(), 41 - 107 + 12) << "rep " << rep;
        }
    }
}

TEST(Reduce, SumMatchesOracleAtScale) {
    std::mt19937_64 rng(2);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    std::vector<double> xs;
    BigFloat want;
    for (int i = 0; i < 20000; ++i) {
        const double v = std::ldexp(u(rng), static_cast<int>(rng() % 60) - 30);
        xs.push_back(v);
        want = want + BigFloat::from_double(v);
    }
    const auto s4 = mf::sum<double, 4>({xs.data(), xs.size()});
    if (!want.is_zero()) {
        MF_EXPECT_REL_BOUND(s4, want, 4 * 53 - 4 - 16);
    }
}

TEST(Reduce, DotIsExactForSmallInputs) {
    // With <= ~2^53-bounded intermediate bit spans, the 4-term dot of small
    // integers is EXACT.
    std::vector<double> xs{3, -7, 11, 13, -17};
    std::vector<double> ys{19, 23, -29, 31, 37};
    const auto d = mf::dot<double, 4>({xs.data(), 5u}, {ys.data(), 5u});
    // 57 - 161 - 319 + 403 - 629 = -649.
    EXPECT_EQ(d.limb[0], -649.0);
    EXPECT_EQ(d.limb[1], 0.0);
}

TEST(Reduce, DotIllConditioned) {
    // Huge terms that cancel exactly: plain double gets 0 digits, the
    // 2-term reduction stays exact.
    std::vector<double> xs{0x1p100, 1.0, -0x1p100, 3.0};
    std::vector<double> ys{0x1p20, 5.0, 0x1p20, 7.0};
    // exact: 2^120 + 5 - 2^120 + 21 = 26.
    double naive = 0.0;
    for (int i = 0; i < 4; ++i) naive += xs[static_cast<std::size_t>(i)] * ys[static_cast<std::size_t>(i)];
    EXPECT_NE(naive, 26.0);
    const auto d = mf::dot<double, 2>({xs.data(), 4u}, {ys.data(), 4u});
    EXPECT_EQ(d.limb[0], 26.0);
}

TEST(Reduce, DotMatchesOracleRandom) {
    std::mt19937_64 rng(3);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    for (int rep = 0; rep < 20; ++rep) {
        std::vector<double> xs;
        std::vector<double> ys;
        BigFloat want;
        for (int i = 0; i < 500; ++i) {
            xs.push_back(std::ldexp(u(rng), static_cast<int>(rng() % 40) - 20));
            ys.push_back(std::ldexp(u(rng), static_cast<int>(rng() % 40) - 20));
            want = want +
                   BigFloat::from_double(xs.back()) * BigFloat::from_double(ys.back());
        }
        const auto d = mf::dot<double, 3>({xs.data(), xs.size()}, {ys.data(), ys.size()});
        if (!want.is_zero()) {
            MF_EXPECT_REL_BOUND(d, want, 3 * 53 - 3 - 14);
        }
        const auto nsq = mf::norm2_squared<double, 3>({xs.data(), xs.size()});
        EXPECT_GT(nsq.limb[0], 0.0);
    }
}

TEST(Reduce, EmptyInputs) {
    EXPECT_TRUE((mf::sum<double, 2>({})).is_zero());
    EXPECT_TRUE((mf::dot<double, 3>({}, {})).is_zero());
}

}  // namespace
