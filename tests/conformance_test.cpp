// Smoke tier for the mf::check conformance subsystem (ctest label
// `fuzz-smoke`). Each test runs a scaled-down version of what tools/mf_fuzz
// does at full depth; set MF_FUZZ_ITERS to fuzz longer through the same
// entry points (the committed acceptance runs use 100000).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>

#include "check/check.hpp"

namespace {

using namespace mf;
using namespace mf::check;

std::uint64_t smoke_iters() {
    if (const char* env = std::getenv("MF_FUZZ_ITERS")) {
        const unsigned long long v = std::strtoull(env, nullptr, 10);
        if (v > 0) return v;
    }
    return 2000;
}

template <typename T, int N>
void run_all_ops(std::uint64_t iters) {
    GenConfig cfg;
    cfg.subnormals = true;
    cfg.near_overflow = true;
    cfg.specials = true;
    for (Op op : {Op::add, Op::sub, Op::mul, Op::div, Op::sqrt}) {
        const RunStats s = run_conformance<T, N>(op, 7 + N, iters, cfg);
        EXPECT_EQ(s.violations, 0u) << op_name(op) << " " << s.type << " N=" << N;
        EXPECT_EQ(s.invariant_violations, 0u) << op_name(op) << " N=" << N;
        EXPECT_EQ(s.special_failures, 0u) << op_name(op) << " N=" << N;
        EXPECT_GT(s.checked, 0u) << op_name(op) << " " << s.type << " N=" << N
                                 << ": domain classifier rejected everything";
    }
}

TEST(ConformanceSmoke, DoubleAllOps) {
    const std::uint64_t iters = smoke_iters();
    run_all_ops<double, 2>(iters);
    run_all_ops<double, 3>(iters);
    run_all_ops<double, 4>(iters);
}

TEST(ConformanceSmoke, FloatAllOps) {
    const std::uint64_t iters = smoke_iters();
    run_all_ops<float, 2>(iters);
    run_all_ops<float, 3>(iters);
    run_all_ops<float, 4>(iters);
}

// The generator mix must actually produce every category when the domain
// extensions are on, and every non-special output must be a valid strictly
// nonoverlapping expansion.
TEST(Generators, ProduceEveryCategoryAndStayNonoverlapping) {
    std::mt19937_64 rng(99);
    GenConfig cfg;
    cfg.subnormals = true;
    cfg.near_overflow = true;
    cfg.specials = true;
    std::uint64_t seen[category_count] = {};
    for (int i = 0; i < 20000; ++i) {
        const Category cat = pick_category(rng, cfg);
        ++seen[static_cast<int>(cat)];
        auto [x, y] = gen_pair<double, 3>(rng, cat, cfg);
        if (cat != Category::special) {
            EXPECT_TRUE(is_nonoverlapping(x)) << category_name(cat) << " sample " << i;
            // The cancellation partner is exempt by contract: its nextafter
            // nudge may straddle the strict boundary by one ulp.
            if (cat != Category::cancellation) {
                EXPECT_TRUE(is_nonoverlapping(y)) << category_name(cat) << " sample " << i;
            }
        }
    }
    for (int c = 0; c < category_count; ++c) {
        EXPECT_GT(seen[c], 0u) << "category " << category_name(static_cast<Category>(c))
                               << " never generated";
    }
}

// Structural spot checks on the targeted corners.
TEST(Generators, SubnormalAndNearOverflowHitTheirCorners) {
    std::mt19937_64 rng(7);
    GenConfig cfg;
    cfg.subnormals = true;
    cfg.near_overflow = true;
    int subnormal_lead = 0, subnormal_tail = 0, huge = 0;
    for (int i = 0; i < 4000; ++i) {
        const auto s = gen<double, 4>(rng, Category::subnormal, cfg);
        if (std::fpclassify(s.limb[0]) == FP_SUBNORMAL) ++subnormal_lead;
        for (int k = 1; k < 4; ++k) {
            if (std::fpclassify(s.limb[k]) == FP_SUBNORMAL) ++subnormal_tail;
        }
        const auto o = gen<double, 4>(rng, Category::near_overflow, cfg);
        if (!o.is_zero() && std::ilogb(o.limb[0]) >= std::numeric_limits<double>::max_exponent - 7)
            ++huge;
    }
    EXPECT_GT(subnormal_lead, 0);
    EXPECT_GT(subnormal_tail, 0);
    EXPECT_GT(huge, 3900);  // the lead exponent is near-overflow by construction
}

// Scalar kernels vs every compiled SIMD backend, bit-for-bit.
TEST(Differ, BackendsBitIdentical) {
    GenConfig cfg;
    cfg.specials = true;
    for (const DiffRecord& d : diff_backends<double, 2>(11, 96, 2, cfg)) {
        EXPECT_EQ(d.mismatches, 0u) << d.kernel << " on " << d.backend;
        EXPECT_GT(d.elements, 0u);
    }
    for (const DiffRecord& d : diff_backends<float, 3>(12, 96, 2, cfg)) {
        EXPECT_EQ(d.mismatches, 0u) << d.kernel << " on " << d.backend;
    }
}

// Fault injection: a kernel that drops its last limb must (a) be caught by
// the runner and (b) shrink to a minimal counterexample of <= N limbs.
template <typename T, int N>
void fault_injection_roundtrip() {
    using MFt = MultiFloat<T, N>;
    const auto broken = [](Op o, const MFt& x, const MFt& y) {
        MFt z = apply_op(o, x, y);
        z.limb[N - 1] = T(0);
        return z;
    };
    Counterexample<T, N> worst;
    const RunStats s =
        run_conformance_with<T, N>(broken, Op::add, 42, 4000, GenConfig{}, &worst);
    ASSERT_GT(s.violations, 0u) << "injected fault not detected, N=" << N;
    ASSERT_TRUE(worst.valid);
    const int bound = s.bound;
    const auto still_fails = [&](const MFt& x, const MFt& y) {
        if (!bound_domain(Op::add, x, y)) return false;
        const MFt z = broken(Op::add, x, y);
        const big::BigFloat want = oracle(Op::add, x, y);
        if (want.is_zero()) return !exact(z).is_zero();
        return rel_err_log2(z, want) > -static_cast<double>(bound);
    };
    ASSERT_TRUE(still_fails(worst.x, worst.y));
    const auto [sx, sy] = shrink(worst.x, worst.y, still_fails);
    EXPECT_TRUE(still_fails(sx, sy));
    EXPECT_TRUE(shrink_is_minimal(sx, sy, still_fails));
    EXPECT_LE(shrink_size(sx, sy), N);
}

TEST(Shrink, FaultInjectionShrinksToMinimalWitness) {
    fault_injection_roundtrip<double, 2>();
    fault_injection_roundtrip<double, 3>();
    fault_injection_roundtrip<double, 4>();
    fault_injection_roundtrip<float, 2>();
}

// A clean kernel must never register a violation through the same path.
TEST(Shrink, NoFalsePositivesOnRealKernels) {
    Counterexample<double, 3> worst;
    const RunStats s = run_conformance<double, 3>(Op::add, 42, 4000, GenConfig{}, &worst);
    EXPECT_EQ(s.violations, 0u);
    EXPECT_TRUE(worst.valid);  // still tracks the worst-slack sample
}

// The committed seed corpus replays clean through every (op, type, N) lens.
TEST(Corpus, CommittedSeedsReplayClean) {
    std::vector<CorpusEntry> entries;
    ASSERT_TRUE(load_corpus(MF_CORPUS_DIR "/seed.corpus", &entries));
    ASSERT_FALSE(entries.empty());
    std::uint64_t replayed = 0;
    for (Op op : {Op::add, Op::sub, Op::mul, Op::div, Op::sqrt}) {
        RunStats s2 = make_stats<double, 2>(op, 0);
        RunStats s3 = make_stats<double, 3>(op, 0);
        RunStats s4 = make_stats<double, 4>(op, 0);
        RunStats f2 = make_stats<float, 2>(op, 0);
        RunStats f3 = make_stats<float, 3>(op, 0);
        RunStats f4 = make_stats<float, 4>(op, 0);
        replayed += replay_corpus<double, 2>(entries, op, &s2);
        replayed += replay_corpus<double, 3>(entries, op, &s3);
        replayed += replay_corpus<double, 4>(entries, op, &s4);
        replayed += replay_corpus<float, 2>(entries, op, &f2);
        replayed += replay_corpus<float, 3>(entries, op, &f3);
        replayed += replay_corpus<float, 4>(entries, op, &f4);
        for (const RunStats* s : {&s2, &s3, &s4, &f2, &f3, &f4}) {
            EXPECT_TRUE(s->clean()) << op_name(op) << " " << s->type << " N=" << s->limbs;
        }
    }
    EXPECT_EQ(replayed, entries.size());
}

// Corpus IO round-trips limbs exactly, including specials.
TEST(Corpus, SaveLoadRoundTrip) {
    MultiFloat<double, 3> x, y;
    x.limb[0] = 0x1.fffffffffffffp+100;
    x.limb[1] = -0x1p+40;
    x.limb[2] = std::numeric_limits<double>::quiet_NaN();
    y.limb[0] = -std::numeric_limits<double>::infinity();
    y.limb[1] = -0.0;
    y.limb[2] = std::numeric_limits<double>::denorm_min();
    std::vector<CorpusEntry> out{make_entry(Op::mul, x, y)};
    const std::string path = ::testing::TempDir() + "mf_corpus_roundtrip.txt";
    ASSERT_TRUE(save_corpus(path, out, "round-trip test"));
    std::vector<CorpusEntry> in;
    ASSERT_TRUE(load_corpus(path, &in));
    ASSERT_EQ(in.size(), 1u);
    MultiFloat<double, 3> rx, ry;
    ASSERT_TRUE((entry_as<double, 3>(in[0], &rx, &ry)));
    for (int i = 0; i < 3; ++i) {
        if (std::isnan(x.limb[i])) {
            EXPECT_TRUE(std::isnan(rx.limb[i]));
        } else {
            EXPECT_EQ(x.limb[i], rx.limb[i]) << i;
        }
        EXPECT_EQ(std::signbit(y.limb[i]), std::signbit(ry.limb[i])) << i;
        if (!std::isnan(y.limb[i])) {
            EXPECT_EQ(y.limb[i], ry.limb[i]) << i;
        }
    }
    std::remove(path.c_str());
}

// JSON telemetry: a report writes, parses as non-empty, and flags dirt.
TEST(Report, WriteAndCleanFlag) {
    ConformanceReport rep;
    rep.seed = 5;
    rep.iters_per_run = 10;
    rep.backend = "scalar";
    rep.runs.push_back(run_conformance<double, 2>(Op::add, 5, 200));
    const std::string path = ::testing::TempDir() + "mf_check_report.json";
    ASSERT_TRUE(rep.write(path));
    std::FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[256] = {};
    ASSERT_GT(std::fread(buf, 1, sizeof buf - 1, f), 0u);
    std::fclose(f);
    EXPECT_NE(std::strstr(buf, "\"check\": \"conformance\""), nullptr);
    EXPECT_TRUE(rep.clean());
    rep.runs[0].violations = 1;
    EXPECT_FALSE(rep.clean());
    std::remove(path.c_str());
}

}  // namespace
