// The fast hand-inlined kernels in mf/ and the checkable Network mirrors in
// fpan/library.cpp must compute gate-for-gate identical results: any drift
// would mean the verified object is not the shipped object.

#include <gtest/gtest.h>

#include <random>
#include <span>

#include "fpan/executor.hpp"
#include "fpan/library.hpp"
#include "support.hpp"

namespace {

using namespace mf;
using namespace mf::fpan;
using mf::test::adversarial;

template <int N>
void check_add_consistency(std::uint64_t seed, int iters) {
    const Network net = make_add_network(N);
    std::mt19937_64 rng(seed);
    for (int t = 0; t < iters; ++t) {
        const auto x = adversarial<double, N>(rng);
        const auto y = (t % 4 == 1) ? mf::test::cancellation_partner(x, rng)
                                    : adversarial<double, N>(rng);
        double w[2 * N];
        for (int i = 0; i < N; ++i) {
            w[2 * i] = x.limb[i];
            w[2 * i + 1] = y.limb[i];
        }
        execute(net, std::span<double>(w, 2 * N));
        const auto z = add(x, y);
        for (int k = 0; k < N; ++k) {
            ASSERT_EQ(w[net.outputs[static_cast<std::size_t>(k)]], z.limb[k])
                << "N=" << N << " case " << t << " limb " << k;
        }
    }
}

template <int N>
void check_mul_consistency(std::uint64_t seed, int iters) {
    const Network net = make_mul_network(N);
    const auto labels = mul_network_labels(N);
    std::mt19937_64 rng(seed);
    for (int t = 0; t < iters; ++t) {
        const auto x = adversarial<double, N>(rng, -12, 12);
        const auto y = adversarial<double, N>(rng, -12, 12);
        std::vector<double> w(labels.size());
        for (std::size_t k = 0; k < labels.size(); ++k) {
            const auto i = static_cast<std::size_t>(labels[k][1] - '0');
            const auto j = static_cast<std::size_t>(labels[k][2] - '0');
            if (labels[k][0] == 'p') {
                w[k] = x.limb[i] * y.limb[j];
            } else {
                w[k] = std::fma(x.limb[i], y.limb[j], -(x.limb[i] * y.limb[j]));
            }
        }
        execute(net, std::span<double>(w));
        const auto z = mul(x, y);
        for (int k = 0; k < N; ++k) {
            ASSERT_EQ(w[static_cast<std::size_t>(net.outputs[static_cast<std::size_t>(k)])],
                      z.limb[k])
                << "N=" << N << " case " << t << " limb " << k;
        }
    }
}

TEST(FpanConsistency, Add2) { check_add_consistency<2>(11, 20000); }
TEST(FpanConsistency, Add3) { check_add_consistency<3>(22, 20000); }
TEST(FpanConsistency, Add4) { check_add_consistency<4>(33, 20000); }
TEST(FpanConsistency, Mul2) { check_mul_consistency<2>(44, 20000); }
TEST(FpanConsistency, Mul3) { check_mul_consistency<3>(55, 20000); }
TEST(FpanConsistency, Mul4) { check_mul_consistency<4>(66, 20000); }

TEST(FpanExecutor, RunsOverFloat) {
    // The executor is value-type generic: float wires behave like the
    // float-based kernels.
    const Network net = make_add_network(2);
    std::mt19937_64 rng(77);
    for (int t = 0; t < 5000; ++t) {
        const auto x = adversarial<float, 2>(rng);
        const auto y = adversarial<float, 2>(rng);
        float w[4] = {x.limb[0], y.limb[0], x.limb[1], y.limb[1]};
        execute(net, std::span<float>(w, 4));
        const auto z = add(x, y);
        EXPECT_EQ(w[net.outputs[0]], z.limb[0]);
        EXPECT_EQ(w[net.outputs[1]], z.limb[1]);
    }
}

TEST(FpanExecutor, AddGateDiscardsAndKillsWire) {
    Network n;
    n.num_wires = 2;
    n.gates = {{GateKind::Add, 0, 1}};
    n.outputs = {0};
    double w[2] = {1.0, 0x1p-80};
    execute(n, std::span<double>(w, 2));
    EXPECT_EQ(w[0], 1.0);  // rounding discarded the tiny addend
    EXPECT_EQ(w[1], 0.0);  // dead wire zeroed
}

}  // namespace
