// BigFloat software FPU: cross-validated bit-for-bit against IEEE double
// hardware at p = 53 and against __float128 at p = 113, plus directed
// rounding edge cases. This is what qualifies BigFloat as the oracle for
// every other test in the suite.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "bigfloat/bigfloat.hpp"

namespace {

using mf::big::BigFloat;

BigFloat bf(double x) { return BigFloat::from_double(x); }

class BigFloatHardware : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BigFloatHardware, AddMatchesDoubleRNE) {
    std::mt19937_64 rng(GetParam());
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    for (int i = 0; i < 30000; ++i) {
        const double a = std::ldexp(u(rng), static_cast<int>(rng() % 80) - 40);
        const double b = std::ldexp(u(rng), static_cast<int>(rng() % 80) - 40);
        EXPECT_EQ((bf(a) + bf(b)).round(53).to_double(), a + b) << a << " " << b;
    }
}

TEST_P(BigFloatHardware, MulMatchesDoubleRNE) {
    std::mt19937_64 rng(GetParam() + 100);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    for (int i = 0; i < 30000; ++i) {
        const double a = std::ldexp(u(rng), static_cast<int>(rng() % 80) - 40);
        const double b = std::ldexp(u(rng), static_cast<int>(rng() % 80) - 40);
        EXPECT_EQ((bf(a) * bf(b)).round(53).to_double(), a * b);
    }
}

TEST_P(BigFloatHardware, DivMatchesDoubleRNE) {
    std::mt19937_64 rng(GetParam() + 200);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    for (int i = 0; i < 20000; ++i) {
        const double a = std::ldexp(u(rng), static_cast<int>(rng() % 60) - 30);
        double b = std::ldexp(u(rng), static_cast<int>(rng() % 60) - 30);
        if (b == 0.0) b = 1.0;
        EXPECT_EQ(BigFloat::div(bf(a), bf(b), 53).to_double(), a / b);
    }
}

TEST_P(BigFloatHardware, SqrtMatchesDoubleRNE) {
    std::mt19937_64 rng(GetParam() + 300);
    std::uniform_real_distribution<double> u(0.0, 1.0);
    for (int i = 0; i < 20000; ++i) {
        const double a = std::ldexp(u(rng), static_cast<int>(rng() % 80) - 40);
        EXPECT_EQ(BigFloat::sqrt(bf(a), 53).to_double(), std::sqrt(a));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigFloatHardware, ::testing::Values(11, 22, 33));

TEST(BigFloatQuad, MatchesFloat128) {
    // __float128 has a 113-bit mantissa; libquadmath is the genuine GCC
    // quad-precision library, giving an independent high-precision referee.
    std::mt19937_64 rng(42);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    for (int i = 0; i < 20000; ++i) {
        const double a = std::ldexp(u(rng), static_cast<int>(rng() % 40) - 20);
        const double b = std::ldexp(u(rng), static_cast<int>(rng() % 40) - 20);
        const __float128 qa = a;
        const __float128 qb = b;
        // Compare through exact decomposition: q = hi + lo with two doubles
        // is not enough for 113 bits, so check that BigFloat rounded to 113
        // bits equals the __float128 result converted back in two pieces.
        const __float128 qs = qa + qb;
        const double hi = static_cast<double>(qs);
        const double lo = static_cast<double>(qs - static_cast<__float128>(hi));
        const double lo2 =
            static_cast<double>(qs - static_cast<__float128>(hi) - static_cast<__float128>(lo));
        const BigFloat want = bf(hi) + bf(lo) + bf(lo2);
        EXPECT_EQ(BigFloat::cmp((bf(a) + bf(b)).round(113), want), 0);

        const __float128 qp = qa * qb;
        const double phi = static_cast<double>(qp);
        const double plo = static_cast<double>(qp - static_cast<__float128>(phi));
        const double plo2 =
            static_cast<double>(qp - static_cast<__float128>(phi) - static_cast<__float128>(plo));
        const BigFloat wantp = bf(phi) + bf(plo) + bf(plo2);
        EXPECT_EQ(BigFloat::cmp((bf(a) * bf(b)).round(113), wantp), 0);
    }
}

TEST(BigFloatRound, TiesToEven) {
    // 0b101 rounded to 2 bits: tie between 0b10 (even lsb) and 0b11 -> 0b100.
    const BigFloat five = BigFloat::from_int(5);
    EXPECT_EQ(five.round(2).to_double(), 4.0);
    // 0b111 rounded to 2 bits: tie between 0b11 and 0b100(=0b10 at scale) ->
    // 7 = 0b111 -> candidates 6 (0b110, even) and 8 (0b1000); 7 is exactly
    // between -> even mantissa wins -> 8 (mantissa 0b10).
    const BigFloat seven = BigFloat::from_int(7);
    EXPECT_EQ(seven.round(2).to_double(), 8.0);
    // Non-tie: 0b1101 (13) to 3 bits: candidates 12, 14; 13 is tie -> 12 even.
    EXPECT_EQ(BigFloat::from_int(13).round(3).to_double(), 12.0);
    // 0b11011 (27) to 3 bits: 26?? grid is 24, 28; 27 closer to 28.
    EXPECT_EQ(BigFloat::from_int(27).round(3).to_double(), 28.0);
}

TEST(BigFloatRound, NoOpBelowPrecision) {
    const BigFloat x = bf(1.5);
    EXPECT_EQ(BigFloat::cmp(x.round(200), x), 0);
    EXPECT_EQ(x.round(2).to_double(), 1.5);  // exactly representable in 2 bits
}

TEST(BigFloatRound, CarryPropagation) {
    // 0b1111 rounded to 3 bits -> 0b10000 (carry ripples through).
    EXPECT_EQ(BigFloat::from_int(15).round(3).to_double(), 16.0);
    EXPECT_EQ(BigFloat::from_int(255).round(4).to_double(), 256.0);
}

TEST(BigFloatExact, AdditionIsExact) {
    // Huge exponent gaps must not lose bits in the exact layer.
    const BigFloat big = bf(1.0).ldexp(400);
    const BigFloat tiny = bf(1.0).ldexp(-400);
    const BigFloat sum = big + tiny;
    EXPECT_EQ(BigFloat::cmp(sum - big, tiny), 0);
    EXPECT_EQ(sum.mantissa_bits(), 801);
}

TEST(BigFloatExact, CancellationToZero) {
    const BigFloat a = bf(3.7);
    EXPECT_TRUE((a - a).is_zero());
    EXPECT_EQ((a - a).sign(), 0);
}

TEST(BigFloatDiv, ExactQuotients) {
    EXPECT_EQ(BigFloat::div(BigFloat::from_int(6), BigFloat::from_int(3), 53).to_double(), 2.0);
    EXPECT_EQ(BigFloat::div(BigFloat::from_int(1), BigFloat::from_int(1024), 53).to_double(),
              0x1p-10);
    // 1/3 at increasing precision is monotone-alternating around 1/3.
    const BigFloat third20 = BigFloat::div(BigFloat::from_int(1), BigFloat::from_int(3), 20);
    const BigFloat third60 = BigFloat::div(BigFloat::from_int(1), BigFloat::from_int(3), 60);
    EXPECT_NE(BigFloat::cmp(third20, third60), 0);
}

TEST(BigFloatSqrt, PerfectSquares) {
    for (int i = 1; i < 300; ++i) {
        const BigFloat r = BigFloat::sqrt(BigFloat::from_int(std::int64_t(i) * i), 53);
        EXPECT_EQ(r.to_double(), static_cast<double>(i));
    }
}

TEST(BigFloatCmp, SignedOrdering) {
    EXPECT_LT(bf(-2.0), bf(-1.0));
    EXPECT_LT(bf(-1.0), BigFloat{});
    EXPECT_LT(BigFloat{}, bf(0.5));
    EXPECT_LT(bf(0.5), bf(0.5000001));
    EXPECT_EQ(BigFloat::cmp(bf(0.1), bf(0.1)), 0);
}

TEST(BigFloatMisc, IlogbAndUlp) {
    EXPECT_EQ(bf(1.0).ilogb(), 0);
    EXPECT_EQ(bf(1.5).ilogb(), 0);
    EXPECT_EQ(bf(2.0).ilogb(), 1);
    EXPECT_EQ(bf(0.75).ilogb(), -1);
    EXPECT_EQ(mf::big::ulp_at(bf(1.0), 53).to_double(), 0x1p-52);
}

TEST(BigFloatMisc, RoundTripAllDoubleClasses) {
    std::mt19937_64 rng(9);
    for (int i = 0; i < 20000; ++i) {
        const double x = std::ldexp(
            static_cast<double>(rng()) * (rng() % 2 ? 1 : -1),
            static_cast<int>(rng() % 400) - 250);
        if (!std::isfinite(x) || x == 0.0) continue;
        EXPECT_EQ(bf(x).to_double(), x);
    }
    EXPECT_EQ(bf(0.0).to_double(), 0.0);
}

TEST(BigFloatExpansion, FromExpansionSumsExactly) {
    const double limbs[3] = {1.0, 0x1p-60, -0x1p-130};
    const BigFloat v = BigFloat::from_expansion(std::span<const double>(limbs, 3));
    EXPECT_EQ(BigFloat::cmp(v, bf(1.0) + bf(0x1p-60) + bf(-0x1p-130)), 0);
}

}  // namespace
