// Exact comparisons, conversions, string I/O, numeric_limits.

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "support.hpp"

namespace {

using namespace mf;
using mf::big::BigFloat;
using mf::test::adversarial;
using mf::test::exact;

TEST(Compare, MatchesOracleOrdering) {
    std::mt19937_64 rng(1);
    for (int i = 0; i < 8000; ++i) {
        const Float64x3 x = adversarial<double, 3>(rng);
        const Float64x3 y = adversarial<double, 3>(rng);
        const int want = BigFloat::cmp(exact(x), exact(y));
        EXPECT_EQ(cmp(x, y), want);
        EXPECT_EQ(x < y, want < 0);
        EXPECT_EQ(x > y, want > 0);
        EXPECT_EQ(x == y, want == 0);
        EXPECT_EQ(x <= y, want <= 0);
        EXPECT_EQ(x >= y, want >= 0);
        EXPECT_EQ(x != y, want != 0);
    }
}

TEST(Compare, BoundaryRepresentationsCompareEqual) {
    // (1, +ulp/2) and (1+ulp, -ulp/2) encode the SAME real number: limb-wise
    // comparison would declare them different; exact comparison must not.
    const Float64x2 a({1.0, 0x1p-53});
    const Float64x2 b({1.0 + 0x1p-52, -0x1p-53});
    EXPECT_EQ(BigFloat::cmp(exact(a), exact(b)), 0);  // sanity: same value
    EXPECT_TRUE(a == b);
    EXPECT_FALSE(a < b);
    EXPECT_FALSE(a > b);
}

TEST(Compare, ScalarComparisons) {
    const Float64x2 x(2.5);
    EXPECT_TRUE(x == 2.5);
    EXPECT_TRUE(x > 2.0);
    EXPECT_TRUE(x < 3.0);
    EXPECT_TRUE(Float64x2({2.5, 0x1p-80}) > 2.5);
    EXPECT_TRUE(Float64x2({2.5, -0x1p-80}) < 2.5);
}

TEST(Compare, MinMax) {
    const Float64x2 a({1.0, 0x1p-60});
    const Float64x2 b({1.0, 0x1p-61});
    EXPECT_EQ(mf::max(a, b).limb[1], 0x1p-60);
    EXPECT_EQ(mf::min(a, b).limb[1], 0x1p-61);
}

TEST(Convert, RoundAndSubtractDecomposition) {
    // from_bigfloat implements Eq. 6; the result must be the canonical RNE
    // expansion: nonoverlapping and within 2^-(np+n-1) relatively.
    std::mt19937_64 rng(2);
    for (int i = 0; i < 500; ++i) {
        // Build a random 300-bit constant.
        BigFloat c = BigFloat::from_int(static_cast<std::int64_t>(rng() >> 12));
        for (int k = 0; k < 4; ++k) {
            c = c + BigFloat::from_int(static_cast<std::int64_t>(rng() >> 12)).ldexp(-60 * (k + 1));
        }
        if (c.is_zero()) continue;
        const auto x = from_bigfloat<double, 4>(c);
        EXPECT_TRUE(is_nonoverlapping(x));
        const BigFloat err = (exact(x) - c).abs();
        if (!err.is_zero()) {
            const BigFloat rel = BigFloat::div(err, c.abs(), 60);
            EXPECT_LE(rel.ilogb(), -(4 * 53 + 3)) << "case " << i;
        }
    }
}

TEST(Convert, StringRoundTrip) {
    std::mt19937_64 rng(3);
    for (int i = 0; i < 300; ++i) {
        const Float64x4 x = adversarial<double, 4>(rng, -20, 20);
        const std::string s = to_string(x);
        const Float64x4 back = from_string<double, 4>(s);
        // Full-precision decimal rendering uniquely determines the value to
        // within one unit in the last decimal place.
        const BigFloat diff = (exact(back) - exact(x)).abs();
        if (!diff.is_zero() && !exact(x).is_zero()) {
            const BigFloat rel = BigFloat::div(diff, exact(x).abs(), 60);
            EXPECT_LE(rel.ilogb(), -200) << s;
        }
    }
}

TEST(Convert, KnownDecimalStrings) {
    const auto x = from_string<double, 2>("0.1");
    // 0.1 at 107 bits differs from 0.1 at 53 bits.
    EXPECT_EQ(x.limb[0], 0.1);
    EXPECT_NE(x.limb[1], 0.0);
    const auto third = from_string<double, 3>("0.33333333333333333333333333333333333333333333333");
    EXPECT_EQ(third.limb[0], 1.0 / 3.0);
    EXPECT_EQ(to_string(Float64x2(1.0), 5), "1.0000e+0");
    EXPECT_EQ(to_string(Float64x2{}), "0");
}

TEST(Convert, OstreamOperator) {
    std::ostringstream os;
    os << Float64x2(0.5);
    EXPECT_TRUE(os.str().starts_with("5.000"));
    EXPECT_TRUE(os.str().ends_with("e-1"));
}

TEST(Convert, ToFloatIsLeadingApproximation) {
    std::mt19937_64 rng(4);
    for (int i = 0; i < 4000; ++i) {
        const Float64x3 x = adversarial<double, 3>(rng);
        const double d = x.to_float();
        const double want = exact(x).round(53).to_double();
        // Correctly rounded except at exact half-ulp representation ties,
        // where the low-to-high summation can double-round one ulp off.
        if (d != want) {
            const double ulp = std::ldexp(1.0, std::ilogb(want) - 52);
            EXPECT_LE(std::abs(d - want), ulp) << "case " << i;
        }
    }
    // Even canonical expansions can sit exactly on a tie, so correct rounding
    // is not guaranteed there either -- but mismatches must be rare ties, not
    // the common case.
    std::mt19937_64 rng2(5);
    int mismatches = 0;
    for (int i = 0; i < 1000; ++i) {
        const Float64x3 raw = adversarial<double, 3>(rng2);
        const Float64x3 x = from_bigfloat<double, 3>(exact(raw));
        const double d = x.to_float();
        const double want = exact(x).round(53).to_double();
        if (d != want) {
            ++mismatches;
            const double ulp = std::ldexp(1.0, std::ilogb(want) - 52);
            EXPECT_LE(std::abs(d - want), ulp) << "case " << i;
        }
    }
    EXPECT_LE(mismatches, 100);
}

TEST(Convert, ResizeWidenExact) {
    const Float64x2 x({1.0, 0x1p-60});
    const auto w = x.resize<4>();
    EXPECT_EQ(w.limb[0], 1.0);
    EXPECT_EQ(w.limb[1], 0x1p-60);
    EXPECT_EQ(w.limb[2], 0.0);
    EXPECT_EQ(w.limb[3], 0.0);
    const auto t = w.resize<2>();
    EXPECT_EQ(t.limb[0], 1.0);
    EXPECT_EQ(t.limb[1], 0x1p-60);
}

TEST(Limits, ReportedPrecision) {
    using L2 = std::numeric_limits<Float64x2>;
    using L4 = std::numeric_limits<Float64x4>;
    EXPECT_TRUE(L2::is_specialized);
    EXPECT_EQ(L2::digits, 107);   // 2*53 + 1
    EXPECT_EQ(L4::digits, 215);   // 4*53 + 3
    EXPECT_EQ(L2::radix, 2);
    EXPECT_GT(L2::digits10, 30);
    EXPECT_EQ(static_cast<double>(L2::max()), std::numeric_limits<double>::max());
    // epsilon is 2^(1 - digits): adding it to 1 must be representable and
    // distinguishable.
    const Float64x2 one(1.0);
    const Float64x2 nudged = one + L2::epsilon();
    EXPECT_TRUE(nudged > one);
}

TEST(Limits, FloatBase) {
    using L = std::numeric_limits<Float32x3>;
    EXPECT_EQ(L::digits, 3 * 24 + 2);
    EXPECT_TRUE(L::is_specialized);
}

TEST(Core, UnaryAndAbs) {
    const Float64x2 x({-1.5, 0x1p-60});
    EXPECT_EQ((-x).limb[0], 1.5);
    EXPECT_EQ((-x).limb[1], -0x1p-60);
    EXPECT_EQ(abs(x).limb[0], 1.5);
    EXPECT_EQ(abs(-x).limb[0], 1.5);
    EXPECT_EQ((+x).limb[0], -1.5);
}

TEST(Core, IsZeroAndFinite) {
    EXPECT_TRUE(Float64x3{}.is_zero());
    EXPECT_FALSE(Float64x3(1.0).is_zero());
    EXPECT_TRUE(Float64x3(1.0).is_finite());
    Float64x3 bad(1.0);
    bad.limb[1] = std::numeric_limits<double>::infinity();
    EXPECT_FALSE(bad.is_finite());
}

TEST(Core, RandomGenerators) {
    std::mt19937_64 rng(5);
    for (int i = 0; i < 2000; ++i) {
        const auto u = random_unit<double, 3>(rng);
        EXPECT_GE(u.limb[0], 0.0);
        EXPECT_LT(u.limb[0], 1.0 + 0x1p-50);
        EXPECT_TRUE(is_nonoverlapping(u));
        const auto s = random_signed<double, 4>(rng, -6, 6);
        EXPECT_TRUE(is_nonoverlapping(s));
        EXPECT_FALSE(s.is_zero());
    }
}

}  // namespace
