#pragma once
// Shared helpers for the test suite. The oracle glue and the adversarial
// input generators are the conformance layer's (src/check/), re-exported
// under the historical mf::test names so the seed-era tests keep reading
// the same; the generators gained optional subnormal-leading and
// near-overflow emission (paper §4.4's exponent-range caveat) on top of the
// old always-bound-safe default.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "check/generators.hpp"
#include "check/oracle.hpp"
#include "mf/multifloats.hpp"

namespace mf::test {

using big::BigFloat;

/// Exact value of an expansion (non-finite limbs excluded).
using check::exact;

/// log2 of |value(z) - want| / |want|; -infinity if exact, +infinity if
/// want == 0 but z != 0.
using check::rel_err_log2;

/// Paper error bounds (in bits below the result) for the arithmetic kernels.
template <int N>
constexpr int add_bound(int p) {
    return check::bound_bits(check::Op::add, p, N);
}
template <int N>
constexpr int mul_bound(int p) {
    return check::bound_bits(check::Op::mul, p, N);
}

/// Adversarial random expansion: random signs, exponent gaps from tight to
/// sparse, occasional zero tails. Always strictly nonoverlapping. With the
/// default flags every limb stays safely normal (the historical
/// distribution); `subnormals` mixes in subnormal-leading / gradual-underflow
/// tails and `near_overflow` mixes in leads a few doublings below overflow.
template <FloatingPoint T, int N>
MultiFloat<T, N> adversarial(std::mt19937_64& rng, int lead_min = -30, int lead_max = 30,
                             bool subnormals = false, bool near_overflow = false) {
    check::GenConfig cfg;
    cfg.lead_min = lead_min;
    cfg.lead_max = lead_max;
    cfg.subnormals = subnormals;
    cfg.near_overflow = near_overflow;
    if (subnormals && rng() % 4 == 0) return check::gen_subnormal<T, N>(rng, cfg);
    if (near_overflow && rng() % 4 == 0) return check::gen_near_overflow<T, N>(rng, cfg);
    return check::gen_ladder<T, N>(rng, cfg);
}

/// y ~ -x with one limb nudged: maximal cancellation through the networks.
using check::cancellation_partner;

#define MF_EXPECT_REL_BOUND(z, want, bound_bits)                               \
    do {                                                                       \
        const double l2_ = ::mf::test::rel_err_log2((z), (want));              \
        EXPECT_LE(l2_, -static_cast<double>(bound_bits))                       \
            << "relative error 2^" << l2_ << " exceeds bound 2^-" << (bound_bits); \
    } while (0)

}  // namespace mf::test
