#pragma once
// Shared helpers for the test suite: oracle glue between MultiFloat
// expansions and the exact BigFloat arithmetic, plus adversarial input
// generators.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <span>

#include "bigfloat/bigfloat.hpp"
#include "mf/multifloats.hpp"

namespace mf::test {

using big::BigFloat;

/// Exact value of an expansion.
template <FloatingPoint T, int N>
BigFloat exact(const MultiFloat<T, N>& x) {
    BigFloat acc;
    for (int i = 0; i < N; ++i)
        acc = acc + BigFloat::from_double(static_cast<double>(x.limb[i]));
    return acc;
}

/// log2 of |value(z) - want| / |want|; -infinity if exact, +infinity if
/// want == 0 but z != 0.
template <FloatingPoint T, int N>
double rel_err_log2(const MultiFloat<T, N>& z, const BigFloat& want) {
    const BigFloat err = exact(z) - want;
    if (err.is_zero()) return -std::numeric_limits<double>::infinity();
    if (want.is_zero()) return std::numeric_limits<double>::infinity();
    const BigFloat rel = BigFloat::div(err.abs(), want.abs(), 64);
    return std::log2(std::abs(rel.to_double()));
}

/// Paper error bounds (in bits below the result) for the arithmetic kernels.
template <int N>
constexpr int add_bound(int p) {
    return N == 2 ? 2 * p - 1 : N * p - N;
}
template <int N>
constexpr int mul_bound(int p) {
    return N == 2 ? 2 * p - 3 : N * p - N;
}

/// Adversarial random expansion: random signs, exponent gaps from tight to
/// sparse, occasional zero tails. Always strictly nonoverlapping.
template <FloatingPoint T, int N>
MultiFloat<T, N> adversarial(std::mt19937_64& rng, int lead_min = -30, int lead_max = 30) {
    constexpr int p = std::numeric_limits<T>::digits;
    std::uniform_real_distribution<T> u(T(1), T(2));
    std::uniform_int_distribution<int> lead(lead_min, lead_max);
    std::uniform_int_distribution<int> gapd(0, 12);
    MultiFloat<T, N> x{};
    int e = lead(rng);
    for (int i = 0; i < N; ++i) {
        if (i > 0 && rng() % 6 == 0) break;
        // Stay clear of the subnormal range: termwise operations on
        // subnormal limbs are not exact (paper §4.4's exponent-range caveat).
        if (e < std::numeric_limits<T>::min_exponent + p) break;
        x.limb[i] = std::ldexp(u(rng) * (rng() % 2 ? T(1) : T(-1)), e);
        e -= p + gapd(rng) + (rng() % 3 == 0 ? p : 0);
    }
    for (int i = 1; i < N; ++i) {
        const T hi = x.limb[i - 1];
        T& lo = x.limb[i];
        if (hi == T(0)) {
            lo = T(0);
            continue;
        }
        if (lo == T(0)) continue;
        // Strict nonoverlap: |lo| < (1/2) ulp(hi), with the exact boundary
        // |lo| == (1/2) ulp(hi) (a power of two) exercised occasionally.
        const int cap = std::ilogb(hi) - p - 1;
        if (std::ilogb(lo) > cap) lo = std::ldexp(lo, cap - std::ilogb(lo));
        if (rng() % 17 == 0) lo = std::copysign(std::ldexp(T(1), cap + 1), lo);
    }
    return x;
}

/// y ~ -x with one limb nudged: maximal cancellation through the networks.
template <FloatingPoint T, int N>
MultiFloat<T, N> cancellation_partner(const MultiFloat<T, N>& x, std::mt19937_64& rng) {
    MultiFloat<T, N> y = -x;
    const auto k = static_cast<int>(rng() % static_cast<unsigned>(N));
    if (y.limb[k] != T(0)) {
        y.limb[k] = std::nextafter(y.limb[k], rng() % 2 ? T(4) : T(-4));
    }
    return y;
}

#define MF_EXPECT_REL_BOUND(z, want, bound_bits)                               \
    do {                                                                       \
        const double l2_ = ::mf::test::rel_err_log2((z), (want));              \
        EXPECT_LE(l2_, -static_cast<double>(bound_bits))                       \
            << "relative error 2^" << l2_ << " exceeds bound 2^-" << (bound_bits); \
    } while (0)

}  // namespace mf::test
