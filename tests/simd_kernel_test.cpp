// Pack-level FPAN kernels and the runtime dispatch layer: every width and
// every available backend must be bit-for-bit identical to the scalar
// mf::add / mf::mul kernels on the elementwise paths -- including empty,
// sub-width, and W+-1 tail sizes and misaligned range starts -- and the
// reductions must match the historical eight-accumulator order (widths <= 8)
// or the exact oracle (wider). Mirrors tests/planar_test.cpp on the explicit
// SIMD path.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <random>
#include <type_traits>
#include <vector>

#include "blas/kernels.hpp"
#include "blas/planar.hpp"
#include "simd/simd.hpp"
#include "support.hpp"

namespace {

using namespace mf;
using mf::big::BigFloat;
using mf::test::adversarial;
using mf::test::exact;

template <typename T>
using Bits = std::conditional_t<sizeof(T) == 8, std::uint64_t, std::uint32_t>;

template <typename T>
Bits<T> bits(T x) {
    return std::bit_cast<Bits<T>>(x);
}

template <typename T, typename F>
void for_each_width(F f) {
    f(std::integral_constant<int, 1>{});
    f(std::integral_constant<int, 2>{});
    f(std::integral_constant<int, 4>{});
    f(std::integral_constant<int, 8>{});
    if constexpr (sizeof(T) == 4) f(std::integral_constant<int, 16>{});
}

/// RAII: run a test body under one backend, restore the original after.
class BackendGuard {
public:
    BackendGuard() : saved_(simd::active_backend()) {}
    ~BackendGuard() { simd::set_backend(saved_); }

private:
    simd::Backend saved_;
};

template <typename MF>
class SimdKernelTyped : public ::testing::Test {};

using Types = ::testing::Types<MultiFloat<double, 2>, MultiFloat<double, 3>,
                               MultiFloat<double, 4>, MultiFloat<float, 2>,
                               MultiFloat<float, 4>>;
TYPED_TEST_SUITE(SimdKernelTyped, Types);

/// Fill planar + reference AoS vectors with adversarial expansions.
template <typename T, int N>
void fill(std::mt19937_64& rng, std::size_t n, planar::Vector<T, N>& v,
          std::vector<MultiFloat<T, N>>& ref) {
    v.resize(n);
    ref.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        ref[i] = adversarial<T, N>(rng, -6, 6);
        v.set(i, ref[i]);
    }
}

TYPED_TEST(SimdKernelTyped, AddRangeEveryWidthBitExact) {
    using T = typename TypeParam::value_type;
    constexpr int N = TypeParam::num_limbs;
    std::mt19937_64 rng(21);
    for_each_width<T>([&](auto w) {
        constexpr int W = w();
        for (std::size_t n : {std::size_t(0), std::size_t(1), std::size_t(W - 1),
                              std::size_t(W), std::size_t(W + 1),
                              std::size_t(2 * W + 3), std::size_t(257)}) {
            planar::Vector<T, N> x, y, z;
            std::vector<TypeParam> xa, ya;
            fill(rng, n, x, xa);
            fill(rng, n, y, ya);
            z.resize(n);
            const T* xp[N];
            const T* yp[N];
            T* zp[N];
            for (int k = 0; k < N; ++k) {
                xp[k] = x.plane(k);
                yp[k] = y.plane(k);
                zp[k] = z.plane(k);
            }
            // Misaligned start: begin at element 1 when there is one.
            const std::size_t i0 = n > 4 ? 1 : 0;
            simd::kernels::add_range<T, N, W>(xp, yp, zp, i0, n);
            for (std::size_t i = i0; i < n; ++i) {
                const TypeParam want = add(xa[i], ya[i]);
                const TypeParam got = z.get(i);
                for (int k = 0; k < N; ++k) {
                    ASSERT_EQ(bits(got.limb[k]), bits(want.limb[k]))
                        << "W=" << W << " n=" << n << " i=" << i;
                }
            }
        }
    });
}

TYPED_TEST(SimdKernelTyped, FmaRangeEveryWidthBitExact) {
    using T = typename TypeParam::value_type;
    constexpr int N = TypeParam::num_limbs;
    std::mt19937_64 rng(22);
    for_each_width<T>([&](auto w) {
        constexpr int W = w();
        const TypeParam alpha = adversarial<T, N>(rng, -2, 2);
        for (std::size_t n : {std::size_t(0), std::size_t(1), std::size_t(W - 1),
                              std::size_t(W), std::size_t(W + 1),
                              std::size_t(3 * W + 1), std::size_t(129)}) {
            planar::Vector<T, N> x, y;
            std::vector<TypeParam> xa, ya;
            fill(rng, n, x, xa);
            fill(rng, n, y, ya);
            const T* xp[N];
            T* yp[N];
            for (int k = 0; k < N; ++k) {
                xp[k] = x.plane(k);
                yp[k] = y.plane(k);
            }
            simd::kernels::fma_range<T, N, W>(alpha, xp, yp, 0, n);
            for (std::size_t i = 0; i < n; ++i) {
                const TypeParam want = add(mul(alpha, xa[i]), ya[i]);
                const TypeParam got = y.get(i);
                for (int k = 0; k < N; ++k) {
                    ASSERT_EQ(bits(got.limb[k]), bits(want.limb[k]))
                        << "W=" << W << " n=" << n << " i=" << i;
                }
            }
        }
    });
}

/// Reference for the reduction: the historical eight-accumulator planar dot
/// (seed planar.hpp), written out scalar. Pack widths <= 8 must reproduce it
/// bit-for-bit.
template <typename T, int N>
MultiFloat<T, N> dot_ref8(const std::vector<MultiFloat<T, N>>& x,
                          const std::vector<MultiFloat<T, N>>& y) {
    constexpr std::size_t K = 8;
    const std::size_t n = x.size();
    MultiFloat<T, N> part[K]{};
    for (std::size_t blk = 0; blk + K <= n; blk += K) {
        for (std::size_t j = 0; j < K; ++j) {
            part[j] = add(part[j], mul(x[blk + j], y[blk + j]));
        }
    }
    MultiFloat<T, N> acc{};
    for (std::size_t j = 0; j < K; ++j) acc = add(acc, part[j]);
    for (std::size_t i = n - n % K; i < n; ++i) acc = add(acc, mul(x[i], y[i]));
    return acc;
}

TYPED_TEST(SimdKernelTyped, DotEveryWidthMatchesReference) {
    using T = typename TypeParam::value_type;
    constexpr int N = TypeParam::num_limbs;
    constexpr int p = std::numeric_limits<T>::digits;
    std::mt19937_64 rng(23);
    for_each_width<T>([&](auto w) {
        constexpr int W = w();
        for (std::size_t n : {std::size_t(0), std::size_t(1), std::size_t(W + 1),
                              std::size_t(65), std::size_t(256)}) {
            planar::Vector<T, N> x, y;
            std::vector<TypeParam> xa, ya;
            fill(rng, n, x, xa);
            fill(rng, n, y, ya);
            const T* xp[N];
            const T* yp[N];
            for (int k = 0; k < N; ++k) {
                xp[k] = x.plane(k);
                yp[k] = y.plane(k);
            }
            const TypeParam got = simd::kernels::dot<T, N, W>(xp, yp, n);
            if constexpr (W <= 8) {
                const TypeParam want = dot_ref8(xa, ya);
                for (int k = 0; k < N; ++k) {
                    ASSERT_EQ(bits(got.limb[k]), bits(want.limb[k]))
                        << "W=" << W << " n=" << n;
                }
            } else {
                BigFloat want;
                for (std::size_t i = 0; i < n; ++i) {
                    want = want + exact(xa[i]) * exact(ya[i]);
                }
                if (!want.is_zero()) {
                    MF_EXPECT_REL_BOUND(got, want, N * p - N - 16);
                }
            }
            // AoS kernel: identical accumulator discipline, identical result.
            const TypeParam got_aos =
                simd::kernels::dot_aos<T, N, W>(xa.data(), ya.data(), n);
            for (int k = 0; k < N; ++k) {
                ASSERT_EQ(bits(got_aos.limb[k]), bits(got.limb[k])) << "W=" << W;
            }
        }
    });
}

TYPED_TEST(SimdKernelTyped, DispatchedAxpyBitExactOnEveryBackend) {
    using T = typename TypeParam::value_type;
    constexpr int N = TypeParam::num_limbs;
    std::mt19937_64 rng(24);
    const std::size_t n = 173;
    planar::Vector<T, N> x;
    std::vector<TypeParam> xa, ya;
    fill(rng, n, x, xa);
    ya.resize(n);
    const TypeParam alpha = adversarial<T, N>(rng, -2, 2);
    BackendGuard guard;
    for (simd::Backend b : {simd::Backend::scalar, simd::Backend::sse2,
                            simd::Backend::avx2, simd::Backend::avx512,
                            simd::Backend::neon}) {
        if (!simd::set_backend(b)) continue;
        planar::Vector<T, N> y(n);
        for (std::size_t i = 0; i < n; ++i) {
            ya[i] = adversarial<T, N>(rng, -6, 6);
            y.set(i, ya[i]);
        }
        planar::axpy(alpha, x, y);
        for (std::size_t i = 0; i < n; ++i) {
            const TypeParam want = add(mul(alpha, xa[i]), ya[i]);
            const TypeParam got = y.get(i);
            for (int k = 0; k < N; ++k) {
                ASSERT_EQ(bits(got.limb[k]), bits(want.limb[k]))
                    << simd::backend_name(b) << " i=" << i;
            }
        }
    }
}

TYPED_TEST(SimdKernelTyped, TiledGemmBitIdenticalToPlanarGemm) {
    using T = typename TypeParam::value_type;
    constexpr int N = TypeParam::num_limbs;
    std::mt19937_64 rng(25);
    const std::size_t n = 13;
    const std::size_t k = 11;
    const std::size_t m = 17;
    planar::Vector<T, N> a, b;
    std::vector<TypeParam> aa, ba;
    fill(rng, n * k, a, aa);
    fill(rng, k * m, b, ba);
    planar::Vector<T, N> want(n * m);
    planar::gemm(a, b, want, n, k, m);
    // Ragged tiles, degenerate tiles, and tiles larger than the problem must
    // all reproduce the untiled ikj result exactly.
    for (const simd::TileShape tile :
         {simd::TileShape{4, 5, 3}, simd::TileShape{1, 1, 1},
          simd::TileShape{64, 512, 64}, simd::TileShape{13, 17, 11}}) {
        planar::Vector<T, N> c(n * m);
        simd::gemm_tiled(planar::matrix_view(a, n, k), planar::matrix_view(b, k, m),
                         planar::matrix_view(c, n, m), tile);
        for (std::size_t i = 0; i < n * m; ++i) {
            const TypeParam got = c.get(i);
            const TypeParam ref = want.get(i);
            for (int p = 0; p < N; ++p) {
                ASSERT_EQ(bits(got.limb[p]), bits(ref.limb[p]))
                    << "tile{" << tile.ti << "," << tile.tj << "," << tile.tk
                    << "} i=" << i;
            }
        }
    }
}

TYPED_TEST(SimdKernelTyped, BlasKernelsUseBitExactPackPath) {
    using T = typename TypeParam::value_type;
    constexpr int N = TypeParam::num_limbs;
    constexpr int p = std::numeric_limits<T>::digits;
    std::mt19937_64 rng(26);
    const std::size_t n = 97;
    std::vector<TypeParam> x(n), y(n), y0(n);
    for (std::size_t i = 0; i < n; ++i) {
        x[i] = adversarial<T, N>(rng, -4, 4);
        y[i] = y0[i] = adversarial<T, N>(rng, -4, 4);
    }
    const TypeParam alpha = adversarial<T, N>(rng, -2, 2);
    blas::axpy<TypeParam>(alpha, blas::view(x), blas::view(y));
    for (std::size_t i = 0; i < n; ++i) {
        const TypeParam want = add(mul(alpha, x[i]), y0[i]);
        for (int k = 0; k < N; ++k) {
            ASSERT_EQ(bits(y[i].limb[k]), bits(want.limb[k])) << i;
        }
    }
    const TypeParam d = blas::dot<TypeParam>(blas::view(x), blas::view(y));
    BigFloat want_d;
    for (std::size_t i = 0; i < n; ++i) want_d = want_d + exact(x[i]) * exact(y[i]);
    if (!want_d.is_zero()) {
        MF_EXPECT_REL_BOUND(d, want_d, N * p - N - 16);
    }
    // gemm: pack path must equal the scalar ikj fused-update reference.
    const std::size_t gn = 6, gk = 5, gm = 7;
    std::vector<TypeParam> ga(gn * gk), gb(gk * gm), gc(gn * gm), gref(gn * gm);
    for (auto& v : ga) v = adversarial<T, N>(rng, -4, 4);
    for (auto& v : gb) v = adversarial<T, N>(rng, -4, 4);
    blas::gemm<TypeParam>(blas::view(ga, gn, gk), blas::view(gb, gk, gm),
                          blas::view(gc, gn, gm));
    for (std::size_t i = 0; i < gn; ++i) {
        for (std::size_t j = 0; j < gm; ++j) gref[i * gm + j] = TypeParam{};
        for (std::size_t kk = 0; kk < gk; ++kk) {
            for (std::size_t j = 0; j < gm; ++j) {
                gref[i * gm + j] =
                    add(mul(ga[i * gk + kk], gb[kk * gm + j]), gref[i * gm + j]);
            }
        }
    }
    for (std::size_t i = 0; i < gn * gm; ++i) {
        for (int k = 0; k < N; ++k) {
            ASSERT_EQ(bits(gc[i].limb[k]), bits(gref[i].limb[k])) << i;
        }
    }
}

}  // namespace
