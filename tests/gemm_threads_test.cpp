// Thread-count invariance of the tiled and packed GEMMs (satellite of the
// mf::check conformance layer): gemm_tiled and gemm_packed must be
// bit-identical to the sequential planar GEMM no matter how many threads
// execute them -- both partition whole output blocks, never a dot product,
// so no reduction is ever reassociated -- and must serialize themselves when
// called from inside an enclosing parallel region instead of
// oversubscribing. gemm_packed is additionally swept across every available
// SIMD backend and both threading substrates (OpenMP and the std::thread
// fallback pool).

#include <gtest/gtest.h>

#include "check/differ.hpp"

namespace {

using namespace mf;
using namespace mf::check;

void expect_all_clean(const std::vector<DiffRecord>& diffs) {
    ASSERT_FALSE(diffs.empty());
    bool nested_seen = false;
    for (const DiffRecord& d : diffs) {
        EXPECT_EQ(d.mismatches, 0u)
            << d.kernel << " " << d.type << " N=" << d.limbs << " [" << d.backend << "]";
        if (d.backend.rfind("nested", 0) == 0) nested_seen = true;
    }
#if defined(_OPENMP)
    EXPECT_TRUE(nested_seen);
#else
    (void)nested_seen;
#endif
}

TEST(GemmThreads, BitIdenticalAcrossThreadCountsDouble2) {
    expect_all_clean(diff_gemm_threads<double, 2>(21, 23, 17, 19, {1, 2, 7, 16}));
}

TEST(GemmThreads, BitIdenticalAcrossThreadCountsDouble4) {
    expect_all_clean(diff_gemm_threads<double, 4>(22, 13, 11, 9, {1, 2, 7, 16}));
}

TEST(GemmThreads, BitIdenticalAcrossThreadCountsFloat3) {
    expect_all_clean(diff_gemm_threads<float, 3>(23, 15, 9, 14, {1, 2, 7, 16}));
}

// Ragged problem sizes that don't divide the tile shape, under an
// adversarial thread count larger than the tile grid.
TEST(GemmThreads, RaggedTilesOversubscribed) {
    expect_all_clean(diff_gemm_threads<double, 3>(24, 5, 3, 7, {16}));
    expect_all_clean(diff_gemm_threads<double, 2>(25, 1, 1, 1, {7}));
}

// --- packed engine -------------------------------------------------------
// diff_gemm_packed sweeps backends x thread counts x {OpenMP, pool}; every
// record must be clean (0 mismatches against sequential planar::gemm).

void expect_packed_clean(const std::vector<DiffRecord>& diffs) {
    ASSERT_FALSE(diffs.empty());
    for (const DiffRecord& d : diffs) {
        EXPECT_EQ(d.mismatches, 0u)
            << d.kernel << " " << d.type << " N=" << d.limbs << " [" << d.backend << "]";
    }
}

// Prime dims (none divides MR, NR, or any cache block) with auto blocks.
TEST(GemmPacked, BitIdenticalAcrossBackendsAndThreadsDouble2) {
    expect_packed_clean(diff_gemm_packed<double, 2>(31, 23, 17, 19, {1, 2, 8}));
}

TEST(GemmPacked, BitIdenticalAcrossBackendsAndThreadsDouble3) {
    expect_packed_clean(diff_gemm_packed<double, 3>(32, 13, 11, 9, {1, 2, 8}));
}

TEST(GemmPacked, BitIdenticalAcrossBackendsAndThreadsDouble4) {
    expect_packed_clean(diff_gemm_packed<double, 4>(33, 11, 7, 9, {1, 2, 8}));
}

TEST(GemmPacked, BitIdenticalAcrossBackendsAndThreadsFloat2) {
    expect_packed_clean(diff_gemm_packed<float, 2>(34, 15, 9, 14, {1, 2, 8}));
}

// Tiny pinned cache blocks: every macro-panel ends in mr/nr remainder
// micro-tiles and the k loop spans several kc blocks, so the packed-edge
// and partial-tile paths dominate.
TEST(GemmPacked, TinyBlocksForceEdgeTiles) {
    expect_packed_clean(diff_gemm_packed<double, 2>(35, 61, 67, 71, {1, 8},
                                                    mf::check::GenConfig{},
                                                    mf::blas::BlockShape{8, 8, 16}));
    expect_packed_clean(diff_gemm_packed<double, 3>(36, 29, 31, 37, {2},
                                                    mf::check::GenConfig{},
                                                    mf::blas::BlockShape{8, 8, 16}));
}

// Degenerate shapes must be exact no-ops (C untouched).
TEST(GemmPacked, DegenerateShapesAreNoOps) {
    using V = mf::MultiFloat<double, 2>;
    planar::Vector<double, 2> a, b, c(6);
    for (std::size_t i = 0; i < 6; ++i) c.set(i, V(double(i) + 0.5));
    blas::gemm_packed(planar::matrix_view(a, 0, 0), planar::matrix_view(b, 0, 3),
                      planar::matrix_view(c, 0, 3));
    blas::gemm_packed(planar::matrix_view(a, 2, 0), planar::matrix_view(b, 0, 3),
                      planar::matrix_view(c, 2, 3));
    for (std::size_t i = 0; i < 6; ++i) {
        EXPECT_EQ(c.get(i).limb[0], double(i) + 0.5);
    }
}

}  // namespace
