// Thread-count invariance of the tiled GEMM (satellite of the mf::check
// conformance layer): gemm_tiled must be bit-identical to the sequential
// planar GEMM no matter how many OpenMP threads execute it -- the tiling
// partitions output tiles, never a dot product, so no reduction is ever
// reassociated -- and must serialize itself when called from inside an
// enclosing parallel region instead of oversubscribing.

#include <gtest/gtest.h>

#include "check/differ.hpp"

namespace {

using namespace mf;
using namespace mf::check;

void expect_all_clean(const std::vector<DiffRecord>& diffs) {
    ASSERT_FALSE(diffs.empty());
    bool nested_seen = false;
    for (const DiffRecord& d : diffs) {
        EXPECT_EQ(d.mismatches, 0u)
            << d.kernel << " " << d.type << " N=" << d.limbs << " [" << d.backend << "]";
        if (d.backend.rfind("nested", 0) == 0) nested_seen = true;
    }
#if defined(_OPENMP)
    EXPECT_TRUE(nested_seen);
#else
    (void)nested_seen;
#endif
}

TEST(GemmThreads, BitIdenticalAcrossThreadCountsDouble2) {
    expect_all_clean(diff_gemm_threads<double, 2>(21, 23, 17, 19, {1, 2, 7, 16}));
}

TEST(GemmThreads, BitIdenticalAcrossThreadCountsDouble4) {
    expect_all_clean(diff_gemm_threads<double, 4>(22, 13, 11, 9, {1, 2, 7, 16}));
}

TEST(GemmThreads, BitIdenticalAcrossThreadCountsFloat3) {
    expect_all_clean(diff_gemm_threads<float, 3>(23, 15, 9, 14, {1, 2, 7, 16}));
}

// Ragged problem sizes that don't divide the tile shape, under an
// adversarial thread count larger than the tile grid.
TEST(GemmThreads, RaggedTilesOversubscribed) {
    expect_all_clean(diff_gemm_threads<double, 3>(24, 5, 3, 7, {16}));
    expect_all_clean(diff_gemm_threads<double, 2>(25, 1, 1, 1, {7}));
}

}  // namespace
