// MF_BOUNDS_CHECK shape/stride validation (DESIGN.md §12).
//
// This translation unit is compiled with MF_BOUNDS_CHECK=1 regardless of the
// global CMake option (see tests/CMakeLists.txt), so the death-tests below
// always exercise the checked build of the header-only kernels. Mismatched
// view shapes must abort with a diagnostic naming the entry point; matching
// shapes must run exactly as the unchecked build does (the macro is a pure
// predicate, no behavior change on the pass path).
//
// Death tests fork the process; "threadsafe" style re-execs the binary so
// the forked child is safe even though the parent may have spawned OpenMP
// worker threads. Shapes are kept tiny so the kernels stay on their serial
// paths inside the child.

#include <gtest/gtest.h>

#include <vector>

#include "blas/blas.hpp"
#include "mf/multifloat.hpp"

namespace {

using namespace mf;

using MF2 = MultiFloat<double, 2>;

class BlasBoundsDeathTest : public ::testing::Test {
protected:
    void SetUp() override {
        ::testing::FLAGS_gtest_death_test_style = "threadsafe";
        a_.assign(rows_ * cols_, MF2{});
        x_.assign(cols_, MF2{});
        y_.assign(rows_, MF2{});
    }
    static constexpr std::size_t rows_ = 3, cols_ = 4;
    std::vector<MF2> a_, x_, y_;
};

TEST_F(BlasBoundsDeathTest, AxpySizeMismatchAborts) {
    std::vector<MF2> shorty(cols_ - 1, MF2{});
    EXPECT_DEATH(blas::axpy(MF2{1.0}, blas::view(std::as_const(x_)),
                            blas::view(shorty)),
                 "bounds check failed: blas.axpy: x.size == y.size");
}

TEST_F(BlasBoundsDeathTest, DotSizeMismatchAborts) {
    EXPECT_DEATH((void)blas::dot(blas::view(std::as_const(x_)),
                                 blas::view(std::as_const(y_))),
                 "bounds check failed: blas.dot: x.size == y.size");
}

TEST_F(BlasBoundsDeathTest, GemvShapeMismatchAborts) {
    // x sized as rows (should be cols): a.cols == x.size fails.
    EXPECT_DEATH(blas::gemv(blas::view(std::as_const(a_), rows_, cols_),
                            blas::view(std::as_const(y_)), blas::view(y_)),
                 "bounds check failed: blas.gemv: a.cols == x.size");
    // y sized as cols (should be rows): a.rows == y.size fails.
    EXPECT_DEATH(blas::gemv(blas::view(std::as_const(a_), rows_, cols_),
                            blas::view(std::as_const(x_)), blas::view(x_)),
                 "bounds check failed: blas.gemv: a.rows == y.size");
}

TEST_F(BlasBoundsDeathTest, GemmInnerDimensionMismatchAborts) {
    // A is rows x cols; feeding A as both operands breaks a.cols == b.rows.
    std::vector<MF2> c(rows_ * rows_, MF2{});
    EXPECT_DEATH(blas::gemm(blas::view(std::as_const(a_), rows_, cols_),
                            blas::view(std::as_const(a_), rows_, cols_),
                            blas::view(c, rows_, rows_)),
                 "bounds check failed: blas.gemm: a.cols == b.rows");
}

TEST_F(BlasBoundsDeathTest, GemmOutputShapeMismatchAborts) {
    std::vector<MF2> b(cols_ * rows_, MF2{});
    std::vector<MF2> c_bad(cols_ * cols_, MF2{});
    EXPECT_DEATH(blas::gemm(blas::view(std::as_const(a_), rows_, cols_),
                            blas::view(std::as_const(b), cols_, rows_),
                            blas::view(c_bad, cols_, cols_)),
                 "bounds check failed: blas.gemm: a.rows == c.rows");
}

// Positive controls: matching shapes must pass through the checks and
// produce the usual results -- the macro must not reject valid calls.
TEST_F(BlasBoundsDeathTest, MatchingShapesRunClean) {
    for (std::size_t i = 0; i < a_.size(); ++i) a_[i] = MF2{1.0};
    for (std::size_t i = 0; i < cols_; ++i) x_[i] = MF2{2.0};
    blas::gemv(blas::view(std::as_const(a_), rows_, cols_),
               blas::view(std::as_const(x_)), blas::view(y_));
    for (std::size_t i = 0; i < rows_; ++i) {
        EXPECT_EQ(y_[i].limb[0], 2.0 * static_cast<double>(cols_));
    }
    std::vector<MF2> b(cols_ * rows_, MF2{1.0});
    std::vector<MF2> c(rows_ * rows_, MF2{});
    blas::gemm(blas::view(std::as_const(a_), rows_, cols_),
               blas::view(std::as_const(b), cols_, rows_),
               blas::view(c, rows_, rows_));
    EXPECT_EQ(c[0].limb[0], static_cast<double>(cols_));
    const MF2 d = blas::dot(blas::view(std::as_const(x_)),
                            blas::view(std::as_const(x_)));
    EXPECT_EQ(d.limb[0], 4.0 * static_cast<double>(cols_));
}

}  // namespace
