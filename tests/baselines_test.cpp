// Baseline libraries (QD and CAMPARY reimplementations, GMP, __float128):
// accuracy against the BigFloat oracle. These are the comparators of the
// paper's evaluation -- they must be honestly correct for the benchmark
// comparison to mean anything.

#include <gtest/gtest.h>

#include <random>
#include <span>

#include "baselines/campary/campary.hpp"
#include "baselines/gmp_float.hpp"
#include "baselines/qd/dd_real.hpp"
#include "baselines/qd/qd_real.hpp"
#include "bigfloat/bigfloat.hpp"
#include "support.hpp"

namespace {

using mf::big::BigFloat;

BigFloat bf(double x) { return BigFloat::from_double(x); }

double rel_log2(const BigFloat& got, const BigFloat& want) {
    const BigFloat err = (got - want).abs();
    if (err.is_zero()) return -1e9;
    if (want.is_zero()) return 1e9;
    return static_cast<double>(BigFloat::div(err, want.abs(), 64).ilogb());
}

// --- QD double-double -------------------------------------------------------

mf::qd::dd_real random_dd(std::mt19937_64& rng) {
    std::uniform_real_distribution<double> u(1.0, 2.0);
    const double hi = std::ldexp(u(rng) * (rng() % 2 ? 1 : -1),
                                 static_cast<int>(rng() % 20) - 10);
    const double lo = hi * 0x1p-53 * u(rng) * 0.5;
    const auto [h, l] = mf::two_sum(hi, lo);
    return {h, l};
}

BigFloat value(const mf::qd::dd_real& x) { return bf(x.hi) + bf(x.lo); }
BigFloat value(const mf::qd::qd_real& x) {
    return bf(x.x[0]) + bf(x.x[1]) + bf(x.x[2]) + bf(x.x[3]);
}
template <int N>
BigFloat value(const mf::campary::Expansion<N>& x) {
    BigFloat acc;
    for (int i = 0; i < N; ++i) acc = acc + bf(x.x[i]);
    return acc;
}

TEST(QdBaseline, DdAddAccuracy) {
    std::mt19937_64 rng(1);
    for (int i = 0; i < 10000; ++i) {
        const auto a = random_dd(rng);
        const auto b = random_dd(rng);
        const auto s = a + b;
        const BigFloat want = value(a) + value(b);
        if (!want.is_zero()) {
            EXPECT_LE(rel_log2(value(s), want), -104) << i;
        }
    }
}

TEST(QdBaseline, DdMulDivSqrtAccuracy) {
    std::mt19937_64 rng(2);
    for (int i = 0; i < 10000; ++i) {
        const auto a = random_dd(rng);
        const auto b = random_dd(rng);
        EXPECT_LE(rel_log2(value(a * b), value(a) * value(b)), -100) << i;
        EXPECT_LE(rel_log2(value(a / b), BigFloat::div(value(a), value(b), 140)), -100) << i;
        const auto abs_a = a.hi < 0 ? -a : a;
        EXPECT_LE(rel_log2(value(mf::qd::sqrt(abs_a)), BigFloat::sqrt(value(abs_a), 140)), -98)
            << i;
    }
}

mf::qd::qd_real random_qd(std::mt19937_64& rng) {
    std::uniform_real_distribution<double> u(1.0, 2.0);
    double l0 = std::ldexp(u(rng) * (rng() % 2 ? 1 : -1), static_cast<int>(rng() % 20) - 10);
    mf::qd::qd_real r(l0);
    for (int i = 1; i < 4; ++i) {
        r.x[i] = r.x[i - 1] * 0x1p-53 * (u(rng) - 1.5);
    }
    double c0 = r.x[0], c1 = r.x[1], c2 = r.x[2], c3 = r.x[3];
    mf::qd::detail::renorm(c0, c1, c2, c3);
    return {c0, c1, c2, c3};
}

TEST(QdBaseline, QdAddAccuracy) {
    std::mt19937_64 rng(3);
    for (int i = 0; i < 5000; ++i) {
        const auto a = random_qd(rng);
        const auto b = random_qd(rng);
        const BigFloat want = value(a) + value(b);
        if (!want.is_zero()) {
            EXPECT_LE(rel_log2(value(a + b), want), -200) << i;
        }
    }
}

TEST(QdBaseline, QdMulAccuracy) {
    std::mt19937_64 rng(4);
    for (int i = 0; i < 5000; ++i) {
        const auto a = random_qd(rng);
        const auto b = random_qd(rng);
        const BigFloat want = value(a) * value(b);
        if (!want.is_zero()) {
            EXPECT_LE(rel_log2(value(a * b), want), -200) << i;
        }
    }
}

TEST(QdBaseline, QdDivSqrtAccuracy) {
    std::mt19937_64 rng(5);
    for (int i = 0; i < 2000; ++i) {
        const auto a = random_qd(rng);
        const auto b = random_qd(rng);
        EXPECT_LE(rel_log2(value(a / b), BigFloat::div(value(a), value(b), 260)), -195) << i;
        const auto abs_a = a.x[0] < 0 ? -a : a;
        EXPECT_LE(rel_log2(value(mf::qd::sqrt(abs_a)), BigFloat::sqrt(value(abs_a), 260)), -190)
            << i;
    }
}

TEST(QdBaseline, QdCancellation) {
    std::mt19937_64 rng(6);
    for (int i = 0; i < 3000; ++i) {
        const auto a = random_qd(rng);
        const auto d = a - a;
        EXPECT_TRUE(value(d).is_zero()) << i;
    }
}

// --- CAMPARY certified expansions -------------------------------------------

template <int N>
mf::campary::Expansion<N> random_camp(std::mt19937_64& rng) {
    const auto x = mf::test::adversarial<double, N>(rng, -10, 10);
    mf::campary::Expansion<N> e;
    for (int i = 0; i < N; ++i) e.x[i] = x.limb[i];
    return e;
}

template <int N>
void campary_accuracy(std::uint64_t seed, int add_bound, int mul_bound) {
    std::mt19937_64 rng(seed);
    for (int i = 0; i < 5000; ++i) {
        const auto a = random_camp<N>(rng);
        const auto b = random_camp<N>(rng);
        const BigFloat ws = value(a) + value(b);
        if (!ws.is_zero()) {
            EXPECT_LE(rel_log2(value(a + b), ws), -add_bound) << "add " << i;
        }
        const BigFloat wm = value(a) * value(b);
        if (!wm.is_zero()) {
            EXPECT_LE(rel_log2(value(a * b), wm), -mul_bound) << "mul " << i;
        }
    }
}

TEST(CamparyBaseline, Accuracy2) { campary_accuracy<2>(7, 104, 100); }
TEST(CamparyBaseline, Accuracy3) { campary_accuracy<3>(8, 150, 150); }
TEST(CamparyBaseline, Accuracy4) { campary_accuracy<4>(9, 200, 200); }

TEST(CamparyBaseline, DivSqrt) {
    std::mt19937_64 rng(10);
    for (int i = 0; i < 1000; ++i) {
        auto a = random_camp<3>(rng);
        auto b = random_camp<3>(rng);
        if (value(b).is_zero()) b = mf::campary::Expansion<3>(2.0);
        if (value(a).is_zero()) continue;
        EXPECT_LE(rel_log2(value(a / b), BigFloat::div(value(a), value(b), 200)), -145) << i;
        const auto abs_a = value(a).sign() < 0 ? -a : a;
        EXPECT_LE(rel_log2(value(mf::campary::sqrt(abs_a)), BigFloat::sqrt(value(abs_a), 200)),
                  -145)
            << i;
    }
}

// --- GMP / __float128 --------------------------------------------------------

#if defined(MF_HAVE_GMP)
TEST(GmpBaseline, BasicArithmetic) {
    using mf::gmp::GmpFixed;
    const GmpFixed<208> a(1.5);
    const GmpFixed<208> b(0.25);
    EXPECT_EQ((a + b).to_double(), 1.75);
    EXPECT_EQ((a - b).to_double(), 1.25);
    EXPECT_EQ((a * b).to_double(), 0.375);
    EXPECT_EQ((a / b).to_double(), 6.0);
    EXPECT_GE(a.precision(), 208u);
}

TEST(GmpBaseline, HighPrecisionAccumulation) {
    // 1 + 2^-100 - 1 survives at 208 bits (would vanish in double).
    using mf::gmp::GmpFixed;
    GmpFixed<208> acc(1.0);
    acc += GmpFixed<208>(0x1p-100);
    acc -= GmpFixed<208>(1.0);
    EXPECT_EQ(acc.to_double(), 0x1p-100);
}
#endif

TEST(QuadmathBaseline, Float128Works) {
    const __float128 a = 1.0;
    const __float128 b = 0x1p-100;
    const __float128 s = a + b;
    EXPECT_EQ(static_cast<double>(s - a), 0x1p-100);  // 113-bit mantissa holds it
}

}  // namespace
