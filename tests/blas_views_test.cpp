// The view-based mf::blas public API (DESIGN.md §11): view construction and
// indexing, strided sub-matrix views, the umbrella header, the deprecated
// span signatures (still compiling, still correct, warning suppressed
// locally), and the gemm_tiled degenerate-shape regression.

#include <gtest/gtest.h>

#include <span>
#include <utility>
#include <vector>

#include <mf/mf.hpp>

namespace {

using mf::Float64x2;
using namespace mf::blas;

TEST(BlasViews, VectorViewBasics) {
    std::vector<double> v{1.0, 2.0, 3.0};
    VectorView<double> mv = view(v);
    EXPECT_EQ(mv.size, 3u);
    EXPECT_FALSE(mv.empty());
    mv[1] = 9.0;
    EXPECT_EQ(v[1], 9.0);
    const std::vector<double>& cv = v;
    ConstVectorView<double> ccv = view(cv);
    EXPECT_EQ(ccv[1], 9.0);
    // Mutable converts to const implicitly.
    ConstVectorView<double> conv = mv;
    EXPECT_EQ(conv[2], 3.0);
    EXPECT_TRUE(VectorView<double>{}.empty());
}

TEST(BlasViews, MatrixViewShapeAndStride) {
    // 3 x 4 storage, viewed as the left 3 x 2 block (stride 4).
    std::vector<double> m(12);
    for (std::size_t i = 0; i < 12; ++i) m[i] = double(i);
    MatrixView<double> full = view(m, 3, 4);
    EXPECT_TRUE(full.contiguous());
    EXPECT_EQ(full(2, 3), 11.0);
    MatrixView<double> block = view(m, 3, 2, 4);
    EXPECT_FALSE(block.contiguous());
    EXPECT_EQ(block.stride, 4u);
    EXPECT_EQ(block(1, 0), 4.0);
    EXPECT_EQ(block.row(2)[1], 9.0);
    ConstMatrixView<double> cblock = block;
    EXPECT_EQ(cblock(2, 1), 9.0);
}

// A strided C view writes only its block: gemm on sub-views composes with
// surrounding storage instead of clobbering it.
TEST(BlasViews, GemmOnStridedSubBlock) {
    const std::size_t n = 2, k = 3, m = 2, ld = 5;
    std::vector<double> a{1, 2, 3, 4, 5, 6};         // 2 x 3
    std::vector<double> b{1, 0, 0, 1, 1, 1};         // 3 x 2
    std::vector<double> c(n * ld, -7.0);             // 2 x 5 backing
    gemm<double>(view(a, n, k), view(b, k, m), view(c, n, m, ld));
    EXPECT_EQ(c[0], 1.0 + 3.0);   // row 0: [1 2 3] . cols of b
    EXPECT_EQ(c[1], 2.0 + 3.0);
    EXPECT_EQ(c[ld + 0], 4.0 + 6.0);
    EXPECT_EQ(c[ld + 1], 5.0 + 6.0);
    for (std::size_t i : {2u, 3u, 4u}) {
        EXPECT_EQ(c[i], -7.0) << i;        // outside the block: untouched
        EXPECT_EQ(c[ld + i], -7.0) << i;
    }
}

// The deprecated span signatures must keep compiling (with a warning,
// suppressed here) and forward to the identical kernels.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(BlasViews, DeprecatedSpanWrappersStillWork) {
    const std::size_t n = 17;
    std::vector<Float64x2> x, y_span, y_view;
    for (std::size_t i = 0; i < n; ++i) {
        x.emplace_back(1.0 + double(i) * 0x1p-30);
        y_span.emplace_back(2.0 - double(i) * 0x1p-29);
    }
    y_view = y_span;
    const Float64x2 alpha(1.125);
    axpy<Float64x2>(alpha, std::span<const Float64x2>{x.data(), n},
                    std::span<Float64x2>{y_span.data(), n});
    axpy<Float64x2>(alpha, view(std::as_const(x)), view(y_view));
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(y_span[i].limb[0], y_view[i].limb[0]) << i;
        EXPECT_EQ(y_span[i].limb[1], y_view[i].limb[1]) << i;
    }
    const Float64x2 d_span = dot<Float64x2>(std::span<const Float64x2>{x.data(), n},
                                            std::span<const Float64x2>{y_span.data(), n});
    const Float64x2 d_view = dot<Float64x2>(view(x), view(y_view));
    EXPECT_EQ(d_span.limb[0], d_view.limb[0]);
    EXPECT_EQ(d_span.limb[1], d_view.limb[1]);
    // gemm: positional sizes vs. shaped views.
    const std::size_t gn = 3, gk = 4, gm = 2;
    std::vector<double> ga(gn * gk, 1.5), gb(gk * gm, -2.0);
    std::vector<double> gc_span(gn * gm), gc_view(gn * gm);
    gemm<double>(std::span<const double>{ga.data(), gn * gk},
                 std::span<const double>{gb.data(), gk * gm},
                 std::span<double>{gc_span.data(), gn * gm}, gn, gk, gm);
    gemm<double>(view(ga, gn, gk), view(gb, gk, gm), view(gc_view, gn, gm));
    for (std::size_t i = 0; i < gn * gm; ++i) EXPECT_EQ(gc_span[i], gc_view[i]) << i;
}
#pragma GCC diagnostic pop

// Regression: gemm_tiled used to assume nonzero dims and tiles no larger
// than the matrix; both must now be safe no-ops / single-tile runs.
TEST(BlasViews, GemmTiledDegenerateShapes) {
    using mf::planar::matrix_view;
    mf::planar::Vector<double, 2> a, b, c(4);
    for (std::size_t i = 0; i < 4; ++i) c.set(i, mf::Float64x2(double(i)));
    // Zero k: no updates, C untouched.
    mf::simd::gemm_tiled(matrix_view(a, 2, 0), matrix_view(b, 0, 2),
                         matrix_view(c, 2, 2));
    // Zero rows / cols: nothing to touch at all.
    mf::simd::gemm_tiled(matrix_view(a, 0, 3), matrix_view(b, 3, 2),
                         matrix_view(c, 0, 2));
    for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(c.get(i).limb[0], double(i));
    // Oversized and zero tile dims clamp instead of dividing by zero.
    mf::planar::Vector<double, 2> a1(4), b1(4), c1(4), want(4);
    for (std::size_t i = 0; i < 4; ++i) {
        a1.set(i, mf::Float64x2(1.0 + double(i)));
        b1.set(i, mf::Float64x2(2.0 - double(i)));
    }
    mf::planar::gemm(a1, b1, want, 2, 2, 2);
    for (const mf::simd::TileShape tile :
         {mf::simd::TileShape{1024, 1024, 1024}, mf::simd::TileShape{0, 0, 0}}) {
        mf::planar::Vector<double, 2> got(4);
        mf::simd::gemm_tiled(matrix_view(a1, 2, 2), matrix_view(b1, 2, 2),
                             matrix_view(got, 2, 2), tile);
        for (std::size_t i = 0; i < 4; ++i) {
            EXPECT_EQ(got.get(i).limb[0], want.get(i).limb[0]) << i;
            EXPECT_EQ(got.get(i).limb[1], want.get(i).limb[1]) << i;
        }
    }
}

// The packed engine accepts the same planar views; spot-check it against
// planar::gemm here so the umbrella-header surface is exercised end to end
// (the exhaustive sweep lives in gemm_threads_test.cpp).
TEST(BlasViews, GemmPackedThroughUmbrellaHeader) {
    const std::size_t n = 7, k = 5, m = 9;
    mf::planar::Vector<double, 2> a(n * k), b(k * m), c(n * m), want(n * m);
    for (std::size_t i = 0; i < n * k; ++i) a.set(i, mf::Float64x2(0.5 + double(i)));
    for (std::size_t i = 0; i < k * m; ++i) b.set(i, mf::Float64x2(1.5 - double(i)));
    mf::planar::gemm(a, b, want, n, k, m);
    mf::blas::gemm_packed(mf::planar::matrix_view(a, n, k),
                          mf::planar::matrix_view(b, k, m),
                          mf::planar::matrix_view(c, n, m));
    for (std::size_t i = 0; i < n * m; ++i) {
        EXPECT_EQ(c.get(i).limb[0], want.get(i).limb[0]) << i;
        EXPECT_EQ(c.get(i).limb[1], want.get(i).limb[1]) << i;
    }
}

}  // namespace
