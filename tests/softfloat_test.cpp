// SoftFloat model: cross-validated against BigFloat at every precision and
// against hardware doubles at p = 53. This is what qualifies SoftFloat as the
// value type for exhaustive FPAN verification.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "bigfloat/bigfloat.hpp"
#include "softfloat/softfloat.hpp"

namespace {

using mf::big::BigFloat;
using mf::soft::SoftFloat;

BigFloat bf(double x) { return BigFloat::from_double(x); }

class SoftFloatPrecision : public ::testing::TestWithParam<int> {};

TEST_P(SoftFloatPrecision, AddMatchesBigFloat) {
    const int p = GetParam();
    std::mt19937_64 rng(p);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    for (int i = 0; i < 20000; ++i) {
        const double a0 = std::ldexp(u(rng), static_cast<int>(rng() % 30) - 15);
        const double b0 = std::ldexp(u(rng), static_cast<int>(rng() % 30) - 15);
        const SoftFloat a = SoftFloat::from_double(a0, p);
        const SoftFloat b = SoftFloat::from_double(b0, p);
        const double want =
            (bf(a.to_double()) + bf(b.to_double())).round(p).to_double();
        EXPECT_EQ((a + b).to_double(), want)
            << "p=" << p << " a=" << a.to_double() << " b=" << b.to_double();
    }
}

TEST_P(SoftFloatPrecision, MulMatchesBigFloat) {
    const int p = GetParam();
    std::mt19937_64 rng(p + 50);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    for (int i = 0; i < 20000; ++i) {
        const SoftFloat a =
            SoftFloat::from_double(std::ldexp(u(rng), static_cast<int>(rng() % 20) - 10), p);
        const SoftFloat b =
            SoftFloat::from_double(std::ldexp(u(rng), static_cast<int>(rng() % 20) - 10), p);
        const double want =
            (bf(a.to_double()) * bf(b.to_double())).round(p).to_double();
        EXPECT_EQ((a * b).to_double(), want);
    }
}

TEST_P(SoftFloatPrecision, TwoProdIsExact) {
    const int p = GetParam();
    std::mt19937_64 rng(p + 99);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    for (int i = 0; i < 10000; ++i) {
        const SoftFloat a =
            SoftFloat::from_double(std::ldexp(u(rng), static_cast<int>(rng() % 20) - 10), p);
        const SoftFloat b =
            SoftFloat::from_double(std::ldexp(u(rng), static_cast<int>(rng() % 20) - 10), p);
        const auto [prod, err] = mf::soft::two_prod(a, b);
        const BigFloat exact = bf(a.to_double()) * bf(b.to_double());
        EXPECT_EQ(BigFloat::cmp(bf(prod.to_double()) + bf(err.to_double()), exact), 0);
        EXPECT_EQ(prod.to_double(), (a * b).to_double());
    }
}

INSTANTIATE_TEST_SUITE_P(Precisions, SoftFloatPrecision,
                         ::testing::Values(3, 4, 5, 8, 11, 24, 53));

TEST(SoftFloat, MatchesHardwareDoubleAt53) {
    std::mt19937_64 rng(7);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    for (int i = 0; i < 30000; ++i) {
        const double a = std::ldexp(u(rng), static_cast<int>(rng() % 60) - 30);
        const double b = std::ldexp(u(rng), static_cast<int>(rng() % 60) - 30);
        const SoftFloat sa = SoftFloat::from_double(a, 53);
        const SoftFloat sb = SoftFloat::from_double(b, 53);
        EXPECT_EQ((sa + sb).to_double(), a + b);
        EXPECT_EQ((sa - sb).to_double(), a - b);
        EXPECT_EQ((sa * sb).to_double(), a * b);
    }
}

TEST(SoftFloat, HugeGapReturnsBigOperand) {
    const SoftFloat a = SoftFloat::from_double(1.0, 5);
    const SoftFloat tiny = SoftFloat::from_double(0x1p-40, 5);
    EXPECT_EQ((a + tiny).to_double(), 1.0);
    EXPECT_EQ((a - tiny).to_double(), 1.0);
    EXPECT_EQ((tiny + a).to_double(), 1.0);
}

TEST(SoftFloat, SubtractAcrossPowerOfTwo) {
    // 1.0 - eps in p=4: spacing below 1 is 2^-4, so 1 - 2^-5 == 1 - 2^-5
    // exactly (it is representable: 0.96875 = 0b0.11111).
    const SoftFloat one = SoftFloat::from_double(1.0, 4);
    const SoftFloat eps = SoftFloat::from_double(0x1p-5, 4);
    const double got = (one - eps).to_double();
    const double want = (bf(1.0) - bf(0x1p-5)).round(4).to_double();
    EXPECT_EQ(got, want);
}

TEST(SoftFloat, RoundTiesToEvenAtTinyPrecision) {
    // p=3: 9 = 0b1001 rounds between 8 (0b100) and 10 (0b101): tie -> 8.
    const SoftFloat v = SoftFloat::from_double(9.0, 3);
    EXPECT_EQ(v.to_double(), 8.0);
    // 11 = 0b1011 -> candidates 10, 12; closer to... 11 tie -> 12 (even).
    EXPECT_EQ(SoftFloat::from_double(11.0, 3).to_double(), 12.0);
}

TEST(SoftFloat, ZeroHandling) {
    const SoftFloat z(5);
    const SoftFloat a = SoftFloat::from_double(3.5, 5);
    EXPECT_TRUE(z.is_zero());
    EXPECT_EQ((z + a).to_double(), 3.5);
    EXPECT_EQ((a - a).to_double(), 0.0);
    EXPECT_TRUE((a - a).is_zero());
    EXPECT_TRUE((z * a).is_zero());
}

TEST(SoftFloat, ComparisonMatchesValues) {
    std::mt19937_64 rng(8);
    std::uniform_real_distribution<double> u(-4.0, 4.0);
    for (int i = 0; i < 10000; ++i) {
        const SoftFloat a = SoftFloat::from_double(u(rng), 6);
        const SoftFloat b = SoftFloat::from_double(u(rng), 6);
        const double da = a.to_double();
        const double db = b.to_double();
        EXPECT_EQ(cmp(a, b) < 0, da < db);
        EXPECT_EQ(cmp(a, b) == 0, da == db);
    }
}

TEST(SoftFloat, EnumerationCountsAndValidity) {
    // p = 3, exponents [0, 1]: 2 exponents x 4 mantissas x 2 signs + zero.
    int count = 0;
    mf::soft::for_each_value(3, 0, 1, [&](const SoftFloat& v) {
        ++count;
        if (!v.is_zero()) {
            EXPECT_GE(v.ilogb(), 0);
            EXPECT_LE(v.ilogb(), 1);
            // Round-tripping through double must be identity (values exact).
            EXPECT_EQ(SoftFloat::from_double(v.to_double(), 3).to_double(), v.to_double());
        }
    });
    EXPECT_EQ(count, 1 + 2 * 4 * 2);
}

TEST(SoftFloat, UlpAccessor) {
    const SoftFloat one = SoftFloat::from_double(1.0, 6);
    EXPECT_EQ(one.ulp().to_double(), 0x1p-5);
    const SoftFloat eight = SoftFloat::from_double(8.0, 6);
    EXPECT_EQ(eight.ulp().to_double(), 0x1p-2);
}

}  // namespace
