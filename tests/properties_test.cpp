// Property-based sweeps: algebraic laws that extended-precision arithmetic
// must satisfy to working accuracy, across every (T, N) and many seeds.
// These are the "does it behave like a number type" guarantees a downstream
// scientific user relies on.

#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "support.hpp"

namespace {

using namespace mf;
using mf::big::BigFloat;
using mf::test::adversarial;
using mf::test::exact;

// Parameter: (N encoded via runtime switch, seed). gtest TEST_P gives us the
// cartesian sweep; the body dispatches on N.
class AlgebraicLaws : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

template <int N>
void check_laws(std::uint64_t seed) {
    constexpr int p = 53;
    // Working accuracy with headroom for chained operations: the error of an
    // intermediate is relative to THAT intermediate, which can exceed the
    // final result by the operands' magnitude ratio (leads span 2^-4..2^4,
    // so up to 8 bits), plus a couple of bits for the second rounding.
    const int bound = N * p - N - 12;
    std::mt19937_64 rng(seed);
    for (int i = 0; i < 1500; ++i) {
        const auto a = adversarial<double, N>(rng, -4, 4);
        const auto b = adversarial<double, N>(rng, -4, 4);
        const auto c = adversarial<double, N>(rng, -4, 4);

        // (a + b) - b ~ a
        {
            const auto got = sub(add(a, b), b);
            if (!exact(a).is_zero()) MF_EXPECT_REL_BOUND(got, exact(a), bound);
        }
        // associativity to working precision: (a+b)+c ~ a+(b+c)
        {
            const auto l = add(add(a, b), c);
            const auto want = exact(a) + exact(b) + exact(c);
            if (!want.is_zero()) MF_EXPECT_REL_BOUND(l, want, bound);
            const auto r = add(a, add(b, c));
            if (!want.is_zero()) MF_EXPECT_REL_BOUND(r, want, bound);
        }
        // distributivity to working precision: a*(b+c) ~ a*b + a*c
        {
            const auto l = mul(a, add(b, c));
            const auto want = exact(a) * (exact(b) + exact(c));
            if (!want.is_zero()) MF_EXPECT_REL_BOUND(l, want, bound);
            const auto r = add(mul(a, b), mul(a, c));
            if (!want.is_zero()) MF_EXPECT_REL_BOUND(r, want, bound);
        }
        // negation distributes exactly: -(a+b) == (-a)+(-b)
        {
            const auto l = -add(a, b);
            const auto r = add(-a, -b);
            for (int k = 0; k < N; ++k) EXPECT_EQ(l.limb[k], r.limb[k]);
        }
        // monotonicity of comparison under addition of a positive value
        {
            const auto pos = abs(c);
            if (!pos.is_zero()) {
                EXPECT_TRUE(add(a, pos) > a) << "i=" << i;
                EXPECT_TRUE(sub(a, pos) < a) << "i=" << i;
            }
        }
    }
}

TEST_P(AlgebraicLaws, Hold) {
    const auto [n, seed] = GetParam();
    switch (n) {
        case 2:
            check_laws<2>(seed);
            break;
        case 3:
            check_laws<3>(seed);
            break;
        default:
            check_laws<4>(seed);
            break;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AlgebraicLaws,
                         ::testing::Combine(::testing::Values(2, 3, 4),
                                            ::testing::Values(1u, 2u, 3u, 4u)));

// fma at extended precision.
TEST(Properties, FmaMatchesMulAdd) {
    std::mt19937_64 rng(5);
    for (int i = 0; i < 3000; ++i) {
        const auto a = adversarial<double, 3>(rng, -8, 8);
        const auto b = adversarial<double, 3>(rng, -8, 8);
        const auto c = adversarial<double, 3>(rng, -8, 8);
        const auto l = mf::fma(a, b, c);
        const auto r = add(mul(a, b), c);
        for (int k = 0; k < 3; ++k) EXPECT_EQ(l.limb[k], r.limb[k]);
    }
}

// Telescoping series: add a list of terms, then subtract them again. The
// residual is not exactly zero (each += rounds at 4*53+3 bits and the two
// traversals round differently) but must stay at the octuple-precision noise
// floor relative to the largest term.
TEST(Properties, TelescopingSeriesCancelsToNoiseFloor) {
    for (int len : {5, 17, 64, 200}) {
        Float64x4 acc{};
        std::mt19937_64 rng(static_cast<std::uint64_t>(len));
        std::vector<Float64x4> terms;
        for (int i = 0; i < len; ++i) terms.push_back(adversarial<double, 4>(rng, -6, 6));
        for (const auto& t : terms) acc += t;
        for (const auto& t : terms) acc -= t;
        // |residual| <= len * 2^-(4*53-4) * max|term| (max|term| < 2^7).
        const double ceiling = len * 0x1p-208 * 0x1p7;
        EXPECT_LE(std::abs(acc.limb[0]), ceiling) << "len=" << len;
    }
}

// Compensated-summation stress: sum of n terms matches the oracle within the
// N-term bound times a modest growth factor.
TEST(Properties, LongAccumulationStaysTight) {
    std::mt19937_64 rng(6);
    Float64x3 acc{};
    BigFloat want;
    for (int i = 0; i < 5000; ++i) {
        const auto t = adversarial<double, 3>(rng, -10, 10);
        acc += t;
        want = want + exact(t);
    }
    if (!want.is_zero()) {
        // Allow log2(5000) ~ 12.3 bits of growth over the single-op bound.
        MF_EXPECT_REL_BOUND(acc, want, 3 * 53 - 3 - 13);
    }
    EXPECT_TRUE(is_nonoverlapping(acc));
}

// Heron's iteration fixpoint: sqrt via the library agrees with the Babylonian
// method run at extended precision.
TEST(Properties, BabylonianAgreesWithSqrt) {
    std::mt19937_64 rng(7);
    for (int i = 0; i < 200; ++i) {
        auto a = abs(adversarial<double, 2>(rng, -4, 4));
        if (a.is_zero()) continue;
        Float64x2 x(static_cast<double>(a.limb[0]) < 0 ? 1.0 : std::sqrt(a.limb[0]));
        for (int k = 0; k < 6; ++k) {
            x = ldexp(add(x, div(a, x)), -1);
        }
        const auto want = BigFloat::sqrt(exact(a), 140);
        MF_EXPECT_REL_BOUND(x, want, 100);
    }
}

// Dekker's classic: splitting constants survive round trips at every N.
TEST(Properties, ExactScalingRoundTrip) {
    std::mt19937_64 rng(8);
    for (int i = 0; i < 3000; ++i) {
        const auto a = adversarial<double, 4>(rng);
        const auto up = ldexp(a, 37);
        const auto back = ldexp(up, -37);
        for (int k = 0; k < 4; ++k) EXPECT_EQ(back.limb[k], a.limb[k]);
    }
}

}  // namespace
