// Planar (SoA) kernels: bit-exact agreement with the scalar kernels where
// the operation order is identical (axpy, gemm), oracle-checked accuracy for
// the reduction kernels (dot, gemv) whose accumulation order differs, and
// layout round-trip invariants.

#include <gtest/gtest.h>

#include <random>

#include "blas/kernels.hpp"
#include "blas/planar.hpp"
#include "support.hpp"

namespace {

using namespace mf;
using mf::big::BigFloat;
using mf::test::adversarial;
using mf::test::exact;

template <typename MF>
class PlanarTyped : public ::testing::Test {};

using Types = ::testing::Types<MultiFloat<double, 2>, MultiFloat<double, 3>,
                               MultiFloat<double, 4>, MultiFloat<float, 2>,
                               MultiFloat<float, 4>>;
TYPED_TEST_SUITE(PlanarTyped, Types);

TYPED_TEST(PlanarTyped, GetSetRoundTrip) {
    using T = typename TypeParam::value_type;
    constexpr int N = TypeParam::num_limbs;
    std::mt19937_64 rng(1);
    planar::Vector<T, N> v(257);
    std::vector<TypeParam> ref(257);
    for (std::size_t i = 0; i < 257; ++i) {
        ref[i] = adversarial<T, N>(rng, -6, 6);
        v.set(i, ref[i]);
    }
    for (std::size_t i = 0; i < 257; ++i) {
        const TypeParam got = v.get(i);
        for (int k = 0; k < N; ++k) EXPECT_EQ(got.limb[k], ref[i].limb[k]);
    }
}

TYPED_TEST(PlanarTyped, AxpyBitExactVsScalarKernel) {
    using T = typename TypeParam::value_type;
    constexpr int N = TypeParam::num_limbs;
    std::mt19937_64 rng(2);
    for (std::size_t n : {1u, 8u, 63u, 512u}) {
        planar::Vector<T, N> x(n);
        planar::Vector<T, N> y(n);
        std::vector<TypeParam> xa(n);
        std::vector<TypeParam> ya(n);
        for (std::size_t i = 0; i < n; ++i) {
            xa[i] = adversarial<T, N>(rng, -6, 6);
            ya[i] = adversarial<T, N>(rng, -6, 6);
            x.set(i, xa[i]);
            y.set(i, ya[i]);
        }
        const TypeParam alpha = adversarial<T, N>(rng, -2, 2);
        planar::axpy(alpha, x, y);
        for (std::size_t i = 0; i < n; ++i) {
            const TypeParam want = add(mul(alpha, xa[i]), ya[i]);
            const TypeParam got = y.get(i);
            for (int k = 0; k < N; ++k) {
                ASSERT_EQ(got.limb[k], want.limb[k]) << "n=" << n << " i=" << i;
            }
        }
    }
}

TYPED_TEST(PlanarTyped, DotMatchesOracle) {
    using T = typename TypeParam::value_type;
    constexpr int N = TypeParam::num_limbs;
    constexpr int p = std::numeric_limits<T>::digits;
    std::mt19937_64 rng(3);
    for (std::size_t n : {1u, 7u, 64u, 333u}) {
        planar::Vector<T, N> x(n);
        planar::Vector<T, N> y(n);
        BigFloat want;
        for (std::size_t i = 0; i < n; ++i) {
            const TypeParam xe = adversarial<T, N>(rng, -4, 4);
            const TypeParam ye = adversarial<T, N>(rng, -4, 4);
            x.set(i, xe);
            y.set(i, ye);
            want = want + exact(xe) * exact(ye);
        }
        const TypeParam got = planar::dot(x, y);
        if (!want.is_zero()) {
            MF_EXPECT_REL_BOUND(got, want, N * p - N - 16);
        }
        EXPECT_TRUE(is_nonoverlapping(got));
    }
}

TYPED_TEST(PlanarTyped, GemvMatchesOracle) {
    using T = typename TypeParam::value_type;
    constexpr int N = TypeParam::num_limbs;
    constexpr int p = std::numeric_limits<T>::digits;
    std::mt19937_64 rng(4);
    const std::size_t n = 11;
    const std::size_t m = 9;
    planar::Vector<T, N> a(n * m);
    planar::Vector<T, N> x(m);
    planar::Vector<T, N> y(n);
    std::vector<BigFloat> want(n);
    std::vector<TypeParam> xa(m);
    for (std::size_t j = 0; j < m; ++j) {
        xa[j] = adversarial<T, N>(rng, -4, 4);
        x.set(j, xa[j]);
    }
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < m; ++j) {
            const TypeParam e = adversarial<T, N>(rng, -4, 4);
            a.set(i * m + j, e);
            want[i] = want[i] + exact(e) * exact(xa[j]);
        }
    }
    planar::gemv(a, n, m, x, y);
    for (std::size_t i = 0; i < n; ++i) {
        if (!want[i].is_zero()) {
            MF_EXPECT_REL_BOUND(y.get(i), want[i], N * p - N - 16);
        }
    }
}

TYPED_TEST(PlanarTyped, GemmBitExactVsScalarKernel) {
    using T = typename TypeParam::value_type;
    constexpr int N = TypeParam::num_limbs;
    std::mt19937_64 rng(5);
    const std::size_t n = 6;
    const std::size_t k = 5;
    const std::size_t m = 7;
    planar::Vector<T, N> a(n * k);
    planar::Vector<T, N> b(k * m);
    planar::Vector<T, N> c(n * m);
    std::vector<TypeParam> aa(n * k);
    std::vector<TypeParam> ba(k * m);
    std::vector<TypeParam> ca(n * m, TypeParam(T(0)));
    for (std::size_t i = 0; i < n * k; ++i) {
        aa[i] = adversarial<T, N>(rng, -4, 4);
        a.set(i, aa[i]);
    }
    for (std::size_t i = 0; i < k * m; ++i) {
        ba[i] = adversarial<T, N>(rng, -4, 4);
        b.set(i, ba[i]);
    }
    planar::gemm(a, b, c, n, k, m);
    blas::gemm<TypeParam>(blas::view(aa, n, k), blas::view(ba, k, m),
                          blas::view(ca, n, m));
    // Same ikj order, same fused update: bit-identical.
    for (std::size_t i = 0; i < n * m; ++i) {
        const TypeParam got = c.get(i);
        for (int p = 0; p < N; ++p) ASSERT_EQ(got.limb[p], ca[i].limb[p]) << i;
    }
}

TEST(Planar, VectorizationDoesNotChangeValues) {
    // Regression guard for the GCC 12 SLP value-changing bug (see top-level
    // CMakeLists): the vectorized planar path must agree bit-for-bit with
    // the scalar kernels on adversarial data, at scale.
    std::mt19937_64 rng(6);
    const std::size_t n = 8192;
    planar::Vector<double, 4> x(n);
    planar::Vector<double, 4> y(n);
    std::vector<Float64x4> xa(n);
    std::vector<Float64x4> ya(n);
    for (std::size_t i = 0; i < n; ++i) {
        xa[i] = mf::test::adversarial<double, 4>(rng);
        ya[i] = (i % 3 == 0) ? mf::test::cancellation_partner(xa[i], rng)
                             : mf::test::adversarial<double, 4>(rng);
        x.set(i, xa[i]);
        y.set(i, ya[i]);
    }
    const Float64x4 alpha = mf::test::adversarial<double, 4>(rng, -2, 2);
    planar::axpy(alpha, x, y);
    int mismatches = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const Float64x4 want = add(mul(alpha, xa[i]), ya[i]);
        const Float64x4 got = y.get(i);
        for (int k = 0; k < 4; ++k) mismatches += got.limb[k] != want.limb[k];
    }
    EXPECT_EQ(mismatches, 0);
}

}  // namespace
