// Addition/subtraction FPANs: error bounds (paper Figures 2-4) and the
// nonoverlap invariant, checked against the exact oracle over adversarial
// inputs for every (T, N) combination.

#include <gtest/gtest.h>

#include <random>

#include "support.hpp"

namespace {

using namespace mf;
using mf::test::adversarial;
using mf::test::cancellation_partner;
using mf::test::exact;

template <typename MF>
class AddTyped : public ::testing::Test {};

using AddTypes = ::testing::Types<MultiFloat<double, 2>, MultiFloat<double, 3>,
                                  MultiFloat<double, 4>, MultiFloat<float, 2>,
                                  MultiFloat<float, 3>, MultiFloat<float, 4>>;
TYPED_TEST_SUITE(AddTyped, AddTypes);

TYPED_TEST(AddTyped, ErrorBoundAndNonoverlapRandomized) {
    using T = typename TypeParam::value_type;
    constexpr int N = TypeParam::num_limbs;
    constexpr int p = std::numeric_limits<T>::digits;
    const int bound = mf::test::add_bound<N>(p);
    std::mt19937_64 rng(1000 + N + p);
    for (int i = 0; i < 8000; ++i) {
        const TypeParam x = adversarial<T, N>(rng);
        const TypeParam y = (i % 5 == 1) ? cancellation_partner(x, rng)
                                         : adversarial<T, N>(rng);
        const TypeParam z = add(x, y);
        const auto want = exact(x) + exact(y);
        if (!want.is_zero()) MF_EXPECT_REL_BOUND(z, want, bound);
        EXPECT_TRUE(is_nonoverlapping(z)) << "case " << i;
    }
}

TYPED_TEST(AddTyped, IsCommutative) {
    using T = typename TypeParam::value_type;
    constexpr int N = TypeParam::num_limbs;
    std::mt19937_64 rng(2000 + N);
    for (int i = 0; i < 4000; ++i) {
        const TypeParam x = adversarial<T, N>(rng);
        const TypeParam y = adversarial<T, N>(rng);
        const TypeParam xy = add(x, y);
        const TypeParam yx = add(y, x);
        for (int k = 0; k < N; ++k) EXPECT_EQ(xy.limb[k], yx.limb[k]);
    }
}

TYPED_TEST(AddTyped, AdditiveIdentityAndInverse) {
    using T = typename TypeParam::value_type;
    constexpr int N = TypeParam::num_limbs;
    std::mt19937_64 rng(3000 + N);
    const TypeParam zero{};
    for (int i = 0; i < 4000; ++i) {
        const TypeParam x = adversarial<T, N>(rng);
        // x + 0 preserves the VALUE exactly. (Limb-for-limb identity is not
        // guaranteed: at the half-ulp boundary the network may legitimately
        // re-canonicalize (1, +ulp/2) as (1+ulp, -ulp/2).)
        const TypeParam xz = add(x, zero);
        EXPECT_EQ(mf::big::BigFloat::cmp(exact(xz), exact(x)), 0) << "case " << i;
        EXPECT_TRUE(is_nonoverlapping(xz));
        const TypeParam d = add(x, -x);
        EXPECT_TRUE(d.is_zero());
        for (int k = 0; k < N; ++k) EXPECT_EQ(d.limb[k], T(0));
    }
}

TYPED_TEST(AddTyped, SubtractionMatchesOracle) {
    using T = typename TypeParam::value_type;
    constexpr int N = TypeParam::num_limbs;
    constexpr int p = std::numeric_limits<T>::digits;
    const int bound = mf::test::add_bound<N>(p);
    std::mt19937_64 rng(4000 + N);
    for (int i = 0; i < 4000; ++i) {
        const TypeParam x = adversarial<T, N>(rng);
        const TypeParam y = adversarial<T, N>(rng);
        const TypeParam z = sub(x, y);
        const auto want = exact(x) - exact(y);
        if (!want.is_zero()) MF_EXPECT_REL_BOUND(z, want, bound);
        EXPECT_TRUE(is_nonoverlapping(z));
    }
}

TYPED_TEST(AddTyped, ScalarAddMatchesWidened) {
    using T = typename TypeParam::value_type;
    constexpr int N = TypeParam::num_limbs;
    constexpr int p = std::numeric_limits<T>::digits;
    const int bound = mf::test::add_bound<N>(p);
    std::mt19937_64 rng(5000 + N);
    std::uniform_real_distribution<T> u(T(-2), T(2));
    for (int i = 0; i < 4000; ++i) {
        const TypeParam x = adversarial<T, N>(rng);
        const T s = std::ldexp(u(rng), static_cast<int>(rng() % 40) - 20);
        const TypeParam z = add(x, s);
        const auto want = exact(x) + mf::big::BigFloat::from_double(static_cast<double>(s));
        if (!want.is_zero()) MF_EXPECT_REL_BOUND(z, want, bound);
        EXPECT_TRUE(is_nonoverlapping(z));
    }
}

TYPED_TEST(AddTyped, MassiveCancellationExactness) {
    // When x + y is exactly representable after cancellation, the network
    // must produce it exactly (error-free transformations lose nothing).
    using T = typename TypeParam::value_type;
    constexpr int N = TypeParam::num_limbs;
    std::mt19937_64 rng(6000 + N);
    for (int i = 0; i < 4000; ++i) {
        TypeParam x = adversarial<T, N>(rng);
        TypeParam y = -x;
        // Zero one tail limb of y: the exact difference is that limb.
        const int k = 1 + static_cast<int>(rng() % static_cast<unsigned>(N - 1));
        const T removed = y.limb[k];
        y.limb[k] = T(0);
        const TypeParam z = add(x, y);
        const auto want = mf::big::BigFloat::from_double(static_cast<double>(-removed));
        EXPECT_EQ(mf::big::BigFloat::cmp(exact(z), want), 0) << "case " << i;
    }
}

TYPED_TEST(AddTyped, OperatorFormsAgree) {
    using T = typename TypeParam::value_type;
    constexpr int N = TypeParam::num_limbs;
    std::mt19937_64 rng(7000 + N);
    const TypeParam x = adversarial<T, N>(rng);
    const TypeParam y = adversarial<T, N>(rng);
    TypeParam acc = x;
    acc += y;
    const TypeParam viaOp = x + y;
    const TypeParam viaFn = add(x, y);
    for (int k = 0; k < N; ++k) {
        EXPECT_EQ(acc.limb[k], viaFn.limb[k]);
        EXPECT_EQ(viaOp.limb[k], viaFn.limb[k]);
    }
}

// Fixed directed cases exercising documented edge behaviour.
TEST(AddDirected, TinyPlusHugeKeepsBoth) {
    const Float64x2 a(1.0);
    const Float64x2 b(0x1p-80);
    const Float64x2 z = a + b;
    EXPECT_EQ(z.limb[0], 1.0);
    EXPECT_EQ(z.limb[1], 0x1p-80);
}

TEST(AddDirected, HiddenBitBoundary) {
    // x0 at a power of two and a tail at exactly half-ulp: the boundary case
    // of the nonoverlap invariant (Figure 1's "extra implicit bit").
    const Float64x2 x({1.0, 0x1p-53});
    const Float64x2 y({0x1p-53, 0x1p-107});
    const Float64x2 z = x + y;
    EXPECT_TRUE(is_nonoverlapping(z));
    const auto want = mf::test::exact(x) + mf::test::exact(y);
    EXPECT_LE(mf::test::rel_err_log2(z, want), -105.0);
}

TEST(AddDirected, ZeroPlusZero) {
    const Float64x4 z = Float64x4{} + Float64x4{};
    EXPECT_TRUE(z.is_zero());
    EXPECT_TRUE(is_nonoverlapping(z));
}

}  // namespace
