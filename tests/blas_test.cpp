// Extended-precision BLAS kernels: every number type under evaluation runs
// the identical templated kernels; results are checked against the exact
// BigFloat oracle computed from the same inputs.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "baselines/campary/campary.hpp"
#include "baselines/qd/dd_real.hpp"
#include "baselines/qd/qd_real.hpp"
#include "bigfloat/precfloat.hpp"
#include "blas/kernels.hpp"
#include "support.hpp"

namespace {

using mf::big::BigFloat;
using namespace mf::blas;

BigFloat bf(double x) { return BigFloat::from_double(x); }

// Uniform "get exact value" shims so one test template covers every type.
template <mf::FloatingPoint T, int N>
BigFloat val(const mf::MultiFloat<T, N>& x) { return mf::test::exact(x); }
BigFloat val(double x) { return bf(x); }
BigFloat val(const mf::qd::dd_real& x) { return bf(x.hi) + bf(x.lo); }
BigFloat val(const mf::qd::qd_real& x) {
    return bf(x.x[0]) + bf(x.x[1]) + bf(x.x[2]) + bf(x.x[3]);
}
template <int N>
BigFloat val(const mf::campary::Expansion<N>& x) {
    BigFloat acc;
    for (int i = 0; i < N; ++i) acc = acc + bf(x.x[i]);
    return acc;
}
template <int P>
BigFloat val(const mf::big::PrecFloat<P>& x) { return x.value(); }

template <typename V>
class BlasTyped : public ::testing::Test {};

using BlasTypes =
    ::testing::Types<double, mf::Float64x2, mf::Float64x3, mf::Float64x4,
                     mf::qd::dd_real, mf::qd::qd_real, mf::campary::Expansion<2>,
                     mf::campary::Expansion<4>, mf::big::PrecFloat<156>>;
TYPED_TEST_SUITE(BlasTyped, BlasTypes);

// All tested types hold at least double precision, so a kernel result must
// match the exact oracle to ~2^-45 relative (slack for accumulation).
constexpr double kTol = -45.0;

double rel_log2(const BigFloat& got, const BigFloat& want) {
    const BigFloat err = (got - want).abs();
    if (err.is_zero()) return -1e9;
    if (want.is_zero()) return err.is_zero() ? -1e9 : 1e9;
    return static_cast<double>(BigFloat::div(err, want.abs(), 64).ilogb());
}

template <typename V>
std::vector<V> random_vec(std::mt19937_64& rng, std::size_t n) {
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    std::vector<V> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) v.emplace_back(u(rng));
    return v;
}

TYPED_TEST(BlasTyped, AxpyMatchesOracle) {
    std::mt19937_64 rng(11);
    for (std::size_t n : {1u, 7u, 64u, 257u}) {
        const TypeParam alpha(1.25);
        const auto x = random_vec<TypeParam>(rng, n);
        auto y = random_vec<TypeParam>(rng, n);
        std::vector<BigFloat> want(n);
        for (std::size_t i = 0; i < n; ++i) want[i] = val(y[i]) + bf(1.25) * val(x[i]);
        axpy<TypeParam>(alpha, view(x), view(y));
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_LE(rel_log2(val(y[i]), want[i]), kTol) << "n=" << n << " i=" << i;
        }
    }
}

TYPED_TEST(BlasTyped, DotMatchesOracle) {
    std::mt19937_64 rng(12);
    for (std::size_t n : {1u, 3u, 100u, 333u}) {
        const auto x = random_vec<TypeParam>(rng, n);
        const auto y = random_vec<TypeParam>(rng, n);
        BigFloat want;
        for (std::size_t i = 0; i < n; ++i) want = want + val(x[i]) * val(y[i]);
        const TypeParam got = dot<TypeParam>(view(x), view(y));
        if (!want.is_zero()) {
            EXPECT_LE(rel_log2(val(got), want), kTol) << "n=" << n;
        }
    }
}

TYPED_TEST(BlasTyped, GemvMatchesOracle) {
    std::mt19937_64 rng(13);
    const std::size_t n = 13;
    const std::size_t m = 9;
    const auto a = random_vec<TypeParam>(rng, n * m);
    const auto x = random_vec<TypeParam>(rng, m);
    std::vector<TypeParam> y(n, TypeParam(0.0));
    gemv<TypeParam>(view(a, n, m), view(x), view(y));
    for (std::size_t i = 0; i < n; ++i) {
        BigFloat want;
        for (std::size_t j = 0; j < m; ++j) want = want + val(a[i * m + j]) * val(x[j]);
        if (!want.is_zero()) {
            EXPECT_LE(rel_log2(val(y[i]), want), kTol) << i;
        }
    }
}

TYPED_TEST(BlasTyped, GemmMatchesOracle) {
    std::mt19937_64 rng(14);
    const std::size_t n = 7;
    const std::size_t k = 5;
    const std::size_t m = 6;
    const auto a = random_vec<TypeParam>(rng, n * k);
    const auto b = random_vec<TypeParam>(rng, k * m);
    std::vector<TypeParam> c(n * m, TypeParam(0.0));
    gemm<TypeParam>(view(a, n, k), view(b, k, m), view(c, n, m));
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < m; ++j) {
            BigFloat want;
            for (std::size_t kk = 0; kk < k; ++kk) {
                want = want + val(a[i * k + kk]) * val(b[kk * m + j]);
            }
            if (!want.is_zero()) {
                EXPECT_LE(rel_log2(val(c[i * m + j]), want), kTol);
            }
        }
    }
}

TEST(BlasPrecision, ExtendedPrecisionDotBeatsDouble) {
    // An ill-conditioned dot product: double collapses, Float64x2 does not.
    // This is the paper's motivating scenario (condition numbers ~1e20).
    const std::size_t n = 4;
    const double xs[n] = {0x1p80, -0x1p80, 1.0, 3.0};
    const double ys[n] = {1.0, 1.0, 1.0, 1.0};
    // exact: 2^80 - 2^80 + 1 + 3 = 4.
    std::vector<double> xd(xs, xs + n);
    std::vector<double> yd(ys, ys + n);
    const double got_double = dot<double>(view(xd), view(yd));
    EXPECT_EQ(got_double, 4.0);  // benign order: the huge pair cancels first
    // Hostile ordering for double:
    const double xs2[n] = {0x1p80, 1.0, 3.0, -0x1p80};
    std::vector<double> xd2(xs2, xs2 + n);
    const double got_double2 = dot<double>(view(xd2), view(yd));
    EXPECT_NE(got_double2, 4.0);  // 1 and 3 are absorbed, then cancelled
    std::vector<mf::Float64x2> x2;
    std::vector<mf::Float64x2> y2;
    for (std::size_t i = 0; i < n; ++i) {
        x2.emplace_back(xs2[i]);
        y2.emplace_back(ys[i]);
    }
    const auto got_mf = dot<mf::Float64x2>(view(x2), view(y2));
    EXPECT_EQ(static_cast<double>(got_mf), 4.0);
}

TEST(BlasEdge, EmptyAndSingleton) {
    std::vector<double> empty;
    EXPECT_EQ(dot<double>(view(empty), view(empty)), 0.0);
    std::vector<mf::Float64x3> x{mf::Float64x3(2.0)};
    std::vector<mf::Float64x3> y{mf::Float64x3(3.0)};
    EXPECT_EQ(static_cast<double>(dot<mf::Float64x3>(view(x), view(y))), 6.0);
}

}  // namespace
