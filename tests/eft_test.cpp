// Error-free transformations: exactness of TwoSum / FastTwoSum / TwoProd for
// all input classes, verified against the exact BigFloat oracle.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "support.hpp"

namespace {

using mf::big::BigFloat;
using mf::fast_two_sum;
using mf::three_sum;
using mf::two_prod;
using mf::two_sum;

BigFloat bf(double x) { return BigFloat::from_double(x); }

TEST(TwoSum, SumIsCorrectlyRounded) {
    std::mt19937_64 rng(1);
    std::uniform_real_distribution<double> u(-1e10, 1e10);
    for (int i = 0; i < 20000; ++i) {
        const double a = u(rng);
        const double b = u(rng);
        const auto [s, e] = two_sum(a, b);
        EXPECT_EQ(s, a + b);
        // s + e == a + b exactly.
        EXPECT_EQ(BigFloat::cmp(bf(s) + bf(e), bf(a) + bf(b)), 0)
            << a << " + " << b;
    }
}

TEST(TwoSum, ExactAcrossExponentGaps) {
    std::mt19937_64 rng(2);
    std::uniform_real_distribution<double> u(1.0, 2.0);
    for (int gap = 0; gap <= 120; ++gap) {
        for (int rep = 0; rep < 50; ++rep) {
            const double a = u(rng) * (rng() % 2 ? 1 : -1);
            const double b = std::ldexp(u(rng) * (rng() % 2 ? 1 : -1), -gap);
            const auto [s, e] = two_sum(a, b);
            EXPECT_EQ(BigFloat::cmp(bf(s) + bf(e), bf(a) + bf(b)), 0)
                << "gap=" << gap;
        }
    }
}

TEST(TwoSum, IsCommutative) {
    std::mt19937_64 rng(3);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    for (int i = 0; i < 10000; ++i) {
        const double a = std::ldexp(u(rng), static_cast<int>(rng() % 40) - 20);
        const double b = std::ldexp(u(rng), static_cast<int>(rng() % 40) - 20);
        const auto [s1, e1] = two_sum(a, b);
        const auto [s2, e2] = two_sum(b, a);
        EXPECT_EQ(s1, s2);
        EXPECT_EQ(e1, e2);
    }
}

TEST(TwoSum, ZeroInputs) {
    const auto [s1, e1] = two_sum(0.0, 0.0);
    EXPECT_EQ(s1, 0.0);
    EXPECT_EQ(e1, 0.0);
    const auto [s2, e2] = two_sum(1.5, 0.0);
    EXPECT_EQ(s2, 1.5);
    EXPECT_EQ(e2, 0.0);
}

TEST(TwoSum, KnuthCancellationPattern) {
    // Classic demonstration pair: rounding error equals the low operand.
    const double a = 1.0;
    const double b = 0x1p-53 + 0x1p-105;
    const auto [s, e] = two_sum(a, b);
    EXPECT_EQ(BigFloat::cmp(bf(s) + bf(e), bf(a) + bf(b)), 0);
    EXPECT_NE(e, 0.0);  // the error term is genuinely needed here
}

TEST(FastTwoSum, ExactWhenOrdered) {
    std::mt19937_64 rng(4);
    std::uniform_real_distribution<double> u(1.0, 2.0);
    for (int gap = 0; gap <= 120; ++gap) {
        for (int rep = 0; rep < 50; ++rep) {
            const double a = u(rng) * (rng() % 2 ? 1 : -1);
            const double b = std::ldexp(u(rng) * (rng() % 2 ? 1 : -1), -gap);
            // exponent(a) >= exponent(b): precondition satisfied.
            const auto [s, e] = fast_two_sum(a, b);
            EXPECT_EQ(s, a + b);
            EXPECT_EQ(BigFloat::cmp(bf(s) + bf(e), bf(a) + bf(b)), 0)
                << "gap=" << gap;
        }
    }
}

TEST(FastTwoSum, ZeroOperands) {
    const auto [s1, e1] = fast_two_sum(0.0, 3.25);  // a == 0 allowed
    EXPECT_EQ(s1, 3.25);
    EXPECT_EQ(e1, 0.0);
    const auto [s2, e2] = fast_two_sum(3.25, 0.0);
    EXPECT_EQ(s2, 3.25);
    EXPECT_EQ(e2, 0.0);
}

TEST(FastTwoSum, AgreesWithTwoSumWhenOrdered) {
    std::mt19937_64 rng(5);
    std::uniform_real_distribution<double> u(1.0, 2.0);
    for (int i = 0; i < 20000; ++i) {
        double a = u(rng) * (rng() % 2 ? 1 : -1);
        double b = u(rng) * (rng() % 2 ? 1 : -1);
        if (std::fabs(b) > std::fabs(a)) std::swap(a, b);
        const auto [s1, e1] = two_sum(a, b);
        const auto [s2, e2] = fast_two_sum(a, b);
        EXPECT_EQ(s1, s2);
        EXPECT_EQ(e1, e2);
    }
}

TEST(TwoProd, ProductIsExact) {
    std::mt19937_64 rng(6);
    std::uniform_real_distribution<double> u(-1e5, 1e5);
    for (int i = 0; i < 20000; ++i) {
        const double a = u(rng);
        const double b = u(rng);
        const auto [p, e] = two_prod(a, b);
        EXPECT_EQ(p, a * b);
        EXPECT_EQ(BigFloat::cmp(bf(p) + bf(e), bf(a) * bf(b)), 0)
            << a << " * " << b;
    }
}

TEST(TwoProd, ExactForExactProducts) {
    // Products of small integers and powers of two round exactly: e == 0.
    const auto [p1, e1] = two_prod(3.0, 0.125);
    EXPECT_EQ(p1, 0.375);
    EXPECT_EQ(e1, 0.0);
    const auto [p2, e2] = two_prod(-0x1p30, 0x1p-40);
    EXPECT_EQ(p2, -0x1p-10);
    EXPECT_EQ(e2, 0.0);
}

TEST(TwoProd, DekkerHardCase) {
    // Full-width mantissas force a nonzero error term.
    const double a = 1.0 + 0x1p-52;
    const double b = 1.0 + 0x1p-52;
    const auto [p, e] = two_prod(a, b);
    EXPECT_EQ(BigFloat::cmp(bf(p) + bf(e), bf(a) * bf(b)), 0);
    EXPECT_NE(e, 0.0);
}

TEST(ThreeSum, PreservesExactTriple) {
    std::mt19937_64 rng(7);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    for (int i = 0; i < 20000; ++i) {
        const double a = std::ldexp(u(rng), static_cast<int>(rng() % 60) - 30);
        const double b = std::ldexp(u(rng), static_cast<int>(rng() % 60) - 30);
        const double c = std::ldexp(u(rng), static_cast<int>(rng() % 60) - 30);
        const auto [s0, s1, s2] = three_sum(a, b, c);
        EXPECT_EQ(BigFloat::cmp(bf(s0) + bf(s1) + bf(s2), bf(a) + bf(b) + bf(c)), 0);
    }
}

TEST(EftFloat, WorksAtSinglePrecision) {
    std::mt19937_64 rng(8);
    std::uniform_real_distribution<float> u(-1e4f, 1e4f);
    for (int i = 0; i < 20000; ++i) {
        const float a = u(rng);
        const float b = u(rng);
        const auto [s, e] = two_sum(a, b);
        EXPECT_EQ(BigFloat::cmp(bf(s) + bf(e), bf(a) + bf(b)), 0);
        const auto [p, f] = two_prod(a, b);
        EXPECT_EQ(BigFloat::cmp(bf(p) + bf(f), bf(a) * bf(b)), 0);
    }
}

}  // namespace
