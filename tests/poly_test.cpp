// Polynomial evaluation / compensated Horner / root polishing at extended
// precision, against the exact oracle and on the classic ill-conditioned
// cases (Wilkinson-style clustered roots).

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "mf/poly.hpp"
#include "support.hpp"

namespace {

using namespace mf;
using mf::big::BigFloat;
using mf::test::adversarial;
using mf::test::exact;

BigFloat bf(double x) { return BigFloat::from_double(x); }

TEST(Poly, HornerMatchesOracle) {
    std::mt19937_64 rng(1);
    for (int rep = 0; rep < 200; ++rep) {
        std::vector<Float64x3> c;
        const int deg = 1 + static_cast<int>(rng() % 12);
        for (int i = 0; i <= deg; ++i) c.push_back(adversarial<double, 3>(rng, -3, 3));
        const Float64x3 x = adversarial<double, 3>(rng, -2, 1);
        const Float64x3 got = poly::horner<double, 3>({c.data(), c.size()}, x);
        BigFloat want;
        const BigFloat xb = exact(x);
        for (std::size_t i = c.size(); i-- > 0;) {
            want = (want * xb).round(400) + exact(c[i]);
        }
        if (!want.is_zero()) {
            MF_EXPECT_REL_BOUND(got, want, 3 * 53 - 3 - 16);
        }
    }
}

TEST(Poly, DerivativeSweepMatchesSeparateEvaluation) {
    std::mt19937_64 rng(2);
    for (int rep = 0; rep < 100; ++rep) {
        std::vector<Float64x2> c;
        const int deg = 2 + static_cast<int>(rng() % 8);
        for (int i = 0; i <= deg; ++i) c.push_back(adversarial<double, 2>(rng, -2, 2));
        const Float64x2 x = adversarial<double, 2>(rng, -2, 1);
        const auto [v, d] = poly::horner_with_derivative<double, 2>({c.data(), c.size()}, x);
        // value agrees with plain horner bit-for-bit (same recurrence).
        const Float64x2 v2 = poly::horner<double, 2>({c.data(), c.size()}, x);
        for (int k = 0; k < 2; ++k) EXPECT_EQ(v.limb[k], v2.limb[k]);
        // derivative agrees with the coefficient-derivative polynomial.
        std::vector<Float64x2> dc;
        for (std::size_t i = 1; i < c.size(); ++i) {
            dc.push_back(mul(c[i], Float64x2(static_cast<double>(i))));
        }
        const Float64x2 d2 = poly::horner<double, 2>({dc.data(), dc.size()}, x);
        const BigFloat want = exact(d2);
        if (!want.is_zero()) {
            MF_EXPECT_REL_BOUND(d, want, 2 * 53 - 2 - 18);
        }
    }
}

TEST(Poly, CompensatedHornerNearWilkinsonRoot) {
    // p(x) = (x-1)(x-2)...(x-12), expanded to double coefficients (exact:
    // they are integers below 2^53). Near x = 11.5 the evaluation is
    // catastrophically cancellative for plain double Horner.
    std::vector<double> c{1.0};
    for (int r = 1; r <= 12; ++r) {
        std::vector<double> next(c.size() + 1, 0.0);
        for (std::size_t i = 0; i < c.size(); ++i) {
            next[i + 1] += c[i];
            next[i] -= c[i] * r;
        }
        c = std::move(next);
    }
    const double x = 11.0 + 0x1p-20;  // near the root at 11: cancellation
    // Exact value via BigFloat.
    BigFloat want;
    for (std::size_t i = c.size(); i-- > 0;) {
        want = want * bf(x) + bf(c[i]);
    }
    // Plain double Horner: relative error visible.
    double h = c.back();
    for (std::size_t i = c.size() - 1; i-- > 0;) h = h * x + c[i];
    const double rel_double = std::abs((bf(h) - want).to_double() / want.to_double());
    // Compensated to 2 terms: exact to ~2^-107.
    const auto comp = poly::horner_compensated<double, 2>({c.data(), c.size()}, x);
    const BigFloat err = (mf::test::exact(comp) - want).abs();
    EXPECT_GT(rel_double, 1e-14);  // double visibly struggles
    if (!err.is_zero()) {
        const double rel_comp = std::abs(BigFloat::div(err, want.abs(), 64).to_double());
        EXPECT_LT(rel_comp, 1e-28);
    }
}

TEST(Poly, NewtonPolishRecoversClusteredRoot) {
    // p(x) = (x - 1)(x - 1 - 2^-30)(x + 3): two roots 2^-30 apart. Double
    // Newton stalls at ~sqrt(eps) distance; octuple-precision polishing
    // separates them cleanly.
    const Float64x4 r1(1.0);
    const Float64x4 r2 = add(Float64x4(1.0), 0x1p-30);
    const Float64x4 r3(-3.0);
    // coefficients of (x-r1)(x-r2)(x-r3), built at octuple precision.
    std::vector<Float64x4> c(4);
    c[3] = Float64x4(1.0);
    c[2] = -add(add(r1, r2), r3);
    c[1] = add(add(mul(r1, r2), mul(r1, r3)), mul(r2, r3));
    c[0] = -mul(mul(r1, r2), r3);
    // Seed OUTSIDE the cluster (at the midpoint p' vanishes and Newton
    // diverges -- that is what makes clustered roots hard).
    const Float64x4 polished = poly::newton_polish<double, 4>(
        {c.data(), c.size()}, Float64x4(1.0 + 0x1p-28), 20);
    // Converges to one of the two cluster roots to ~working precision.
    const BigFloat d1 = (exact(polished) - exact(r1)).abs();
    const BigFloat d2 = (exact(polished) - exact(r2)).abs();
    const BigFloat closest = BigFloat::cmp(d1, d2) < 0 ? d1 : d2;
    EXPECT_TRUE(closest.is_zero() || closest.ilogb() < -140);
}

TEST(Poly, EmptyAndConstant) {
    EXPECT_TRUE((poly::horner<double, 2>({}, Float64x2(3.0))).is_zero());
    std::vector<Float64x2> c{Float64x2(7.5)};
    const Float64x2 k = poly::horner<double, 2>({c.data(), 1u}, Float64x2(100.0));
    EXPECT_EQ(k.limb[0], 7.5);
    const auto [v, d] = poly::horner_with_derivative<double, 2>({c.data(), 1u}, Float64x2(2.0));
    EXPECT_EQ(v.limb[0], 7.5);
    EXPECT_TRUE(d.is_zero());
}

}  // namespace
