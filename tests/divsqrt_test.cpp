// Newton-Raphson division and square root (paper §4.3): accuracy against the
// correctly rounded oracle, plus algebraic identities.

#include <gtest/gtest.h>

#include <random>

#include "support.hpp"

namespace {

using namespace mf;
using mf::big::BigFloat;
using mf::test::adversarial;
using mf::test::exact;

// Newton refinement with a final correction converges to within a few ulps
// of the expansion's working precision; we test against bound - margin.
template <int N, int P>
constexpr int newton_bound = N * P - N - 4;

template <typename MF>
class DivSqrtTyped : public ::testing::Test {};

using Types = ::testing::Types<MultiFloat<double, 2>, MultiFloat<double, 3>,
                               MultiFloat<double, 4>, MultiFloat<float, 2>,
                               MultiFloat<float, 3>, MultiFloat<float, 4>>;
TYPED_TEST_SUITE(DivSqrtTyped, Types);

TYPED_TEST(DivSqrtTyped, ReciprocalAccuracy) {
    using T = typename TypeParam::value_type;
    constexpr int N = TypeParam::num_limbs;
    constexpr int p = std::numeric_limits<T>::digits;
    std::mt19937_64 rng(1 + N + p);
    for (int i = 0; i < 2000; ++i) {
        TypeParam a = adversarial<T, N>(rng, -15, 15);
        if (a.is_zero()) a = TypeParam(T(1));
        const TypeParam r = recip(a);
        const BigFloat want = BigFloat::div(BigFloat::from_int(1), exact(a), N * p + 20);
        MF_EXPECT_REL_BOUND(r, want, (newton_bound<N, p>));
    }
}

TYPED_TEST(DivSqrtTyped, DivisionAccuracy) {
    using T = typename TypeParam::value_type;
    constexpr int N = TypeParam::num_limbs;
    constexpr int p = std::numeric_limits<T>::digits;
    std::mt19937_64 rng(2 + N + p);
    for (int i = 0; i < 2000; ++i) {
        const TypeParam b = adversarial<T, N>(rng, -15, 15);
        TypeParam a = adversarial<T, N>(rng, -15, 15);
        if (a.is_zero()) a = TypeParam(T(3));
        const TypeParam q = div(b, a);
        if (b.is_zero()) {
            EXPECT_TRUE(q.is_zero() || std::abs(static_cast<double>(q.limb[0])) < 1e-300);
            continue;
        }
        const BigFloat want = BigFloat::div(exact(b), exact(a), N * p + 20);
        MF_EXPECT_REL_BOUND(q, want, (newton_bound<N, p>));
    }
}

TYPED_TEST(DivSqrtTyped, DivideThenMultiplyRoundTrips) {
    using T = typename TypeParam::value_type;
    constexpr int N = TypeParam::num_limbs;
    constexpr int p = std::numeric_limits<T>::digits;
    std::mt19937_64 rng(3 + N + p);
    for (int i = 0; i < 2000; ++i) {
        TypeParam a = adversarial<T, N>(rng, -10, 10);
        const TypeParam b = adversarial<T, N>(rng, -10, 10);
        if (a.is_zero()) a = TypeParam(T(2));
        if (b.is_zero()) continue;
        const TypeParam back = mul(div(b, a), a);
        MF_EXPECT_REL_BOUND(back, exact(b), (newton_bound<N, p>));
    }
}

TYPED_TEST(DivSqrtTyped, SqrtAccuracy) {
    using T = typename TypeParam::value_type;
    constexpr int N = TypeParam::num_limbs;
    constexpr int p = std::numeric_limits<T>::digits;
    std::mt19937_64 rng(4 + N + p);
    for (int i = 0; i < 2000; ++i) {
        TypeParam a = abs(adversarial<T, N>(rng, -15, 15));
        if (a.is_zero()) a = TypeParam(T(2));
        const TypeParam s = mf::sqrt(a);
        const BigFloat want = BigFloat::sqrt(exact(a), N * p + 20);
        MF_EXPECT_REL_BOUND(s, want, (newton_bound<N, p>));
    }
}

TYPED_TEST(DivSqrtTyped, SqrtSquareRoundTrips) {
    using T = typename TypeParam::value_type;
    constexpr int N = TypeParam::num_limbs;
    constexpr int p = std::numeric_limits<T>::digits;
    std::mt19937_64 rng(5 + N + p);
    for (int i = 0; i < 2000; ++i) {
        TypeParam a = abs(adversarial<T, N>(rng, -10, 10));
        if (a.is_zero()) continue;
        const TypeParam back = sqr(mf::sqrt(a));
        MF_EXPECT_REL_BOUND(back, exact(a), (newton_bound<N, p>));
    }
}

TYPED_TEST(DivSqrtTyped, RsqrtConsistentWithSqrtAndRecip) {
    using T = typename TypeParam::value_type;
    constexpr int N = TypeParam::num_limbs;
    constexpr int p = std::numeric_limits<T>::digits;
    std::mt19937_64 rng(6 + N + p);
    for (int i = 0; i < 1000; ++i) {
        TypeParam a = abs(adversarial<T, N>(rng, -10, 10));
        if (a.is_zero()) a = TypeParam(T(5));
        const TypeParam r = rsqrt(a);
        const BigFloat want = BigFloat::div(
            BigFloat::from_int(1), BigFloat::sqrt(exact(a), N * p + 40), N * p + 20);
        MF_EXPECT_REL_BOUND(r, want, (newton_bound<N, p>));
    }
}

TEST(DivSqrtDirected, ExactCases) {
    EXPECT_TRUE(mf::sqrt(Float64x4{}).is_zero());
    const Float64x3 four(4.0);
    const Float64x3 two = mf::sqrt(four);
    EXPECT_EQ(two.limb[0], 2.0);
    EXPECT_EQ(two.limb[1], 0.0);
    const Float64x2 eight(8.0);
    const Float64x2 q = div(eight, Float64x2(2.0));
    EXPECT_EQ(q.limb[0], 4.0);
    EXPECT_EQ(q.limb[1], 0.0);
}

TEST(DivSqrtDirected, OneThirdTimesThree) {
    const Float64x4 third = div(Float64x4(1.0), Float64x4(3.0));
    const Float64x4 back = mul(third, Float64x4(3.0));
    const Float64x4 err = sub(back, Float64x4(1.0));
    // |1/3 * 3 - 1| must sit at or below the octuple-precision noise floor.
    EXPECT_LT(std::abs(err.limb[0]), 0x1p-205);
}

TEST(DivSqrtDirected, Sqrt2Digits) {
    const auto s = mf::sqrt(Float64x4(2.0));
    const std::string digits = mf::to_string(s, 60);
    EXPECT_EQ(digits.substr(0, 42), "1.4142135623730950488016887242096980785696");
}

TEST(DivSqrtDirected, PowiMatchesRepeatedMultiply) {
    std::mt19937_64 rng(77);
    for (int i = 0; i < 500; ++i) {
        const Float64x3 x = mf::test::adversarial<double, 3>(rng, -4, 4);
        Float64x3 acc(1.0);
        for (int k = 0; k < 7; ++k) acc = mul(acc, x);
        const Float64x3 via = powi(x, 7);
        // powi uses binary exponentiation: not bit-identical, but both must
        // agree to working precision.
        const auto want = mf::test::exact(acc);
        if (!want.is_zero()) MF_EXPECT_REL_BOUND(via, want, 3 * 53 - 10);
    }
}

TEST(DivSqrtDirected, PowiSpecialExponents) {
    const Float64x2 x(1.5);
    EXPECT_EQ(powi(x, 0).limb[0], 1.0);
    EXPECT_EQ(powi(x, 1).limb[0], 1.5);
    EXPECT_EQ(powi(x, 2).limb[0], 2.25);
    const Float64x2 inv = powi(x, -1);
    const auto want = mf::big::BigFloat::div(mf::big::BigFloat::from_int(2),
                                             mf::big::BigFloat::from_int(3), 130);
    MF_EXPECT_REL_BOUND(inv, want, 100);
}

// Special-value propagation for div/sqrt at every expansion length N=1..4,
// through the strict-IEEE wrappers (paper §4.4: the raw kernels only
// promise these semantics via mf/ieee.hpp; at N=1 both layers collapse to
// the base type's own operation). Every special result must also embed
// canonically: limb[0] carries the special, the tail is zero.
template <typename T, int N>
void check_divsqrt_specials() {
    using MF = MultiFloat<T, N>;
    const T inf = std::numeric_limits<T>::infinity();
    const T nan = std::numeric_limits<T>::quiet_NaN();
    const auto canonical_tail = [](const MF& z) {
        for (int i = 1; i < N; ++i) {
            if (z.limb[i] != T(0)) return false;
        }
        return true;
    };

    // Division poles: x / +-0.
    EXPECT_EQ(div_ieee(MF(T(1)), MF(T(0))).limb[0], inf) << "N=" << N;
    EXPECT_EQ(div_ieee(MF(T(-1)), MF(T(0))).limb[0], -inf) << "N=" << N;
    EXPECT_EQ(div_ieee(MF(T(1)), MF(-T(0))).limb[0], -inf) << "N=" << N;
    EXPECT_TRUE(std::isnan(div_ieee(MF(T(0)), MF(T(0))).limb[0])) << "N=" << N;
    EXPECT_TRUE(canonical_tail(div_ieee(MF(T(1)), MF(T(0))))) << "N=" << N;

    // Infinite operands: x / Inf = +-0 (signed!), Inf / x = +-Inf,
    // Inf / Inf = NaN.
    const MF x_over_inf = div_ieee(MF(T(3)), MF(inf));
    EXPECT_EQ(x_over_inf.limb[0], T(0)) << "N=" << N;
    EXPECT_FALSE(std::signbit(x_over_inf.limb[0])) << "N=" << N;
    const MF neg_over_inf = div_ieee(MF(T(-3)), MF(inf));
    EXPECT_EQ(neg_over_inf.limb[0], T(0)) << "N=" << N;
    EXPECT_TRUE(std::signbit(neg_over_inf.limb[0])) << "N=" << N;
    EXPECT_TRUE(canonical_tail(x_over_inf)) << "N=" << N;
    EXPECT_EQ(div_ieee(MF(inf), MF(T(2))).limb[0], inf) << "N=" << N;
    EXPECT_EQ(div_ieee(MF(-inf), MF(T(2))).limb[0], -inf) << "N=" << N;
    EXPECT_EQ(div_ieee(MF(inf), MF(T(-2))).limb[0], -inf) << "N=" << N;
    EXPECT_TRUE(std::isnan(div_ieee(MF(inf), MF(inf)).limb[0])) << "N=" << N;

    // NaN operands poison division from either side.
    EXPECT_TRUE(std::isnan(div_ieee(MF(nan), MF(T(2))).limb[0])) << "N=" << N;
    EXPECT_TRUE(std::isnan(div_ieee(MF(T(2)), MF(nan)).limb[0])) << "N=" << N;

    // Square root: sqrt(-x) = NaN, sqrt(+-0) = +-0, sqrt(+Inf) = +Inf,
    // sqrt(-Inf) = NaN, sqrt(NaN) = NaN.
    EXPECT_TRUE(std::isnan(sqrt_ieee(MF(T(-1))).limb[0])) << "N=" << N;
    const MF sqrt_neg_zero = sqrt_ieee(MF(-T(0)));
    EXPECT_EQ(sqrt_neg_zero.limb[0], T(0)) << "N=" << N;
    EXPECT_TRUE(std::signbit(sqrt_neg_zero.limb[0])) << "N=" << N;
    EXPECT_FALSE(std::signbit(sqrt_ieee(MF(T(0))).limb[0])) << "N=" << N;
    EXPECT_EQ(sqrt_ieee(MF(inf)).limb[0], inf) << "N=" << N;
    EXPECT_TRUE(std::isnan(sqrt_ieee(MF(-inf)).limb[0])) << "N=" << N;
    EXPECT_TRUE(std::isnan(sqrt_ieee(MF(nan)).limb[0])) << "N=" << N;
    EXPECT_TRUE(canonical_tail(sqrt_ieee(MF(inf)))) << "N=" << N;

    // The fixup layer must not disturb ordinary finite results.
    const MF q = div_ieee(MF(T(6)), MF(T(2)));
    EXPECT_EQ(q.limb[0], T(3)) << "N=" << N;
    EXPECT_EQ(sqrt_ieee(MF(T(4))).limb[0], T(2)) << "N=" << N;
}

TEST(DivSqrtSpecials, AllWidthsDouble) {
    check_divsqrt_specials<double, 1>();
    check_divsqrt_specials<double, 2>();
    check_divsqrt_specials<double, 3>();
    check_divsqrt_specials<double, 4>();
}

TEST(DivSqrtSpecials, AllWidthsFloat) {
    check_divsqrt_specials<float, 1>();
    check_divsqrt_specials<float, 2>();
    check_divsqrt_specials<float, 3>();
    check_divsqrt_specials<float, 4>();
}

// At N=1 the raw kernels ARE the base type's operations, so the strict
// semantics hold without the wrapper too.
TEST(DivSqrtSpecials, RawScalarWidthIsAlreadyIeee) {
    using MF1 = MultiFloat<double, 1>;
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(div(MF1(1.0), MF1(0.0)).limb[0], inf);
    EXPECT_TRUE(std::isnan(div(MF1(0.0), MF1(0.0)).limb[0]));
    EXPECT_EQ(div(MF1(-1.0), MF1(inf)).limb[0], 0.0);
    EXPECT_TRUE(std::signbit(div(MF1(-1.0), MF1(inf)).limb[0]));
    EXPECT_TRUE(std::isnan(mf::sqrt(MF1(-2.0)).limb[0]));
    EXPECT_TRUE(std::signbit(mf::sqrt(MF1(-0.0)).limb[0]));
}

}  // namespace
