// IEEE special-value restoration layer (paper §4.4): the raw kernels lose
// -0.0 and collapse +-Inf to NaN; the *_ieee wrappers must restore the base
// type's semantics while staying bit-identical on finite data.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "mf/ieee.hpp"
#include "support.hpp"

namespace {

using namespace mf;
using mf::test::adversarial;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(IeeeRaw, DocumentedLossesActuallyHappen) {
    // The paper's §4.4 caveats, demonstrated on the raw kernels.
    const Float64x2 nz(-0.0);
    const Float64x2 z = add(nz, nz);
    EXPECT_EQ(z.limb[0], 0.0);
    EXPECT_FALSE(std::signbit(z.limb[0]));  // -0 was lost

    const Float64x2 inf(kInf);
    const Float64x2 s = add(inf, Float64x2(1.0));
    EXPECT_TRUE(std::isnan(s.limb[0]));  // Inf collapsed to NaN
}

TEST(IeeeFixed, SignedZeroPreserved) {
    const Float64x2 nz(-0.0);
    const Float64x2 z = add_ieee(nz, nz);
    EXPECT_EQ(z.limb[0], 0.0);
    EXPECT_TRUE(std::signbit(z.limb[0]));
    EXPECT_EQ(z.limb[1], 0.0);

    // (-x) * 0 == -0.
    const Float64x3 r = mul_ieee(Float64x3(-2.5), Float64x3(0.0));
    EXPECT_EQ(r.limb[0], 0.0);
    EXPECT_TRUE(std::signbit(r.limb[0]));
}

TEST(IeeeFixed, InfinityPropagates) {
    const Float64x4 inf(kInf);
    EXPECT_EQ(add_ieee(inf, Float64x4(1.0)).limb[0], kInf);
    EXPECT_EQ(add_ieee(-inf, Float64x4(1.0)).limb[0], -kInf);
    EXPECT_EQ(mul_ieee(inf, Float64x4(-2.0)).limb[0], -kInf);
    EXPECT_TRUE(std::isnan(add_ieee(inf, -inf).limb[0]));  // Inf - Inf = NaN
    EXPECT_TRUE(std::isnan(mul_ieee(inf, Float64x4(0.0)).limb[0]));
}

TEST(IeeeFixed, NanPropagates) {
    const Float64x2 nan(kNaN);
    EXPECT_TRUE(std::isnan(add_ieee(nan, Float64x2(1.0)).limb[0]));
    EXPECT_TRUE(std::isnan(mul_ieee(Float64x2(3.0), nan).limb[0]));
    EXPECT_TRUE(std::isnan(div_ieee(nan, Float64x2(2.0)).limb[0]));
}

TEST(IeeeFixed, DivisionSpecials) {
    EXPECT_EQ(div_ieee(Float64x2(1.0), Float64x2(0.0)).limb[0], kInf);
    EXPECT_EQ(div_ieee(Float64x2(-1.0), Float64x2(0.0)).limb[0], -kInf);
    EXPECT_TRUE(std::isnan(div_ieee(Float64x2(0.0), Float64x2(0.0)).limb[0]));
    const auto tiny = div_ieee(Float64x2(-1.0), Float64x2(kInf));
    EXPECT_EQ(tiny.limb[0], 0.0);
    EXPECT_TRUE(std::signbit(tiny.limb[0]));
}

TEST(IeeeFixed, BitIdenticalOnFiniteData) {
    std::mt19937_64 rng(9);
    for (int i = 0; i < 20000; ++i) {
        const Float64x3 x = adversarial<double, 3>(rng);
        const Float64x3 y = adversarial<double, 3>(rng);
        const Float64x3 a = add(x, y);
        const Float64x3 ai = add_ieee(x, y);
        const Float64x3 m = mul(x, y);
        const Float64x3 mi = mul_ieee(x, y);
        for (int k = 0; k < 3; ++k) {
            ASSERT_EQ(a.limb[k], ai.limb[k]);
            ASSERT_EQ(m.limb[k], mi.limb[k]);
        }
    }
}

TEST(IeeeFixed, OverflowBoundary) {
    // Paper §4.4: results of exactly +-DBL_MAX can internally overflow
    // TwoSum; add_ieee repairs the case where the scalar result overflows.
    const double big = std::numeric_limits<double>::max();
    const Float64x2 x(big);
    const Float64x2 r = add_ieee(x, x);  // overflows to +Inf
    EXPECT_EQ(r.limb[0], kInf);
    // A large-but-safe sum still goes through the fast path.
    const Float64x2 half(big / 4);
    const Float64x2 s = add_ieee(half, half);
    EXPECT_EQ(s.limb[0], big / 2);
}

}  // namespace
