// Extended BLAS level-1/level-2 additions: scal, asum, nrm2, iamax, ger.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "blas/kernels.hpp"
#include "support.hpp"

namespace {

using namespace mf;
using mf::big::BigFloat;
using mf::blas::asum;
using mf::blas::ger;
using mf::blas::iamax;
using mf::blas::nrm2;
using mf::blas::scal;
using mf::blas::view;
using mf::test::adversarial;
using mf::test::exact;

template <int N>
std::vector<MultiFloat<double, N>> vec(std::mt19937_64& rng, std::size_t n) {
    std::vector<MultiFloat<double, N>> v;
    for (std::size_t i = 0; i < n; ++i) v.push_back(adversarial<double, N>(rng, -6, 6));
    return v;
}

TEST(BlasExt, ScalMatchesElementwiseMul) {
    std::mt19937_64 rng(1);
    auto x = vec<3>(rng, 130);
    const auto ref = x;
    const auto alpha = adversarial<double, 3>(rng, -3, 3);
    scal<MultiFloat<double, 3>>(alpha, view(x));
    for (std::size_t i = 0; i < x.size(); ++i) {
        const auto want = mul(ref[i], alpha);
        for (int k = 0; k < 3; ++k) EXPECT_EQ(x[i].limb[k], want.limb[k]);
    }
}

TEST(BlasExt, AsumMatchesOracle) {
    std::mt19937_64 rng(2);
    for (std::size_t n : {1u, 17u, 200u}) {
        const auto x = vec<2>(rng, n);
        BigFloat want;
        for (const auto& v : x) want = want + exact(v).abs();
        const auto got = asum<MultiFloat<double, 2>>(view(x));
        MF_EXPECT_REL_BOUND(got, want, 2 * 53 - 2 - 12);
        EXPECT_GE(got.limb[0], 0.0);
    }
}

TEST(BlasExt, Nrm2MatchesOracle) {
    std::mt19937_64 rng(3);
    for (std::size_t n : {1u, 33u, 150u}) {
        const auto x = vec<4>(rng, n);
        BigFloat sq;
        for (const auto& v : x) sq = sq + exact(v) * exact(v);
        if (sq.is_zero()) continue;
        const BigFloat want = BigFloat::sqrt(sq, 4 * 53 + 20);
        const auto got = nrm2<MultiFloat<double, 4>>(view(x));
        MF_EXPECT_REL_BOUND(got, want, 4 * 53 - 4 - 16);
    }
}

TEST(BlasExt, IamaxFindsMaximum) {
    std::mt19937_64 rng(4);
    for (int rep = 0; rep < 50; ++rep) {
        auto x = vec<2>(rng, 64);
        // Plant a clear winner.
        const auto where = static_cast<std::size_t>(rng() % 64);
        x[where] = ldexp(MultiFloat<double, 2>(rng() % 2 ? 1.5 : -1.5), 40);
        const std::size_t got = iamax<MultiFloat<double, 2>>(view(x));
        EXPECT_EQ(got, where);
    }
    std::vector<double> d{1.0, -7.0, 3.0};
    EXPECT_EQ(iamax<double>(view(d)), 1u);
}

TEST(BlasExt, GerMatchesOracle) {
    std::mt19937_64 rng(5);
    const std::size_t n = 9;
    const std::size_t m = 7;
    const auto x = vec<2>(rng, n);
    const auto y = vec<2>(rng, m);
    auto a = vec<2>(rng, n * m);
    const auto ref = a;
    const auto alpha = adversarial<double, 2>(rng, -2, 2);
    ger<MultiFloat<double, 2>>(alpha, view(x), view(y), view(a, n, m));
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < m; ++j) {
            const BigFloat want =
                exact(ref[i * m + j]) + exact(alpha) * exact(x[i]) * exact(y[j]);
            if (!want.is_zero()) {
                MF_EXPECT_REL_BOUND(a[i * m + j], want, 2 * 53 - 2 - 12);
            }
        }
    }
}

TEST(BlasExt, WorksOnPlainDouble) {
    std::vector<double> x{3.0, -4.0};
    EXPECT_EQ(nrm2<double>(view(x)), 5.0);
    EXPECT_EQ(asum<double>(view(x)), 7.0);
    scal<double>(2.0, view(x));
    EXPECT_EQ(x[0], 6.0);
    EXPECT_EQ(x[1], -8.0);
}

}  // namespace
