// Search procedures (paper §4.1): simulated annealing re-discovers a correct
// 2-term addition network, and greedy trimming minimizes the sweep networks
// without breaking verification.

#include <gtest/gtest.h>

#include "fpan/checker.hpp"
#include "fpan/library.hpp"
#include "fpan/search.hpp"

namespace {

using namespace mf::fpan;

TEST(Search, AnnealingFindsCorrectAdd2) {
    SearchOptions opts;
    opts.n = 2;
    opts.iterations = 8000;
    opts.seed = 20250707;  // finds a size-6, depth-4 network (paper optimum)
    opts.score_trials = 60;
    opts.verify_trials = 5000;
    const SearchOutcome out = anneal_add_network(opts);
    ASSERT_TRUE(out.best.has_value())
        << "annealing failed to find a passing network in " << out.iterations
        << " iterations";
    // Independent re-verification at full strength.
    const CheckResult r =
        check_add_random(*out.best, 2, 50000, 999, paper_add_bound_bits(2, 53));
    EXPECT_TRUE(r.pass);
    const CheckResult e = check_add_exhaustive(*out.best, 2, 3, 3, 4);
    EXPECT_TRUE(e.pass);
    // The paper proves size 6 optimal; the search must not "find" anything
    // smaller that survives verification.
    EXPECT_GE(out.best->size(), 6);
}

TEST(Search, GreedyTrimPreservesCorrectness) {
    TrimOptions o;
    o.n = 3;
    o.trials = 4000;
    o.exhaustive = false;  // keep the unit test fast; the tool runs the full pass
    const Network base = make_add_network(3);
    const Network t = greedy_trim(base, o);
    EXPECT_LE(t.size(), base.size());
    EXPECT_TRUE(t.well_formed());
    // Re-verify with an independent seed. Randomized-only trimming can
    // overfit right up to the bound (that gap is the paper's argument for
    // formal verification), so allow 2 bits of slack here; the exhaustive
    // variant below enforces the strict contract.
    const CheckResult r = check_add_random(t, 3, 30000, 31337, paper_add_bound_bits(3, 53) - 2);
    EXPECT_TRUE(r.pass) << "trimmed network regressed: worst=2^" << r.worst_err_log2;
}

TEST(Search, GreedyTrimApproachesPaperSize) {
    // With randomized-only verification the trimmer should get close to the
    // paper's SMT-minimized size of 14 for add3 (it may land slightly below,
    // since random campaigns are weaker than the SMT proof -- that gap IS the
    // paper's point).
    TrimOptions o;
    o.n = 3;
    o.trials = 3000;
    o.exhaustive = false;
    const Network t = greedy_trim(make_add_network(3), o);
    EXPECT_LE(t.size(), 16);
}

TEST(Search, TrimRespectsExhaustiveVerification) {
    // With the exhaustive small-p gate enabled, the trimmer must keep enough
    // gates to avoid the known renorm-removal overlap defect.
    TrimOptions o;
    o.n = 3;
    o.trials = 1500;
    o.exhaustive = true;
    const Network t = greedy_trim(make_add_network(3), o);
    const CheckResult e = check_add_exhaustive(t, 3, 3, 1, 1);
    EXPECT_TRUE(e.pass) << "trimmed add3 fails exhaustion at size " << t.size();
}

}  // namespace
