// Big-integer magnitude layer: cross-validation against 64/128-bit machine
// arithmetic and algebraic identities at larger sizes.

#include <gtest/gtest.h>

#include <random>

#include "bigfloat/bigint.hpp"

namespace {

using namespace mf::big;

Limbs L(std::uint64_t x) { return from_u64(x); }

std::uint64_t to_u64(const Limbs& v) {
    EXPECT_LE(v.size(), 1u);
    return v.empty() ? 0 : v[0];
}

Limbs random_limbs(std::mt19937_64& rng, std::size_t max_limbs) {
    Limbs v(1 + rng() % max_limbs);
    for (auto& l : v) l = rng();
    if (rng() % 4 == 0) v.back() &= 0xffff;  // vary top-limb population
    normalize(v);
    return v;
}

TEST(BigInt, AddSubMatchMachine64) {
    std::mt19937_64 rng(1);
    for (int i = 0; i < 50000; ++i) {
        const std::uint64_t a = rng() >> 1;  // headroom to avoid overflow
        const std::uint64_t b = rng() >> 1;
        EXPECT_EQ(to_u64(uadd(L(a), L(b))), a + b);
        const auto [hi, lo] = std::minmax(a, b);
        EXPECT_EQ(to_u64(usub(L(lo), L(hi))), lo - hi);
    }
}

TEST(BigInt, MulMatchesMachine128) {
    std::mt19937_64 rng(2);
    for (int i = 0; i < 50000; ++i) {
        const std::uint64_t a = rng();
        const std::uint64_t b = rng();
        const unsigned __int128 want = static_cast<unsigned __int128>(a) * b;
        const Limbs got = umul(L(a), L(b));
        unsigned __int128 g = 0;
        if (got.size() > 1) g = static_cast<unsigned __int128>(got[1]) << 64;
        if (!got.empty()) g |= got[0];
        EXPECT_TRUE(g == want);
    }
}

TEST(BigInt, DivRemMatchesMachine) {
    std::mt19937_64 rng(3);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t a = rng();
        const std::uint64_t b = 1 + (rng() >> (rng() % 48));
        const auto [q, r] = udivrem(L(a), L(b));
        EXPECT_EQ(to_u64(q), a / b);
        EXPECT_EQ(to_u64(r), a % b);
    }
}

TEST(BigInt, DivRemIdentityLarge) {
    std::mt19937_64 rng(4);
    for (int i = 0; i < 300; ++i) {
        const Limbs a = random_limbs(rng, 6);
        Limbs b = random_limbs(rng, 3);
        if (is_zero(b)) b = L(7);
        const auto [q, r] = udivrem(a, b);
        // a == q*b + r and r < b.
        EXPECT_EQ(ucmp(uadd(umul(q, b), r), a), 0);
        EXPECT_LT(ucmp(r, b), 0);
    }
}

TEST(BigInt, SqrtIdentityLarge) {
    std::mt19937_64 rng(5);
    for (int i = 0; i < 300; ++i) {
        const Limbs a = random_limbs(rng, 5);
        const auto [s, r] = usqrt(a);
        // s^2 + r == a and (s+1)^2 > a.
        EXPECT_EQ(ucmp(uadd(umul(s, s), r), a), 0);
        Limbs s1 = s;
        uinc(s1);
        EXPECT_GT(ucmp(umul(s1, s1), a), 0);
    }
}

TEST(BigInt, SqrtSmallExact) {
    for (std::uint64_t n = 0; n < 5000; ++n) {
        const auto [s, r] = usqrt(L(n));
        const std::uint64_t si = to_u64(s);
        EXPECT_LE(si * si, n);
        EXPECT_GT((si + 1) * (si + 1), n);
        EXPECT_EQ(to_u64(r), n - si * si);
    }
}

TEST(BigInt, ShiftsRoundTrip) {
    std::mt19937_64 rng(6);
    for (int i = 0; i < 5000; ++i) {
        const Limbs a = random_limbs(rng, 4);
        const auto sh = static_cast<std::int64_t>(rng() % 200);
        bool sticky = true;
        const Limbs back = ushr(ushl(a, sh), sh, &sticky);
        EXPECT_EQ(ucmp(back, a), 0);
        EXPECT_FALSE(sticky);  // nothing lost shifting back down
    }
}

TEST(BigInt, ShrSticky) {
    // 0b10110 >> 3 == 0b10 with sticky (bits 0b110 lost... bit1 and bit2 set).
    Limbs v = L(0b10110);
    bool sticky = false;
    const Limbs r = ushr(v, 3, &sticky);
    EXPECT_EQ(to_u64(r), 0b10u);
    EXPECT_TRUE(sticky);
    sticky = true;
    const Limbs r2 = ushr(L(0b10000), 3, &sticky);
    EXPECT_EQ(to_u64(r2), 0b10u);
    EXPECT_FALSE(sticky);
}

TEST(BigInt, BitLengthAndBits) {
    EXPECT_EQ(bit_length({}), 0);
    EXPECT_EQ(bit_length(L(1)), 1);
    EXPECT_EQ(bit_length(L(0x8000000000000000ull)), 64);
    Limbs v;
    set_bit(v, 130);
    EXPECT_EQ(bit_length(v), 131);
    EXPECT_TRUE(get_bit(v, 130));
    EXPECT_FALSE(get_bit(v, 129));
    EXPECT_FALSE(any_below(v, 130));
    EXPECT_TRUE(any_below(v, 131));
}

TEST(BigInt, CompareTotalOrder) {
    std::mt19937_64 rng(7);
    for (int i = 0; i < 5000; ++i) {
        const Limbs a = random_limbs(rng, 3);
        const Limbs b = random_limbs(rng, 3);
        const int ab = ucmp(a, b);
        EXPECT_EQ(ucmp(b, a), -ab);
        EXPECT_EQ(ucmp(a, a), 0);
        if (ab < 0) EXPECT_GT(ucmp(uadd(a, L(1)), a), 0);
    }
}

TEST(BigInt, NormalizeStripsHighZeros) {
    Limbs v{5, 0, 0};
    normalize(v);
    EXPECT_EQ(v.size(), 1u);
    Limbs z{0, 0};
    normalize(z);
    EXPECT_TRUE(z.empty());
    EXPECT_TRUE(is_zero(z));
}

}  // namespace
