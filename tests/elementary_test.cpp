// Elementary transcendental functions: checked against independent exact
// oracles (Taylor series evaluated in exact BigFloat arithmetic, and pi via
// Machin's formula, both implemented HERE rather than in the library) plus
// algebraic identities.

#include <gtest/gtest.h>

#include <random>

#include "mf/elementary.hpp"
#include "support.hpp"

namespace {

using namespace mf;
using mf::big::BigFloat;
using mf::test::adversarial;
using mf::test::exact;

// ---------------------------------------------------------------------------
// Independent oracles (exact arithmetic; truncation error is bounded by the
// first dropped term, which we drive below 2^-300).
// ---------------------------------------------------------------------------

/// exp(x) for |x| <= 1 via the exact Taylor series.
BigFloat exp_oracle(const BigFloat& x) {
    BigFloat sum = BigFloat::from_int(1);
    BigFloat term = BigFloat::from_int(1);
    for (int k = 1; k < 120; ++k) {
        term = BigFloat::div(term * x, BigFloat::from_int(k), 400);
        sum = sum + term;
    }
    return sum;
}

/// sin(x) for |x| <= 2 via the exact Taylor series.
BigFloat sin_oracle(const BigFloat& x) {
    BigFloat sum = x;
    BigFloat term = x;
    const BigFloat x2 = x * x;
    for (int k = 3; k < 140; k += 2) {
        term = BigFloat::div(term * x2, BigFloat::from_int(k * (k - 1)), 400);
        sum = (((k - 1) / 2) % 2 == 1) ? sum - term : sum + term;
    }
    return sum;
}

BigFloat cos_oracle(const BigFloat& x) {
    BigFloat sum = BigFloat::from_int(1);
    BigFloat term = BigFloat::from_int(1);
    const BigFloat x2 = x * x;
    for (int k = 2; k < 140; k += 2) {
        term = BigFloat::div(term * x2, BigFloat::from_int(k * (k - 1)), 400);
        sum = ((k / 2) % 2 == 1) ? sum - term : sum + term;
    }
    return sum;
}

/// atan(1/q) for integer q >= 2 via the exact Gregory series.
BigFloat atan_inv_oracle(std::int64_t q) {
    const BigFloat invq = BigFloat::div(BigFloat::from_int(1), BigFloat::from_int(q), 400);
    const BigFloat invq2 = (invq * invq).round(400);
    BigFloat pow = invq;
    BigFloat sum = invq;
    for (int k = 3; k < 260; k += 2) {
        pow = (pow * invq2).round(400);
        const BigFloat term = BigFloat::div(pow, BigFloat::from_int(k), 400);
        sum = ((k / 2) % 2 == 1) ? sum - term : sum + term;
    }
    return sum;
}

/// pi via Machin: pi = 16 atan(1/5) - 4 atan(1/239).
BigFloat pi_oracle() {
    return atan_inv_oracle(5).ldexp(4) - atan_inv_oracle(239).ldexp(2);
}

// Working-accuracy bound for transcendental results: a few ulps of N*p plus
// argument-reduction slack.
template <int N, int P>
constexpr int elem_bound = N * P - N - 9;

template <typename MF>
class ElemTyped : public ::testing::Test {};

using Types = ::testing::Types<MultiFloat<double, 2>, MultiFloat<double, 3>,
                               MultiFloat<double, 4>>;
TYPED_TEST_SUITE(ElemTyped, Types);

TYPED_TEST(ElemTyped, ExpMatchesSeriesOracle) {
    constexpr int N = TypeParam::num_limbs;
    std::mt19937_64 rng(1 + N);
    for (int i = 0; i < 60; ++i) {
        const TypeParam x = adversarial<double, N>(rng, -6, 0);  // |x| <= 1
        const TypeParam got = mf::exp(x);
        const BigFloat want = exp_oracle(exact(x));
        MF_EXPECT_REL_BOUND(got, want, (elem_bound<N, 53>));
    }
}

TYPED_TEST(ElemTyped, SinCosMatchSeriesOracle) {
    constexpr int N = TypeParam::num_limbs;
    std::mt19937_64 rng(2 + N);
    for (int i = 0; i < 60; ++i) {
        const TypeParam x = adversarial<double, N>(rng, -6, 0);
        const TypeParam s = mf::sin(x);
        const TypeParam c = mf::cos(x);
        MF_EXPECT_REL_BOUND(s, sin_oracle(exact(x)), (elem_bound<N, 53>));
        MF_EXPECT_REL_BOUND(c, cos_oracle(exact(x)), (elem_bound<N, 53>));
    }
}

TYPED_TEST(ElemTyped, ExpLogRoundTrip) {
    constexpr int N = TypeParam::num_limbs;
    std::mt19937_64 rng(3 + N);
    for (int i = 0; i < 40; ++i) {
        const TypeParam x = abs(adversarial<double, N>(rng, -8, 8));
        if (x.is_zero()) continue;
        const TypeParam back = mf::exp(mf::log(x));
        MF_EXPECT_REL_BOUND(back, exact(x), (elem_bound<N, 53>));
        // And the other direction on a bounded range.
        const TypeParam y = adversarial<double, N>(rng, -4, 3);
        const TypeParam back2 = mf::log(mf::exp(y));
        const BigFloat wy = exact(y);
        if (!wy.is_zero()) {
            // log(exp y) - y is an ABSOLUTE error comparison near y = 0.
            const BigFloat diff = (exact(back2) - wy).abs();
            const double lhs =
                diff.is_zero() ? -1e9 : static_cast<double>(diff.ilogb());
            const double rhs =
                static_cast<double>(wy.ilogb()) - (elem_bound<N, 53>)+6;
            EXPECT_LE(lhs, rhs) << "case " << i;
        }
    }
}

TYPED_TEST(ElemTyped, ExpFunctionalEquation) {
    constexpr int N = TypeParam::num_limbs;
    std::mt19937_64 rng(4 + N);
    for (int i = 0; i < 40; ++i) {
        const TypeParam a = adversarial<double, N>(rng, -4, 2);
        const TypeParam b = adversarial<double, N>(rng, -4, 2);
        const TypeParam lhs = mf::exp(add(a, b));
        const TypeParam rhs = mul(mf::exp(a), mf::exp(b));
        MF_EXPECT_REL_BOUND(lhs, exact(rhs), (elem_bound<N, 53> - 3));
    }
}

TYPED_TEST(ElemTyped, PythagoreanIdentity) {
    constexpr int N = TypeParam::num_limbs;
    std::mt19937_64 rng(5 + N);
    for (int i = 0; i < 60; ++i) {
        const TypeParam x = adversarial<double, N>(rng, -6, 6);
        const TypeParam s = mf::sin(x);
        const TypeParam c = mf::cos(x);
        const TypeParam one = add(mul(s, s), mul(c, c));
        MF_EXPECT_REL_BOUND(one, BigFloat::from_int(1), (elem_bound<N, 53> - 2));
    }
}

TYPED_TEST(ElemTyped, TrigAdditionFormula) {
    constexpr int N = TypeParam::num_limbs;
    std::mt19937_64 rng(6 + N);
    for (int i = 0; i < 30; ++i) {
        const TypeParam a = adversarial<double, N>(rng, -4, 2);
        const TypeParam b = adversarial<double, N>(rng, -4, 2);
        const TypeParam lhs = mf::sin(add(a, b));
        const TypeParam rhs =
            add(mul(mf::sin(a), mf::cos(b)), mul(mf::cos(a), mf::sin(b)));
        const BigFloat want = exact(rhs);
        if (!want.is_zero()) {
            MF_EXPECT_REL_BOUND(lhs, want, (elem_bound<N, 53> - 6));
        }
    }
}

TYPED_TEST(ElemTyped, PiAgreesWithMachin) {
    constexpr int N = TypeParam::num_limbs;
    const TypeParam p = mf::pi<double, N>();
    MF_EXPECT_REL_BOUND(p, pi_oracle(), TypeParam::precision - 1);
    // sin(pi) == 0 to working accuracy (absolute).
    const TypeParam sp = mf::sin(p);
    EXPECT_LT(std::abs(sp.limb[0]), std::ldexp(1.0, -(N * 53 - N - 6)));
    // cos(pi) == -1.
    const TypeParam cp = mf::cos(p);
    MF_EXPECT_REL_BOUND(cp, BigFloat::from_int(-1), (elem_bound<N, 53>));
}

TYPED_TEST(ElemTyped, PowAndHyperbolics) {
    constexpr int N = TypeParam::num_limbs;
    std::mt19937_64 rng(7 + N);
    for (int i = 0; i < 20; ++i) {
        const TypeParam x = abs(adversarial<double, N>(rng, -2, 2));
        if (x.is_zero()) continue;
        // x^3 via pow matches repeated multiplication.
        const TypeParam p3 = mf::pow(x, TypeParam(3.0));
        const TypeParam want = mul(mul(x, x), x);
        MF_EXPECT_REL_BOUND(p3, exact(want), (elem_bound<N, 53> - 3));
        // cosh^2 - sinh^2 == 1.
        const TypeParam y = adversarial<double, N>(rng, -3, 1);
        const TypeParam ch = mf::cosh(y);
        const TypeParam sh = mf::sinh(y);
        const TypeParam one = sub(mul(ch, ch), mul(sh, sh));
        MF_EXPECT_REL_BOUND(one, BigFloat::from_int(1), (elem_bound<N, 53> - 6));
    }
}

TYPED_TEST(ElemTyped, TanConsistency) {
    constexpr int N = TypeParam::num_limbs;
    std::mt19937_64 rng(8 + N);
    for (int i = 0; i < 30; ++i) {
        const TypeParam x = adversarial<double, N>(rng, -4, 1);
        const TypeParam t = mf::tan(x);
        const TypeParam want = div(mf::sin(x), mf::cos(x));
        const BigFloat w = exact(want);
        if (!w.is_zero()) MF_EXPECT_REL_BOUND(t, w, (elem_bound<N, 53> - 4));
    }
}

TYPED_TEST(ElemTyped, AtanMatchesGregoryOracle) {
    constexpr int N = TypeParam::num_limbs;
    // atan(1/q) for small integers against the exact Gregory series.
    for (std::int64_t q : {2, 3, 5, 7, 239}) {
        const TypeParam x = div(TypeParam(1.0), TypeParam(static_cast<double>(q)));
        const TypeParam got = mf::atan(x);
        MF_EXPECT_REL_BOUND(got, atan_inv_oracle(q), (elem_bound<N, 53> - 4));
    }
    // tan(atan(x)) == x round trip.
    std::mt19937_64 rng(10 + N);
    for (int i = 0; i < 20; ++i) {
        const TypeParam x = adversarial<double, N>(rng, -4, 4);
        if (x.is_zero()) continue;
        const TypeParam back = mf::tan(mf::atan(x));
        MF_EXPECT_REL_BOUND(back, exact(x), (elem_bound<N, 53> - 8));
    }
}

TYPED_TEST(ElemTyped, AsinAcosIdentities) {
    constexpr int N = TypeParam::num_limbs;
    std::mt19937_64 rng(11 + N);
    for (int i = 0; i < 20; ++i) {
        TypeParam x = adversarial<double, N>(rng, -4, -1);  // |x| < 1/2
        const TypeParam s = mf::asin(x);
        const TypeParam back = mf::sin(s);
        if (!exact(x).is_zero()) {
            MF_EXPECT_REL_BOUND(back, exact(x), (elem_bound<N, 53> - 8));
        }
        // asin + acos == pi/2.
        const TypeParam total = add(s, mf::acos(x));
        MF_EXPECT_REL_BOUND(total, pi_oracle().ldexp(-1).round(400),
                            (elem_bound<N, 53> - 6));
    }
    // Endpoints.
    const TypeParam one(1.0);
    MF_EXPECT_REL_BOUND(mf::asin(one), pi_oracle().ldexp(-1), (elem_bound<N, 53>));
    MF_EXPECT_REL_BOUND(mf::acos(-one), pi_oracle(), (elem_bound<N, 53>));
}

TYPED_TEST(ElemTyped, Atan2Quadrants) {
    constexpr int N = TypeParam::num_limbs;
    const TypeParam one(1.0);
    // atan2(1, 1) = pi/4; atan2(1, -1) = 3pi/4; atan2(-1, -1) = -3pi/4.
    const BigFloat quarter_pi = pi_oracle().ldexp(-2);
    MF_EXPECT_REL_BOUND(mf::atan2(one, one), quarter_pi, (elem_bound<N, 53> - 4));
    MF_EXPECT_REL_BOUND(mf::atan2(one, -one),
                        (pi_oracle() * BigFloat::from_int(3)).ldexp(-2).round(400),
                        (elem_bound<N, 53> - 4));
    MF_EXPECT_REL_BOUND(mf::atan2(-one, -one),
                        (-(pi_oracle() * BigFloat::from_int(3))).ldexp(-2).round(400),
                        (elem_bound<N, 53> - 4));
    MF_EXPECT_REL_BOUND(mf::atan2(one, TypeParam(0.0)), pi_oracle().ldexp(-1),
                        (elem_bound<N, 53>));
    EXPECT_TRUE(mf::atan2(TypeParam(0.0), TypeParam(0.0)).is_zero());
}

TYPED_TEST(ElemTyped, Base2And10Logs) {
    constexpr int N = TypeParam::num_limbs;
    // log2(2^k) == k and log10(10^k) == k exactly to working accuracy.
    for (int k : {1, 3, 10}) {
        const TypeParam p2 = mf::log2(TypeParam(std::ldexp(1.0, k)));
        MF_EXPECT_REL_BOUND(p2, BigFloat::from_int(k), (elem_bound<N, 53> - 4));
        const TypeParam e2 = mf::exp2(TypeParam(static_cast<double>(k)));
        MF_EXPECT_REL_BOUND(e2, BigFloat::from_int(std::int64_t(1) << k),
                            (elem_bound<N, 53> - 4));
    }
    const TypeParam l10 = mf::log10(TypeParam(1000.0));
    MF_EXPECT_REL_BOUND(l10, BigFloat::from_int(3), (elem_bound<N, 53> - 4));
}

TEST(Elementary, KnownDigits) {
    // e to 60 digits through the octuple-precision exp.
    const auto e = mf::exp(Float64x4(1.0));
    const std::string ref_e = "2.718281828459045235360287471352662497757";
    EXPECT_EQ(to_string(e, 50).substr(0, 40), ref_e.substr(0, 40));
    // log(2) against the library's own ln2 constant (independent paths:
    // Newton-on-exp vs parsed decimal string).
    const auto l2 = mf::log(Float64x4(2.0));
    const auto diff = sub(l2, mf::detail::const_ln2<double, 4>());
    EXPECT_LT(std::abs(diff.limb[0]), 0x1p-205);
}

TEST(Elementary, SpecialCases) {
    EXPECT_EQ(static_cast<double>(mf::exp(Float64x2(0.0)).to_float()), 1.0);
    EXPECT_TRUE(mf::sin(Float64x3(0.0)).is_zero());
    EXPECT_EQ(static_cast<double>(mf::cos(Float64x3(0.0)).to_float()), 1.0);
    EXPECT_TRUE(std::isnan(mf::log(Float64x2(-1.0)).limb[0]));
    EXPECT_TRUE(std::isinf(mf::exp(Float64x2(1e10)).limb[0]));
    EXPECT_EQ(static_cast<double>(mf::exp(Float64x2(-1e10)).to_float()), 0.0);
}

TEST(Elementary, LargeArgumentReduction) {
    // sin(1000) still accurate: the reduction is done at working precision.
    const auto s = mf::sin(Float64x3(1000.0));
    // Reference: reduce 1000 mod 2pi with the oracle pi, then series.
    const BigFloat pi2 = pi_oracle().ldexp(1);
    BigFloat r = BigFloat::from_int(1000);
    // 1000 / (2pi) ~ 159.15 -> subtract 159 * 2pi.
    r = r - (pi2 * BigFloat::from_int(159));
    // r ~ 0.97; bring into series range.
    const BigFloat want = sin_oracle(r.round(400));
    MF_EXPECT_REL_BOUND(s, want, 3 * 53 - 3 - 14);
}

}  // namespace
