// mf::guard environment sentinels (DESIGN.md §12).
//
// Uses ScopedFpPerturb -- ScopedFpEnv's inverse -- to install each hostile
// environment the guard defends against, then asserts the behavioral probes
// detect every one, that ScopedFpEnv neutralizes them, and that the Sentinel
// wired into the blas:: entry points reports and (under enforce) corrects
// them with bit-identical results. Along the way it DOCUMENTS the actual
// numerical damage each environment does to the paper's add2/mul2 kernels:
// the divergence counts printed by EnvDamage are the empirical version of
// the robustness analysis in "On the robustness of double-word addition
// algorithms" (PAPERS.md).
//
// Every test restores the thread's FP environment on exit (RAII guards);
// the suite must leave the process exactly as it found it regardless of
// assertion outcomes.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <random>
#include <vector>

#include "blas/blas.hpp"
#include "check/generators.hpp"
#include "guard/guard.hpp"
#include "telemetry/registry.hpp"

namespace {

using namespace mf;
using guard::Perturb;
using guard::Rounding;

using MF2 = MultiFloat<double, 2>;

bool same_bits(double a, double b) {
    return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}
bool same_bits(const MF2& a, const MF2& b) {
    return same_bits(a.limb[0], b.limb[0]) && same_bits(a.limb[1], b.limb[1]);
}

std::uint64_t counters_containing(std::string_view needle) {
    std::uint64_t total = 0;
    for (const auto& c : telemetry::Registry::instance().snapshot().counters) {
        if (c.name.find(needle) != std::string::npos) total += c.value;
    }
    return total;
}

/// The perturbations this build can apply, with tags for messages.
std::vector<std::pair<const char*, Perturb>> supported_perturbs() {
    std::vector<std::pair<const char*, Perturb>> out;
    out.emplace_back("round_toward_zero", Perturb::round_toward_zero);
    out.emplace_back("round_upward", Perturb::round_upward);
    out.emplace_back("round_downward", Perturb::round_downward);
    if (guard::perturb_supported(Perturb::ftz)) out.emplace_back("ftz", Perturb::ftz);
    if (guard::perturb_supported(Perturb::daz)) out.emplace_back("daz", Perturb::daz);
    return out;
}

TEST(GuardProbe, NominalEnvironmentIsNominal) {
    guard::ScopedFpEnv clean;
    const guard::FpEnvSnapshot s = guard::fp_env_snapshot();
    EXPECT_EQ(s.rounding, Rounding::nearest);
    EXPECT_FALSE(s.ftz);
    EXPECT_FALSE(s.daz);
    EXPECT_TRUE(s.subnormals_ok);
    EXPECT_TRUE(guard::env_nominal(s));
    EXPECT_EQ(guard::fp_env_string(s), "rn");
    // This build pins -ffp-contract=off; the contraction probe must agree.
    EXPECT_FALSE(s.fma_contraction);
}

TEST(GuardProbe, DetectsEveryPerturbation) {
    guard::FpEnvSaver restore;
    for (const auto& [tag, p] : supported_perturbs()) {
        guard::ScopedFpPerturb hostile(p);
        const guard::FpEnvSnapshot s = guard::fp_env_snapshot();
        EXPECT_FALSE(guard::env_nominal(s)) << "undetected perturbation: " << tag;
        switch (p) {
            case Perturb::round_toward_zero:
                EXPECT_EQ(s.rounding, Rounding::toward_zero) << tag;
                break;
            case Perturb::round_upward:
                EXPECT_EQ(s.rounding, Rounding::upward) << tag;
                break;
            case Perturb::round_downward:
                EXPECT_EQ(s.rounding, Rounding::downward) << tag;
                break;
            case Perturb::ftz:
                EXPECT_TRUE(s.ftz) << tag;
                break;
            case Perturb::daz:
                EXPECT_TRUE(s.daz) << tag;
                break;
            default:
                break;
        }
    }
    // All RAII guards unwound: back to the ambient environment.
    SUCCEED();
}

TEST(GuardProbe, ScopedFpEnvNeutralizesEveryPerturbation) {
    guard::FpEnvSaver restore;
    for (const auto& [tag, p] : supported_perturbs()) {
        guard::ScopedFpPerturb hostile(p);
        {
            guard::ScopedFpEnv clean;
            EXPECT_TRUE(guard::env_nominal(guard::fp_env_snapshot()))
                << "ScopedFpEnv failed to neutralize " << tag;
        }
        // ...and its destructor must hand the hostile environment back.
        EXPECT_FALSE(guard::env_nominal(guard::fp_env_snapshot()))
            << "ScopedFpEnv restore lost the caller's environment (" << tag << ")";
    }
}

TEST(GuardProbe, PerturbRoundTripRestoresRegister) {
    const std::uint64_t before = guard::read_control_register();
    {
        guard::ScopedFpPerturb hostile(Perturb::round_toward_zero |
                                       Perturb::ftz);
        (void)guard::fp_env_snapshot();
    }
    EXPECT_EQ(guard::read_control_register(), before);
}

// Document the numerical damage: run the paper's add2/mul2 over a
// structure-aware corpus in each hostile environment and count results that
// differ from the round-to-nearest reference. No hard assertion on the
// counts (they are environment-dependent facts, not contracts) -- the
// contract under test is that the SENTINEL catches the environment, above.
TEST(GuardProbe, EnvDamageAdd2Mul2Documented) {
    constexpr int kSamples = 2000;
    check::GenConfig cfg;
    std::mt19937_64 rng(20260807);
    std::vector<MF2> xs(kSamples), ys(kSamples);
    std::vector<MF2> add_ref(kSamples), mul_ref(kSamples);
    {
        guard::ScopedFpEnv clean;
        for (int i = 0; i < kSamples; ++i) {
            xs[i] = check::gen<double, 2>(rng, check::Category::ladder, cfg);
            ys[i] = check::gen<double, 2>(rng, check::Category::straddle, cfg);
            add_ref[i] = xs[i] + ys[i];
            mul_ref[i] = xs[i] * ys[i];
        }
    }
    guard::FpEnvSaver restore;
    for (const auto& [tag, p] : supported_perturbs()) {
        guard::ScopedFpPerturb hostile(p);
        int add_div = 0, mul_div = 0;
        for (int i = 0; i < kSamples; ++i) {
            if (!same_bits(xs[i] + ys[i], add_ref[i])) ++add_div;
            if (!same_bits(xs[i] * ys[i], mul_ref[i])) ++mul_div;
        }
        std::printf("  [env-damage] %-18s add2 %5d/%d diverge, mul2 %5d/%d diverge\n",
                    tag, add_div, kSamples, mul_div, kSamples);
        // Under the SAME hostile environment, ScopedFpEnv (what
        // policy=enforce installs) must reproduce the reference exactly.
        guard::ScopedFpEnv clean;
        for (int i = 0; i < kSamples; ++i) {
            ASSERT_TRUE(same_bits(xs[i] + ys[i], add_ref[i]))
                << tag << ": enforced add2 diverged at sample " << i;
            ASSERT_TRUE(same_bits(xs[i] * ys[i], mul_ref[i]))
                << tag << ": enforced mul2 diverged at sample " << i;
        }
    }
}

class GuardSentinelTest : public ::testing::Test {
protected:
    void SetUp() override { saved_ = guard::policy(); }
    void TearDown() override {
        guard::set_policy(saved_);
        guard::inject::reset();
    }
    guard::Policy saved_{};
};

TEST_F(GuardSentinelTest, WarnDetectsAndCountsButDoesNotTouchEnv) {
    guard::set_policy(guard::Policy::warn);
    guard::FpEnvSaver restore;
    const std::uint64_t before = counters_containing("mf_guard_violation_total");
    {
        guard::ScopedFpPerturb hostile(Perturb::round_toward_zero);
        guard::Sentinel s("test.warn");
        EXPECT_FALSE(s.enforced());
        // warn must NOT change the running environment.
        EXPECT_EQ(guard::fp_env_snapshot().rounding, Rounding::toward_zero);
    }
    const std::uint64_t after = counters_containing("mf_guard_violation_total");
#if MF_TELEMETRY_ENABLED
    EXPECT_GE(after - before, 1u);
#else
    EXPECT_EQ(after, before);
#endif
}

TEST_F(GuardSentinelTest, EnforceInstallsNominalAndRestoresCaller) {
    guard::set_policy(guard::Policy::enforce);
    guard::FpEnvSaver restore;
    guard::ScopedFpPerturb hostile(Perturb::round_toward_zero);
    {
        guard::Sentinel s("test.enforce");
        EXPECT_TRUE(s.enforced());
        EXPECT_TRUE(guard::env_nominal(guard::fp_env_snapshot()));
    }
    // Sentinel destruction hands the (hostile) caller environment back.
    EXPECT_EQ(guard::fp_env_snapshot().rounding, Rounding::toward_zero);
}

TEST_F(GuardSentinelTest, IgnoreProbesNothing) {
    guard::set_policy(guard::Policy::ignore);
    guard::FpEnvSaver restore;
    const std::uint64_t before = counters_containing("mf_guard");
    {
        guard::ScopedFpPerturb hostile(Perturb::round_toward_zero);
        guard::Sentinel s("test.ignore");
        EXPECT_FALSE(s.enforced());
    }
    EXPECT_EQ(counters_containing("mf_guard"), before);
}

TEST_F(GuardSentinelTest, ExitProbeCatchesMidCallFlip) {
    guard::set_policy(guard::Policy::warn);
    guard::FpEnvSaver restore;
    const std::uint64_t before = counters_containing("when=\"exit\"");
    {
        guard::Sentinel s("test.midflip");
        guard::apply_perturb(Perturb::round_toward_zero);  // "callback" damage
    }
#if MF_TELEMETRY_ENABLED
    EXPECT_GE(counters_containing("when=\"exit\"") - before, 1u);
#endif
}

TEST_F(GuardSentinelTest, EnforcedBlasGemmIsBitIdenticalToCleanRun) {
    using V = MultiFloat<double, 2>;
    constexpr std::size_t n = 12, k = 7, m = 9;
    check::GenConfig cfg;
    std::mt19937_64 rng(7);
    std::vector<V> a(n * k), b(k * m), c_clean(n * m), c_hostile(n * m);
    for (auto& v : a) v = check::gen<double, 2>(rng, check::Category::ladder, cfg);
    for (auto& v : b) v = check::gen<double, 2>(rng, check::Category::ladder, cfg);
    {
        guard::ScopedFpEnv clean;
        blas::gemm(blas::view(std::as_const(a), n, k),
                   blas::view(std::as_const(b), k, m), blas::view(c_clean, n, m));
    }
    guard::set_policy(guard::Policy::enforce);
    guard::FpEnvSaver restore;
    {
        guard::ScopedFpPerturb hostile(Perturb::round_toward_zero);
        blas::gemm(blas::view(std::as_const(a), n, k),
                   blas::view(std::as_const(b), k, m),
                   blas::view(c_hostile, n, m));
    }
    for (std::size_t i = 0; i < n * m; ++i) {
        ASSERT_TRUE(same_bits(c_clean[i], c_hostile[i])) << "element " << i;
    }
}

}  // namespace
