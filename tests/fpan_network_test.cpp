// FPAN data structures: structural metrics, serialization, diagrams,
// well-formedness, and the paper-network inventory.

#include <gtest/gtest.h>

#include "fpan/library.hpp"
#include "fpan/network.hpp"

namespace {

using namespace mf::fpan;

TEST(Network, SizeDepthOfFigure2) {
    const Network n = make_add_network(2);
    EXPECT_EQ(n.size(), 6);       // paper Figure 2: size 6
    EXPECT_LE(n.depth(), 5);      // AccurateDWPlusDW realization: depth 5
    EXPECT_EQ(n.num_discards(), 2);
    EXPECT_TRUE(n.well_formed());
    EXPECT_EQ(n.outputs.size(), 2u);
}

TEST(Network, SizeDepthOfFigure5) {
    const Network n = make_mul_network(2);
    EXPECT_EQ(n.size(), 3);   // paper Figure 5: size 3
    EXPECT_EQ(n.depth(), 3);  // depth 3: provably optimal
    EXPECT_TRUE(n.well_formed());
}

TEST(Network, SweepNetworksMatchPaperScale) {
    // Reconstructions: within a handful of gates of the paper's SMT-minimized
    // networks (see DESIGN.md §2).
    EXPECT_EQ(make_add_network(3).size(), 18);  // paper: 14
    EXPECT_EQ(make_add_network(4).size(), 30);  // paper: 26
    EXPECT_LE(make_mul_network(3).size(), 15);  // paper: 12
    EXPECT_LE(make_mul_network(4).size(), 32);  // paper: 27
    for (const Network& n : paper_networks()) {
        EXPECT_TRUE(n.well_formed()) << n.name;
    }
}

TEST(Network, DepthIsLongestChain) {
    Network n;
    n.num_wires = 3;
    n.gates = {{GateKind::TwoSum, 0, 1}, {GateKind::TwoSum, 1, 2}, {GateKind::TwoSum, 0, 1}};
    n.outputs = {0};
    EXPECT_EQ(n.depth(), 3);
    Network par;
    par.num_wires = 4;
    par.gates = {{GateKind::TwoSum, 0, 1}, {GateKind::TwoSum, 2, 3}};
    par.outputs = {0};
    EXPECT_EQ(par.depth(), 1);  // independent gates run in parallel
}

TEST(Network, SerializeParseRoundTrip) {
    for (const Network& n : paper_networks()) {
        const Network back = Network::parse(n.serialize());
        EXPECT_EQ(back, n) << n.serialize();
    }
}

TEST(Network, SerializeFormat) {
    const Network n = make_mul_network(2);
    EXPECT_EQ(n.serialize(), "mul2 wires=4 out=0,2 : A(2,3) A(2,1) F(0,2)");
}

TEST(Network, WellFormedRejects) {
    Network n;
    n.num_wires = 2;
    n.outputs = {0};
    n.gates = {{GateKind::TwoSum, 0, 0}};  // self-loop
    EXPECT_FALSE(n.well_formed());
    n.gates = {{GateKind::TwoSum, 0, 5}};  // out of range
    EXPECT_FALSE(n.well_formed());
    n.gates = {{GateKind::Add, 0, 1}, {GateKind::TwoSum, 0, 1}};  // dead wire use
    EXPECT_FALSE(n.well_formed());
    n.gates = {{GateKind::Add, 0, 1}};
    n.outputs = {1};  // output on dead wire
    EXPECT_FALSE(n.well_formed());
    n.outputs = {0, 0};  // duplicate outputs
    EXPECT_FALSE(n.well_formed());
    n.outputs = {};  // no outputs
    EXPECT_FALSE(n.well_formed());
    n.outputs = {0};
    EXPECT_TRUE(n.well_formed());
}

TEST(Network, DiagramMentionsEveryGateAndLegend) {
    const Network n = make_add_network(2);
    const std::string d = n.diagram();
    EXPECT_NE(d.find("add2"), std::string::npos);
    EXPECT_NE(d.find("size 6"), std::string::npos);
    EXPECT_NE(d.find("legend"), std::string::npos);
    EXPECT_NE(d.find("> out"), std::string::npos);
}

TEST(Network, NaiveNetworkShape) {
    const Network n = make_naive_add_network(3);
    EXPECT_EQ(n.size(), 3);
    EXPECT_EQ(n.num_discards(), 3);
    EXPECT_TRUE(n.well_formed());
}

TEST(Network, MulLabelsMatchWireCounts) {
    for (int n = 2; n <= 4; ++n) {
        const auto labels = mul_network_labels(n);
        EXPECT_EQ(static_cast<int>(labels.size()), n * n);
        EXPECT_EQ(make_mul_network(n).num_wires, n * n);
    }
    EXPECT_THROW(mul_network_labels(5), std::invalid_argument);
}

}  // namespace
