// Ablation for §4.3: progressive-width Newton iteration vs. naive full-width
// iteration for reciprocal and division. The paper's optimization runs early
// iterations at half the expansion width (they only carry ~2^k * p correct
// bits); this bench quantifies the saving and verifies both variants meet
// the same accuracy against the exact oracle.

#include <cstdio>
#include <random>
#include <span>
#include <vector>

#include "bigfloat/bigfloat.hpp"
#include "harness.hpp"
#include "mf/multifloats.hpp"

using namespace mf;
using mf::big::BigFloat;

namespace {

template <int N>
void run_ablation() {
    std::mt19937_64 rng(42);
    std::vector<MultiFloat<double, N>> xs;
    for (int i = 0; i < 512; ++i) {
        xs.push_back(MultiFloat<double, N>(
            1.0 + static_cast<double>(rng() >> 12) * 0x1p-52));
        xs.back() = xs.back() + std::ldexp(1.0 + static_cast<double>(rng() >> 12) * 0x1p-52, -55);
    }
    std::vector<MultiFloat<double, N>> out(512);

    const double t_naive = bench::best_time([&] {
        for (std::size_t i = 0; i < 512; ++i) out[i] = recip(xs[i]);
    });
    const double t_prog = bench::best_time([&] {
        for (std::size_t i = 0; i < 512; ++i) out[i] = recip_progressive(xs[i]);
    });

    // Accuracy audit of both variants.
    double worst_naive = -1e9;
    double worst_prog = -1e9;
    for (std::size_t i = 0; i < 64; ++i) {
        BigFloat v;
        for (int k = 0; k < N; ++k) v = v + BigFloat::from_double(xs[i].limb[k]);
        const BigFloat want = BigFloat::div(BigFloat::from_int(1), v, N * 53 + 20);
        for (int variant = 0; variant < 2; ++variant) {
            const auto r = variant == 0 ? recip(xs[i]) : recip_progressive(xs[i]);
            BigFloat got;
            for (int k = 0; k < N; ++k) got = got + BigFloat::from_double(r.limb[k]);
            const BigFloat err = (got - want).abs();
            if (!err.is_zero()) {
                const auto l2 = static_cast<double>(
                    BigFloat::div(err, want.abs(), 64).ilogb());
                (variant == 0 ? worst_naive : worst_prog) =
                    std::max(variant == 0 ? worst_naive : worst_prog, l2);
            }
        }
    }

    std::printf(
        "recip N=%d: full-width %7.1f ns/op | progressive %7.1f ns/op | speedup %.2fx\n",
        N, t_naive / 512 * 1e9, t_prog / 512 * 1e9, t_naive / t_prog);
    std::printf("            worst error: full-width 2^%.0f, progressive 2^%.0f "
                "(target ~2^-%d)\n",
                worst_naive, worst_prog, N * 53 - N - 4);
}

}  // namespace

int main() {
    std::printf("Ablation (paper §4.3): progressive-width Newton division\n\n");
    run_ablation<2>();
    run_ablation<3>();
    run_ablation<4>();
    return 0;
}
