#include "paper_reference.hpp"

#include <algorithm>
#include <cstdio>

namespace mf::bench::paper {

void print_ref(const RefTable& t) {
    std::printf("\nPaper reference: %.*s %.*s (Fig. %s)\n",
                static_cast<int>(t.machine.size()), t.machine.data(),
                static_cast<int>(t.kernel.size()), t.kernel.data(),
                t.machine == "AMD Zen 5" ? "9" : "10");
    std::printf("%-24s%10s%10s%10s%10s\n", "Library", "53-bit", "103-bit", "156-bit",
                "208-bit");
    for (std::size_t r = 0; r < kRefRows.size(); ++r) {
        std::printf("%-24.*s", static_cast<int>(kRefRows[r].size()), kRefRows[r].data());
        for (int c = 0; c < 4; ++c) {
            if (t.gops[r][static_cast<std::size_t>(c)] < 0) {
                std::printf("%10s", "N/A");
            } else {
                std::printf("%10.2f", t.gops[r][static_cast<std::size_t>(c)]);
            }
        }
        std::printf("\n");
    }
}

double ref_ratio(const RefTable& t, int col) {
    const double ours = t.gops[0][static_cast<std::size_t>(col)];
    double best = 0.0;
    for (std::size_t r = 1; r < kRefRows.size(); ++r) {
        best = std::max(best, t.gops[r][static_cast<std::size_t>(col)]);
    }
    return best > 0 ? ours / best : 0.0;
}

}  // namespace mf::bench::paper
