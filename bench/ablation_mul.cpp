// Ablations for §4.2:
//
//  (1) Commutativity layer: the commutative 2-term multiplier (Figure 5) vs.
//      the FMA-chained non-commutative variant. The paper argues the layer
//      is nearly free; this measures the actual cost and demonstrates the
//      complex-conjugate artifact the non-commutative version produces.
//
//  (2) Discard optimization: the n^2-input accumulation (TwoProds only where
//      i+j <= n-2) vs. a full 2n^2-term accumulation that keeps every
//      TwoProd error and feeds them all through a distillation sweep.

#include <cstdio>
#include <random>
#include <vector>

#include "harness.hpp"
#include "mf/multifloats.hpp"

using namespace mf;

namespace {

std::vector<Float64x2> operands2(std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::vector<Float64x2> v;
    for (int i = 0; i < 1024; ++i) {
        Float64x2 x(1.0 + static_cast<double>(rng() >> 12) * 0x1p-52);
        x = x + std::ldexp(1.0 + static_cast<double>(rng() >> 12) * 0x1p-52, -55);
        v.push_back(x);
    }
    return v;
}

/// Full-expansion 2-term multiply WITHOUT the discard optimization: all four
/// TwoProds, all eight terms accumulated (2n^2 FPAN inputs).
Float64x2 mul2_full(const Float64x2& x, const Float64x2& y) noexcept {
    const auto [p00, e00] = two_prod(x.limb[0], y.limb[0]);
    const auto [p01, e01] = two_prod(x.limb[0], y.limb[1]);
    const auto [p10, e10] = two_prod(x.limb[1], y.limb[0]);
    const auto [p11, e11] = two_prod(x.limb[1], y.limb[1]);
    double v[8] = {p00, p01, e00, p10, e01, p11, e10, e11};
    detail::accumulate<2, 1>(v);
    return Float64x2({v[0], v[1]});
}

}  // namespace

int main() {
    std::printf("Ablations (paper §4.2): multiplication design choices\n\n");
    const auto xs = operands2(1);
    const auto ys = operands2(2);
    std::vector<Float64x2> zs(1024);

    const double t_comm = bench::best_time([&] {
        for (std::size_t i = 0; i < 1024; ++i) zs[i] = mul(xs[i], ys[i]);
    });
    const double t_fma = bench::best_time([&] {
        for (std::size_t i = 0; i < 1024; ++i)
            zs[i] = detail::mul2_noncommutative(xs[i], ys[i]);
    });
    const double t_full = bench::best_time([&] {
        for (std::size_t i = 0; i < 1024; ++i) zs[i] = mul2_full(xs[i], ys[i]);
    });

    std::printf("2-term multiply variants [ns/op]:\n");
    std::printf("  commutative, discard-optimized (Fig 5, ours): %7.2f\n",
                t_comm / 1024 * 1e9);
    std::printf("  non-commutative FMA chain:                    %7.2f\n",
                t_fma / 1024 * 1e9);
    std::printf("  full 2n^2-input accumulation (no discards):   %7.2f  (%.2fx slower)\n",
                t_full / 1024 * 1e9, t_full / t_comm);

    // Complex conjugate artifact (§4.2): (a+bi)(a-bi) imaginary part.
    std::printf("\nComplex conjugate product (a+bi)(a-bi), imaginary residue:\n");
    int nonzero_comm = 0;
    int nonzero_fma = 0;
    for (std::size_t i = 0; i < 1024; ++i) {
        const auto& a = xs[i];
        const auto& b = ys[i];
        const auto im_comm = sub(mul(a, b), mul(b, a));
        const auto im_fma = sub(detail::mul2_noncommutative(a, b),
                                detail::mul2_noncommutative(b, a));
        nonzero_comm += !im_comm.is_zero();
        nonzero_fma += !im_fma.is_zero();
    }
    std::printf("  commutative multiplier: %4d / 1024 nonzero (paper: always exactly 0)\n",
                nonzero_comm);
    std::printf("  FMA-chained multiplier: %4d / 1024 nonzero (the eigensolver artifact)\n",
                nonzero_fma);
    return 0;
}
