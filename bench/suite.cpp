#include "suite.hpp"

#include <cstdint>
#include <string_view>

#include "paper_reference.hpp"

#include "baselines/campary/campary.hpp"
#include "baselines/gmp_float.hpp"
#include "baselines/qd/dd_real.hpp"
#include "baselines/qd/qd_real.hpp"
#include "bigfloat/precfloat.hpp"
#include "blas/kernels.hpp"
#include "blas/planar.hpp"
#include "mf/multifloats.hpp"

namespace mf::bench {

const char* kernel_name(Kernel k) {
    switch (k) {
        case Kernel::Axpy: return "AXPY";
        case Kernel::Dot: return "DOT";
        case Kernel::Gemv: return "GEMV";
        default: return "GEMM";
    }
}

namespace {

/// Uniform "to double" across value types (some expose to_double(), some an
/// explicit conversion operator).
template <typename V>
double to_dbl(const V& v) {
    if constexpr (requires { v.to_double(); }) {
        return v.to_double();
    } else if constexpr (requires { v.to_float(); }) {
        return static_cast<double>(v.to_float());
    } else {
        return static_cast<double>(v);
    }
}

/// Deterministic operand vectors. Values in [1, 2): benign magnitudes, the
/// paper's dense-BLAS regime.
template <typename V>
std::vector<V> make_vec(std::size_t n, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::vector<V> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) v.emplace_back(fill_value(rng));
    return v;
}

/// Estimated bytes per element, to respect the paper's L3-resident sizing
/// for value types. Heap-backed types get a conservative figure.
template <typename V>
constexpr std::size_t elem_bytes() {
    if constexpr (sizeof(V) <= 64) {
        return sizeof(V);
    } else {
        return 128;
    }
}

/// Quick calibration: extended-precision ops per second at a small size.
template <typename V>
double calibrate_ops_per_sec() {
    const std::size_t n = 512;
    const auto x = make_vec<V>(n, 1);
    const auto y = make_vec<V>(n, 2);
    volatile double sink = 0.0;
    const double t = best_time(
        [&] {
            const V d = blas::dot<V>(blas::view(x), blas::view(y));
            sink = sink + to_dbl(d);
        },
        0.02, 2);
    return static_cast<double>(n) / t;
}

template <typename V>
double run_axpy(std::size_t n, double min_time) {
    const auto x = make_vec<V>(n, 3);
    auto y = make_vec<V>(n, 4);
    const double t = best_time(
        [&] { blas::axpy<V>(V(1.0009765625), blas::view(x), blas::view(y)); }, min_time);
    return static_cast<double>(n) / t / 1e9;
}

template <typename V>
double run_dot(std::size_t n, double min_time) {
    const auto x = make_vec<V>(n, 5);
    const auto y = make_vec<V>(n, 6);
    volatile double sink = 0.0;
    const double t = best_time(
        [&] {
            const V d = blas::dot<V>(blas::view(x), blas::view(y));
            sink = sink + to_dbl(d);
        },
        min_time);
    return static_cast<double>(n) / t / 1e9;
}

template <typename V>
double run_gemv(std::size_t n, double min_time) {
    const auto a = make_vec<V>(n * n, 7);
    const auto x = make_vec<V>(n, 8);
    std::vector<V> y(n, V(0.0));
    const double t = best_time(
        [&] { blas::gemv<V>(blas::view(a, n, n), blas::view(x), blas::view(y)); },
        min_time);
    return static_cast<double>(n) * static_cast<double>(n) / t / 1e9;
}

template <typename V>
double run_gemm(std::size_t n, double min_time) {
    const auto a = make_vec<V>(n * n, 9);
    const auto b = make_vec<V>(n * n, 10);
    std::vector<V> c(n * n, V(0.0));
    const double t = best_time(
        [&] {
            blas::gemm<V>(blas::view(a, n, n), blas::view(b, n, n), blas::view(c, n, n));
        },
        min_time);
    const double dn = static_cast<double>(n);
    return dn * dn * dn / t / 1e9;
}

/// One measurement: pick the problem size from the type's speed (so slow
/// software FPUs finish) capped at the L3-resident maximum (the paper's
/// sizing), then run the kernel.
template <typename V>
double measure(Kernel k, const SuiteOptions& opts) {
    const double ops_per_sec = calibrate_ops_per_sec<V>();
    const double budget = std::max(1024.0, std::min(opts.ops_budget, ops_per_sec * 0.25));
    const std::size_t l3 = l3_cache_bytes();
    switch (k) {
        case Kernel::Axpy:
        case Kernel::Dot: {
            const std::size_t cap = l3 / (3 * elem_bytes<V>());
            const auto n = static_cast<std::size_t>(
                std::clamp<double>(budget, 256, static_cast<double>(cap)));
            return k == Kernel::Axpy ? run_axpy<V>(n, opts.min_time)
                                     : run_dot<V>(n, opts.min_time);
        }
        case Kernel::Gemv: {
            const auto cap = static_cast<double>(l3) / (3.0 * elem_bytes<V>());
            const auto n = static_cast<std::size_t>(
                std::clamp(std::sqrt(budget), 16.0, std::sqrt(cap)));
            return run_gemv<V>(n, opts.min_time);
        }
        default: {
            const auto cap = static_cast<double>(l3) / (3.0 * elem_bytes<V>());
            const auto n = static_cast<std::size_t>(
                std::clamp(std::cbrt(budget * 4.0), 12.0, std::sqrt(cap)));
            return run_gemm<V>(n, opts.min_time);
        }
    }
}

template <typename V>
void fill_cell(Table& t, std::size_t row, std::size_t col, Kernel k,
               const SuiteOptions& opts) {
    const double gops = measure<V>(k, opts);
    t.set(row, col, gops);
    if (opts.verbose) {
        std::fprintf(stderr, "  %s %s[%zu]: %.3f GOp/s\n", t.title.c_str(),
                     t.rows[row].c_str(), col, gops);
    }
}

// ---------------------------------------------------------------------------
// Planar (SoA) measurements for the MultiFloats rows: the paper reports the
// maximum throughput over all configurations, and the planar layout is where
// the branch-free networks vectorize (src/blas/planar.hpp).
// ---------------------------------------------------------------------------

template <typename T, int N>
planar::Vector<T, N> make_planar(std::size_t n, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    planar::Vector<T, N> v(n);
    for (std::size_t i = 0; i < n; ++i) {
        v.set(i, MultiFloat<T, N>(static_cast<T>(fill_value(rng))));
    }
    return v;
}

template <typename T, int N>
double measure_planar(Kernel k, const SuiteOptions& opts) {
    using V = MultiFloat<T, N>;
    const double ops_per_sec = calibrate_ops_per_sec<V>() * 4.0;  // SoA headroom
    const double budget = std::max(1024.0, std::min(opts.ops_budget, ops_per_sec * 0.25));
    const std::size_t l3 = l3_cache_bytes();
    const auto cap = static_cast<double>(l3) / (3.0 * sizeof(V));
    const V alpha(T(1.0009765625));
    switch (k) {
        case Kernel::Axpy: {
            const auto n = static_cast<std::size_t>(std::clamp(budget, 256.0, cap));
            const auto x = make_planar<T, N>(n, 3);
            auto y = make_planar<T, N>(n, 4);
            const double t = best_time([&] { planar::axpy(alpha, x, y); }, opts.min_time);
            return static_cast<double>(n) / t / 1e9;
        }
        case Kernel::Dot: {
            const auto n = static_cast<std::size_t>(std::clamp(budget, 256.0, cap));
            const auto x = make_planar<T, N>(n, 5);
            const auto y = make_planar<T, N>(n, 6);
            volatile double sink = 0.0;
            const double t = best_time(
                [&] { sink = sink + static_cast<double>(planar::dot(x, y).to_float()); },
                opts.min_time);
            return static_cast<double>(n) / t / 1e9;
        }
        case Kernel::Gemv: {
            const auto n = static_cast<std::size_t>(
                std::clamp(std::sqrt(budget), 16.0, std::sqrt(cap)));
            const auto a = make_planar<T, N>(n * n, 7);
            const auto x = make_planar<T, N>(n, 8);
            planar::Vector<T, N> y(n);
            const double t =
                best_time([&] { planar::gemv(a, n, n, x, y); }, opts.min_time);
            return static_cast<double>(n) * static_cast<double>(n) / t / 1e9;
        }
        default: {
            const auto n = static_cast<std::size_t>(
                std::clamp(std::cbrt(budget * 4.0), 12.0, std::sqrt(cap)));
            const auto a = make_planar<T, N>(n * n, 9);
            const auto b = make_planar<T, N>(n * n, 10);
            planar::Vector<T, N> c(n * n);
            const double t =
                best_time([&] { planar::gemm(a, b, c, n, n, n); }, opts.min_time);
            const double dn = static_cast<double>(n);
            return dn * dn * dn / t / 1e9;
        }
    }
}

/// MultiFloats cells: best of the scalar (AoS) and planar (SoA) kernels.
template <typename T, int N>
void fill_cell_mf(Table& t, std::size_t row, std::size_t col, Kernel k,
                  const SuiteOptions& opts) {
    const double aos = measure<MultiFloat<T, N>>(k, opts);
    const double soa = measure_planar<T, N>(k, opts);
    t.set(row, col, std::max(aos, soa));
    if (opts.verbose) {
        std::fprintf(stderr, "  %s %s[%zu]: AoS %.3f / SoA %.3f GOp/s\n",
                     t.title.c_str(), t.rows[row].c_str(), col, aos, soa);
    }
}

}  // namespace

Table run_kernel_table(Kernel k, const SuiteOptions& opts) {
    std::vector<std::string> rows = {"MultiFloats (ours)", "GMP",     "BigFloat (MPFR-like)",
                                     "QD",                 "CAMPARY", "libquadmath"};
    Table t = make_table(std::string(kernel_name(k)) + " performance [GOp/s] on " + cpu_name(),
                         rows, {"53-bit", "103-bit", "156-bit", "208-bit"});

    // MultiFloats (ours): expansion lengths 1-4 on double, best of the
    // scalar and planar-vectorized kernels (paper methodology: max over
    // configurations).
    fill_cell<double>(t, 0, 0, k, opts);
    fill_cell_mf<double, 2>(t, 0, 1, k, opts);
    fill_cell_mf<double, 3>(t, 0, 2, k, opts);
    fill_cell_mf<double, 4>(t, 0, 3, k, opts);

#if defined(MF_HAVE_GMP)
    fill_cell<mf::gmp::GmpFixed<53>>(t, 1, 0, k, opts);
    fill_cell<mf::gmp::GmpFixed<103>>(t, 1, 1, k, opts);
    fill_cell<mf::gmp::GmpFixed<156>>(t, 1, 2, k, opts);
    fill_cell<mf::gmp::GmpFixed<208>>(t, 1, 3, k, opts);
#endif

    // BigFloat: our MPFR-class software FPU (stands in for MPFR/FLINT/Boost;
    // see DESIGN.md §2).
    fill_cell<mf::big::PrecFloat<53>>(t, 2, 0, k, opts);
    fill_cell<mf::big::PrecFloat<103>>(t, 2, 1, k, opts);
    fill_cell<mf::big::PrecFloat<156>>(t, 2, 2, k, opts);
    fill_cell<mf::big::PrecFloat<208>>(t, 2, 3, k, opts);

    // QD supports only double-double and quad-double.
    fill_cell<mf::qd::dd_real>(t, 3, 1, k, opts);
    fill_cell<mf::qd::qd_real>(t, 3, 3, k, opts);

    // CAMPARY-style certified expansions.
    fill_cell<mf::campary::Expansion<1>>(t, 4, 0, k, opts);
    fill_cell<mf::campary::Expansion<2>>(t, 4, 1, k, opts);
    fill_cell<mf::campary::Expansion<3>>(t, 4, 2, k, opts);
    fill_cell<mf::campary::Expansion<4>>(t, 4, 3, k, opts);

    // libquadmath: IEEE binary128 only (103-bit column).
    fill_cell<__float128>(t, 5, 1, k, opts);

    return t;
}

SuiteOptions parse_options(int argc, char** argv) {
    SuiteOptions o;
    for (int i = 1; i < argc; ++i) {
        const std::string_view a = argv[i];
        if (a == "-v" || a == "--verbose") o.verbose = true;
        if (a == "--quick") {
            o.min_time = 0.04;
            o.ops_budget = 1e6;
        }
    }
    return o;
}

int fig9_main(Kernel k, int argc, char** argv) {
    const SuiteOptions opts = parse_options(argc, argv);
    std::printf("Regenerating the paper's %s tables (Figures 9 and 10).\n",
                kernel_name(k));
    std::printf(
        "NOTE: this container exposes ONE core; the paper used a 16-core Zen 5\n"
        "and a 12-core M3 Pro. Compare SHAPE (who wins, by what factor), not\n"
        "absolute GOp/s. See EXPERIMENTS.md for the full methodology.\n");
    const Table t = run_kernel_table(k, opts);
    t.print();

    const paper::RefTable* zen5 = nullptr;
    const paper::RefTable* m3 = nullptr;
    switch (k) {
        case Kernel::Axpy: zen5 = &paper::kZen5Axpy; m3 = &paper::kM3Axpy; break;
        case Kernel::Dot: zen5 = &paper::kZen5Dot; m3 = &paper::kM3Dot; break;
        case Kernel::Gemv: zen5 = &paper::kZen5Gemv; m3 = &paper::kM3Gemv; break;
        default: zen5 = &paper::kZen5Gemm; m3 = &paper::kM3Gemm; break;
    }
    paper::print_ref(*zen5);
    paper::print_ref(*m3);

    std::printf("\nShape check: MultiFloats speedup over next-best library\n");
    std::printf("%-10s%16s%16s%16s\n", "precision", "measured", "paper(Zen5)",
                "paper(M3)");
    for (std::size_t c = 0; c < t.columns.size(); ++c) {
        const double best = t.best_excluding(0, c);
        const double measured = best > 0 && t.cells[0][c].available
                                    ? t.cells[0][c].gops / best
                                    : 0.0;
        std::printf("%-10s%15.2fx%15.2fx%15.2fx\n", t.columns[c].c_str(), measured,
                    paper::ref_ratio(*zen5, static_cast<int>(c)),
                    paper::ref_ratio(*m3, static_cast<int>(c)));
    }
    return 0;
}

Table run_float_proxy_table(const SuiteOptions& opts) {
    Table t = make_table(
        "MultiFloat<float, N> data-parallel proxy [GOp/s] on " + cpu_name(),
        {"AXPY", "DOT", "GEMV", "GEMM"}, {"1-term", "2-term", "3-term", "4-term"});
    const Kernel ks[4] = {Kernel::Axpy, Kernel::Dot, Kernel::Gemv, Kernel::Gemm};
    for (std::size_t r = 0; r < 4; ++r) {
        fill_cell<float>(t, r, 0, ks[r], opts);
        fill_cell_mf<float, 2>(t, r, 1, ks[r], opts);
        fill_cell_mf<float, 3>(t, r, 2, ks[r], opts);
        fill_cell_mf<float, 4>(t, r, 3, ks[r], opts);
    }
    return t;
}

}  // namespace mf::bench
