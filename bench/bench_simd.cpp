// Explicit-SIMD planar path vs the pre-SIMD auto-vectorized path, per
// backend, with machine-readable output (BENCH_simd.json).
//
// The "autovec" rows re-create the seed's planar loops verbatim (plain
// per-element loop + `#pragma GCC ivdep`, compiler auto-vectorization only);
// the backend rows run the same workloads through mf::simd packs at each
// backend available on this machine. Acceptance: the widest explicit backend
// must be no slower than autovec on axpy/dot/gemm.
//
// Timings use median-of-K (bench::median_time) rather than best-of: these
// records feed the BENCH_*.json trajectories, where run-to-run robustness
// beats peak flattery. The JSON is stamped with git SHA / compiler / thread
// count / active backend (harness.cpp, via mf::telemetry::build_info()).
//
//   usage: bench_simd [output.json]        (default BENCH_simd.json)

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "blas/planar.hpp"
#include "harness.hpp"
#include "simd/simd.hpp"

namespace {

using namespace mf;

// Native flops per one extended-precision operation (one mul + one add),
// counted from the shipped networks (eft gate costs: TwoSum 6, FastTwoSum 3,
// TwoProd 2 flops):
//   N=2: add2 20 + mul2  9 =  29
//   N=3: add3 99 + mul3 51 = 150
//   N=4: add4 168 + mul4 121 = 289
// Used only to scale ns_per_op into a native-FLOP-equivalent throughput.
constexpr double flops_per_op(int n_limbs) {
    switch (n_limbs) {
        case 2: return 29.0;
        case 3: return 150.0;
        case 4: return 289.0;
        default: return 2.0;
    }
}

// --- seed (pre-SIMD) planar loops, kept verbatim as the autovec baseline ---

template <FloatingPoint T, int N>
void autovec_fma_range(const MultiFloat<T, N>& alpha, const T* const* xp,
                       T* const* yp, std::size_t i0, std::size_t i1) {
#pragma GCC ivdep
    for (std::size_t i = i0; i < i1; ++i) {
        MultiFloat<T, N> x;
        MultiFloat<T, N> y;
        for (int k = 0; k < N; ++k) {
            x.limb[k] = xp[k][i];
            y.limb[k] = yp[k][i];
        }
        const MultiFloat<T, N> z = add(mul(alpha, x), y);
        for (int k = 0; k < N; ++k) yp[k][i] = z.limb[k];
    }
}

template <FloatingPoint T, int N>
MultiFloat<T, N> autovec_dot(const planar::Vector<T, N>& x,
                             const planar::Vector<T, N>& y) {
    constexpr std::size_t K = 8;
    const std::size_t n = x.size();
    T part[N][K] = {};
    const T* xp[N];
    const T* yp[N];
    for (int k = 0; k < N; ++k) {
        xp[k] = x.plane(k);
        yp[k] = y.plane(k);
    }
    for (std::size_t blk = 0; blk + K <= n; blk += K) {
#pragma GCC ivdep
        for (std::size_t j = 0; j < K; ++j) {
            MultiFloat<T, N> xe;
            MultiFloat<T, N> ye;
            MultiFloat<T, N> acc;
            for (int k = 0; k < N; ++k) {
                xe.limb[k] = xp[k][blk + j];
                ye.limb[k] = yp[k][blk + j];
                acc.limb[k] = part[k][j];
            }
            const MultiFloat<T, N> z = add(acc, mul(xe, ye));
            for (int k = 0; k < N; ++k) part[k][j] = z.limb[k];
        }
    }
    MultiFloat<T, N> acc{};
    for (std::size_t j = 0; j < K; ++j) {
        MultiFloat<T, N> p;
        for (int k = 0; k < N; ++k) p.limb[k] = part[k][j];
        acc = add(acc, p);
    }
    for (std::size_t i = n - n % K; i < n; ++i) {
        acc = add(acc, mul(x.get(i), y.get(i)));
    }
    return acc;
}

template <FloatingPoint T, int N>
void autovec_gemm(const planar::Vector<T, N>& a, const planar::Vector<T, N>& b,
                  planar::Vector<T, N>& c, std::size_t n, std::size_t k,
                  std::size_t m) {
    const T* bp[N];
    T* cp[N];
    for (int p = 0; p < N; ++p) {
        bp[p] = b.plane(p);
        cp[p] = c.plane(p);
    }
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t kk = 0; kk < k; ++kk) {
            MultiFloat<T, N> aik;
            for (int p = 0; p < N; ++p) aik.limb[p] = a.plane(p)[i * k + kk];
            const T* brow[N];
            T* crow[N];
            for (int p = 0; p < N; ++p) {
                brow[p] = bp[p] + kk * m;
                crow[p] = cp[p] + i * m;
            }
            autovec_fma_range<T, N>(aik, brow, crow, 0, m);
        }
    }
}

// ---------------------------------------------------------------------------

/// Launder a size through a volatile so it is a runtime value for BOTH
/// measured paths. With literal sizes the compiler constant-propagates the
/// trip count into whichever path it happens to inline deeper and fully
/// unrolls it -- a specialization real (runtime-sized) workloads never get.
std::size_t runtime_size(std::size_t v) {
    volatile std::size_t s = v;
    return s;
}

template <FloatingPoint T, int N>
planar::Vector<T, N> random_planar(std::size_t n, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    planar::Vector<T, N> v(n);
    for (std::size_t i = 0; i < n; ++i) {
        MultiFloat<T, N> e(static_cast<T>(bench::fill_value(rng)));
        v.set(i, e);
    }
    return v;
}

void report(bench::JsonReport& out, const char* kernel, const char* type,
            int limbs, const std::string& backend, int width, double secs,
            double ops) {
    const double ns = secs / ops * 1e9;
    const double gflops = ops * flops_per_op(limbs) / secs / 1e9;
    std::printf("  %-6s %-7s N=%d  %-8s w=%-2d  %10.2f ns/op  %8.3f GFLOP-equiv/s\n",
                kernel, type, limbs, backend.c_str(), width, ns, gflops);
    out.add({kernel, type, limbs, backend, width, ns, gflops});
}

/// Every backend available on this machine, widest last.
std::vector<simd::Backend> available_backends() {
    std::vector<simd::Backend> v;
    for (simd::Backend b : {simd::Backend::scalar, simd::Backend::sse2,
                            simd::Backend::neon, simd::Backend::avx2,
                            simd::Backend::avx512}) {
        if (simd::backend_available(b)) v.push_back(b);
    }
    return v;
}

template <FloatingPoint T, int N>
void run_type(bench::JsonReport& out, const char* type_name) {
    const std::size_t n = runtime_size(1 << 14);
    const auto x = random_planar<T, N>(n, 1);
    auto y = random_planar<T, N>(n, 2);
    const MultiFloat<T, N> alpha(static_cast<T>(1.0 + 0x1p-30));
    const T* xp[N];
    T* yp[N];
    for (int k = 0; k < N; ++k) {
        xp[k] = x.plane(k);
        yp[k] = y.plane(k);
    }

    // Warm-up: sustain the widest-vector workload before the first
    // measurement so autovec (measured first in each block) is not flattered
    // by turbo clocks the later AVX-heavy measurements no longer get.
    simd::set_backend(available_backends().back());
    bench::best_time([&] { planar::axpy(alpha, x, y); }, 0.5);

    // AXPY
    {
        const double t = bench::median_time(
            [&] { autovec_fma_range<T, N>(alpha, xp, yp, 0, n); });
        report(out, "axpy", type_name, N, "autovec", 0, t, double(n));
        for (simd::Backend b : available_backends()) {
            simd::set_backend(b);
            const double tb =
                bench::median_time([&] { planar::axpy(alpha, x, y); });
            report(out, "axpy", type_name, N, simd::backend_name(b),
                   simd::active_width<T>(), tb, double(n));
        }
    }
    // DOT
    {
        MultiFloat<T, N> sink{};
        const double t = bench::median_time([&] {
            const auto d = autovec_dot(x, y);
            sink = add(sink, d);
        });
        report(out, "dot", type_name, N, "autovec", 0, t, double(n));
        for (simd::Backend b : available_backends()) {
            simd::set_backend(b);
            const double tb = bench::median_time([&] {
                const auto d = planar::dot(x, y);
                sink = add(sink, d);
            });
            report(out, "dot", type_name, N, simd::backend_name(b),
                   simd::active_width<T>(), tb, double(n));
        }
        if (sink.limb[0] == T(-1)) std::printf("impossible\n");  // keep sink live
    }
    // GEMM (untiled explicit path + tiled driver on the widest backend)
    {
        const std::size_t gn = runtime_size(48);
        const std::size_t gk = runtime_size(48);
        const std::size_t gm = runtime_size(48);
        const double ops = double(gn) * double(gk) * double(gm);
        const auto a = random_planar<T, N>(gn * gk, 3);
        const auto bm = random_planar<T, N>(gk * gm, 4);
        planar::Vector<T, N> c(gn * gm);
        const double t = bench::median_time(
            [&] { autovec_gemm<T, N>(a, bm, c, gn, gk, gm); });
        report(out, "gemm", type_name, N, "autovec", 0, t, ops);
        for (simd::Backend b : available_backends()) {
            simd::set_backend(b);
            const double tb = bench::median_time(
                [&] { planar::gemm(a, bm, c, gn, gk, gm); });
            report(out, "gemm", type_name, N, simd::backend_name(b),
                   simd::active_width<T>(), tb, ops);
        }
        const double tt = bench::median_time([&] {
            simd::gemm_tiled(planar::matrix_view(a, gn, gk),
                             planar::matrix_view(bm, gk, gm),
                             planar::matrix_view(c, gn, gm));
        });
        report(out, "gemm_tiled", type_name, N,
               simd::backend_name(simd::active_backend()),
               simd::active_width<T>(), tt, ops);
    }
    // Leave the widest backend active for whoever runs next.
    const auto avail = available_backends();
    simd::set_backend(avail.back());
}

}  // namespace

int main(int argc, char** argv) {
    const std::string path = argc > 1 ? argv[1] : "BENCH_simd.json";
    bench::JsonReport out;
    out.bench = "simd_planar";
    std::printf("Explicit SIMD vs auto-vectorized planar kernels on %s\n",
                bench::cpu_name().c_str());
    std::printf("startup backend: %s\n",
                simd::backend_name(simd::active_backend()));
    run_type<double, 2>(out, "double");
    run_type<double, 3>(out, "double");
    run_type<double, 4>(out, "double");
    run_type<float, 4>(out, "float");
    if (!out.write(path)) return 1;
    std::printf("wrote %s (%zu records)\n", path.c_str(), out.records.size());
    return 0;
}
