#pragma once
// Shared benchmark harness for the paper's evaluation (§5): timing,
// throughput accounting, workload sizing, and table rendering.
//
// Conventions follow the paper: one "operation" is one multiplication
// followed by one addition, so AXPY/DOT perform n ops, GEMV n^2, GEMM n^3.
// Throughput is reported in billions of extended-precision operations per
// second (GOp/s).
//
// Deviation from the paper's methodology (single-core container): problem
// sizes are chosen per number type so one measurement takes a sane wall time
// -- capped above by the L3-resident sizes the paper uses, and below so slow
// software-FPU baselines still finish. All kernels are compute-bound at
// these sizes, so GOp/s is insensitive to the exact n. See EXPERIMENTS.md.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <random>
#include <string>
#include <vector>

namespace mf::bench {

/// Wall-clock seconds of invoking f() once.
template <typename F>
double time_once(F&& f) {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/// Repeat f() until at least `min_time` seconds have elapsed in total, then
/// return the best per-iteration time (paper reports peak throughput).
template <typename F>
double best_time(F&& f, double min_time = 0.15, int min_reps = 3) {
    double best = 1e100;
    double total = 0.0;
    int reps = 0;
    while (total < min_time || reps < min_reps) {
        const double t = time_once(f);
        best = std::min(best, std::max(t, 1e-9));
        total += t;
        ++reps;
        if (reps > 10000) break;
    }
    return best;
}

/// One warm-up call, then repeat f() until at least `min_time` seconds AND
/// at least `min_reps` samples, and return the median per-iteration time.
/// Where best_time() reports peak throughput (the paper's headline metric),
/// the median is the robust estimator the BENCH_*.json trajectories want:
/// insensitive to the one-off stalls (page faults, frequency ramps, sibling
/// noise) that make best-of runs irreproducible across machines.
template <typename F>
double median_time(F&& f, double min_time = 0.15, int min_reps = 5) {
    time_once(f);  // warm-up: touch the working set, settle the clocks
    std::vector<double> samples;
    double total = 0.0;
    while (total < min_time || static_cast<int>(samples.size()) < min_reps) {
        const double t = std::max(time_once(f), 1e-9);
        samples.push_back(t);
        total += t;
        if (samples.size() > 10000) break;
    }
    const std::size_t mid = samples.size() / 2;
    std::nth_element(samples.begin(), samples.begin() + static_cast<std::ptrdiff_t>(mid),
                     samples.end());
    return samples[mid];
}

/// L3 cache size in bytes (sysfs, fallback 16 MiB).
std::size_t l3_cache_bytes();

/// One table cell: GOp/s or N/A.
struct Cell {
    bool available = false;
    double gops = 0.0;
};

/// A paper-style table: rows = libraries, columns = precisions.
struct Table {
    std::string title;
    std::vector<std::string> columns;
    std::vector<std::string> rows;
    std::vector<std::vector<Cell>> cells;  // [row][col]

    void set(std::size_t r, std::size_t c, double gops) {
        cells[r][c] = {true, gops};
    }
    void print(std::FILE* out = stdout) const;
    /// Best available value in a column excluding the given row.
    [[nodiscard]] double best_excluding(std::size_t row, std::size_t col) const;
};

Table make_table(std::string title, std::vector<std::string> rows,
                 std::vector<std::string> columns);

/// Short CPU description for table headers.
std::string cpu_name();

/// One machine-readable measurement for the BENCH_*.json trajectories:
/// which kernel on which number type, which SIMD backend and pack width ran
/// it, and what it cost. `gflops_equiv` is the native-FLOP-equivalent
/// throughput (extended ops/s x native flops per extended op), so trends
/// stay comparable across N and against plain-double peaks.
struct JsonRecord {
    std::string kernel;   // "axpy", "dot", "gemm", ...
    std::string type;     // "double", "float"
    int limbs = 0;        // expansion length N
    std::string backend;  // "scalar" | "sse2" | "avx2" | "avx512" | "neon"
                          // | "autovec" (pre-SIMD compiler-vectorized path)
    int width = 0;        // pack lanes (0 for autovec)
    double ns_per_op = 0.0;
    double gflops_equiv = 0.0;
    std::size_t dim = 0;  // problem dimension (GEMM n of n^3), 0 = n/a
};

/// Collects JsonRecords and writes one self-describing JSON document.
struct JsonReport {
    std::string bench;  // benchmark family, e.g. "simd_planar"
    std::vector<JsonRecord> records;

    void add(JsonRecord r) { records.push_back(std::move(r)); }
    /// Write {"bench":..., "cpu":..., provenance..., "records":[...]} to
    /// `path`. Provenance (git_sha / compiler / threads / backend) comes from
    /// mf::telemetry::build_info(), so BENCH and CHECK JSON carry identical
    /// stamps. Returns false (and prints to stderr) on IO failure.
    bool write(const std::string& path) const;
};

/// Deterministic fill value in [1, 2): benign magnitudes so every library
/// runs its common path (matching the paper's dense BLAS workloads).
inline double fill_value(std::mt19937_64& rng) {
    return 1.0 + static_cast<double>(rng() >> 12) * 0x1p-52;
}

}  // namespace mf::bench
