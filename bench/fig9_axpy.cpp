// Regenerates the paper's AXPY tables (Figure 9 on this machine's
// architecture; the same binary run on an Apple M3 regenerates the Figure 10
// row). Flags: -v (per-measurement progress), --quick (shorter runs).

#include "suite.hpp"

int main(int argc, char** argv) {
    return mf::bench::fig9_main(mf::bench::Kernel::Axpy, argc, argv);
}
