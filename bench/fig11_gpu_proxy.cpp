// Figure 11 runs the kernels on an AMD RDNA3 GPU with T = float base type
// (that architecture has no double units). No GPU exists in this container
// (documented substitution, DESIGN.md §2); the closest executable experiment
// is the identical MultiFloat<float, N> code path -- the same networks at
// p = 24 -- through the data-parallel CPU kernels. The figure's message that
// survives the substitution: the branch-free algorithms run unmodified on a
// float-only substrate, and throughput decays gracefully with N rather than
// falling off a cliff.

#include <cstdio>

#include "paper_reference.hpp"
#include "suite.hpp"

using namespace mf::bench;

int main(int argc, char** argv) {
    const SuiteOptions opts = parse_options(argc, argv);
    std::printf("Figure 11 (RDNA3 GPU) substitution: MultiFloat<float, N> on CPU.\n");
    const Table t = run_float_proxy_table(opts);
    t.print();

    std::printf("\nPaper reference: AMD RDNA3 (RX 7900 XTX), Fig. 11 [GOp/s]\n");
    std::printf("%-8s%10s%10s%10s%10s\n", "Kernel", "1-term", "2-term", "3-term", "4-term");
    const char* names[4] = {"AXPY", "DOT", "GEMV", "GEMM"};
    for (int r = 0; r < 4; ++r) {
        std::printf("%-8s", names[r]);
        for (int c = 0; c < 4; ++c) {
            std::printf("%10.2f", paper::kRdna3[static_cast<std::size_t>(r)]
                                                [static_cast<std::size_t>(c)]);
        }
        std::printf("\n");
    }

    std::printf("\nShape check: throughput decay from 1-term to 4-term\n");
    std::printf("%-8s%12s%14s\n", "kernel", "measured", "paper(RDNA3)");
    for (std::size_t r = 0; r < 4; ++r) {
        const double ours = t.cells[r][0].gops > 0 && t.cells[r][3].available
                                ? t.cells[r][0].gops / t.cells[r][3].gops
                                : 0.0;
        const double ref = paper::kRdna3[r][0] / paper::kRdna3[r][3];
        std::printf("%-8s%11.1fx%13.1fx\n", names[r], ours, ref);
    }
    return 0;
}
