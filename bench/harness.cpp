#include "harness.hpp"

#include <fstream>
#include <sstream>

#include "telemetry/build_info.hpp"

namespace mf::bench {

std::size_t l3_cache_bytes() {
    std::ifstream f("/sys/devices/system/cpu/cpu0/cache/index3/size");
    if (f) {
        std::string s;
        f >> s;
        if (!s.empty()) {
            const auto suffix = s.back();
            const auto num = std::stoull(s);
            if (suffix == 'K') return num * 1024;
            if (suffix == 'M') return num * 1024 * 1024;
            return num;
        }
    }
    return 16u * 1024 * 1024;
}

std::string cpu_name() {
    std::ifstream f("/proc/cpuinfo");
    std::string line;
    while (std::getline(f, line)) {
        if (line.rfind("model name", 0) == 0) {
            const auto colon = line.find(':');
            if (colon != std::string::npos) {
                std::string name = line.substr(colon + 1);
                const auto start = name.find_first_not_of(' ');
                return start == std::string::npos ? name : name.substr(start);
            }
        }
    }
    return "unknown CPU";
}

Table make_table(std::string title, std::vector<std::string> rows,
                 std::vector<std::string> columns) {
    Table t;
    t.title = std::move(title);
    t.rows = std::move(rows);
    t.columns = std::move(columns);
    t.cells.assign(t.rows.size(), std::vector<Cell>(t.columns.size()));
    return t;
}

void Table::print(std::FILE* out) const {
    std::fprintf(out, "\n%s\n", title.c_str());
    std::size_t w = 12;
    for (const auto& r : rows) w = std::max(w, r.size() + 2);
    std::fprintf(out, "%-*s", static_cast<int>(w), "Library");
    for (const auto& c : columns) std::fprintf(out, "%10s", c.c_str());
    std::fprintf(out, "\n");
    for (std::size_t i = 0; i < w + 10 * columns.size(); ++i) std::fputc('-', out);
    std::fputc('\n', out);
    for (std::size_t r = 0; r < rows.size(); ++r) {
        std::fprintf(out, "%-*s", static_cast<int>(w), rows[r].c_str());
        for (std::size_t c = 0; c < columns.size(); ++c) {
            if (cells[r][c].available) {
                std::fprintf(out, "%10.3f", cells[r][c].gops);
            } else {
                std::fprintf(out, "%10s", "N/A");
            }
        }
        std::fputc('\n', out);
    }
}

bool JsonReport::write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "JsonReport: cannot write %s\n", path.c_str());
        return false;
    }
    // All strings here are harness-controlled ASCII (kernel/backend names,
    // /proc/cpuinfo model strings); no JSON escaping is required beyond
    // suppressing quotes/backslashes defensively.
    const auto clean = [](const std::string& s) {
        std::string r;
        for (char c : s) {
            if (c != '"' && c != '\\' && c >= 0x20) r.push_back(c);
        }
        return r;
    };
    const telemetry::BuildInfo info = telemetry::build_info();
    std::fprintf(f,
                 "{\n  \"bench\": \"%s\",\n  \"cpu\": \"%s\",\n"
                 "  \"git_sha\": \"%s\",\n  \"compiler\": \"%s\",\n"
                 "  \"threads\": %d,\n  \"backend\": \"%s\",\n"
                 "  \"fp_env\": \"%s\",\n  \"records\": [",
                 clean(bench).c_str(), clean(cpu_name()).c_str(),
                 clean(info.git_sha).c_str(), clean(info.compiler).c_str(),
                 info.threads, clean(info.backend).c_str(),
                 clean(info.fp_env).c_str());
    for (std::size_t i = 0; i < records.size(); ++i) {
        const JsonRecord& r = records[i];
        std::fprintf(f,
                     "%s\n    {\"kernel\": \"%s\", \"type\": \"%s\", \"limbs\": %d, "
                     "\"backend\": \"%s\", \"width\": %d, "
                     "\"ns_per_op\": %.6g, \"gflops_equiv\": %.6g, \"dim\": %zu}",
                     i ? "," : "", clean(r.kernel).c_str(), clean(r.type).c_str(),
                     r.limbs, clean(r.backend).c_str(), r.width, r.ns_per_op,
                     r.gflops_equiv, r.dim);
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    return true;
}

double Table::best_excluding(std::size_t row, std::size_t col) const {
    double best = 0.0;
    for (std::size_t r = 0; r < rows.size(); ++r) {
        if (r == row) continue;
        if (cells[r][col].available) best = std::max(best, cells[r][col].gops);
    }
    return best;
}

}  // namespace mf::bench
