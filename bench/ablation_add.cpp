// Ablation for §4.1 / DESIGN.md: how many FastTwoSum renormalization passes
// does the addition sweep need? renorms=0 matches the paper's gate counts
// exactly (26 gates for 4-term) but the exhaustive small-p checker proves it
// INCORRECT for n=3 (rare 1-bit nonoverlap violations); renorms=1 is the
// verified shipping configuration. This bench quantifies what that
// correctness costs.

#include <cstdio>
#include <random>
#include <vector>

#include "harness.hpp"
#include "mf/multifloats.hpp"

using namespace mf;

namespace {

template <int N, int RENORMS>
MultiFloat<double, N> add_variant(const MultiFloat<double, N>& x,
                                  const MultiFloat<double, N>& y) noexcept {
    double v[2 * N];
    {
        const auto [s, e] = two_sum(x.limb[0], y.limb[0]);
        v[0] = s;
        double carry = e;
        for (int i = 1; i < N; ++i) {
            const auto [si, ei] = two_sum(x.limb[i], y.limb[i]);
            v[2 * i - 1] = si;
            v[2 * i] = carry;
            carry = ei;
        }
        v[2 * N - 1] = carry;
    }
    detail::accumulate<N, RENORMS>(v);
    MultiFloat<double, N> z;
    for (int i = 0; i < N; ++i) z.limb[i] = v[i];
    return z;
}

template <int N>
std::vector<MultiFloat<double, N>> operands(std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::vector<MultiFloat<double, N>> v;
    for (int i = 0; i < 1024; ++i) {
        MultiFloat<double, N> x(1.0 + static_cast<double>(rng() >> 12) * 0x1p-52);
        for (int k = 1; k < N; ++k) {
            x = x + std::ldexp(1.0 + static_cast<double>(rng() >> 12) * 0x1p-52,
                               -55 * k);
        }
        v.push_back(x);
    }
    return v;
}

template <int N>
void run() {
    const auto xs = operands<N>(1);
    const auto ys = operands<N>(2);
    std::vector<MultiFloat<double, N>> zs(1024);
    const double t0 = bench::best_time([&] {
        for (std::size_t i = 0; i < 1024; ++i) zs[i] = add_variant<N, 0>(xs[i], ys[i]);
    });
    const double t1 = bench::best_time([&] {
        for (std::size_t i = 0; i < 1024; ++i) zs[i] = add_variant<N, 1>(xs[i], ys[i]);
    });
    const double t2 = bench::best_time([&] {
        for (std::size_t i = 0; i < 1024; ++i) zs[i] = add_variant<N, 2>(xs[i], ys[i]);
    });
    std::printf("add N=%d [ns/op]: renorms=0 %6.2f (UNSOUND, paper-size)  "
                "renorms=1 %6.2f (shipped)  renorms=2 %6.2f\n",
                N, t0 / 1024 * 1e9, t1 / 1024 * 1e9, t2 / 1024 * 1e9);
    std::printf("  correctness cost of renorms=1 over renorms=0: %.1f%%\n",
                (t1 / t0 - 1.0) * 100.0);
}

}  // namespace

int main() {
    std::printf("Ablation: renormalization passes in the addition sweep\n"
                "(renorms=0 reproduces the paper's exact gate counts but fails\n"
                " exhaustive verification; see tests/fpan_verify_test.cpp)\n\n");
    run<3>();
    run<4>();
    return 0;
}
