// Figure 10 concerns architecture portability: the paper reruns the Figure 9
// suite on an Apple M3 Pro (128-bit NEON instead of 512-bit AVX) and shows
// the same ordering with smaller margins.
//
// This container exposes a single x86-64 machine, so Figure 10 cannot be
// measured literally (documented substitution, DESIGN.md §2): the fig9_*
// binaries regenerate it when run on an ARM machine. What we CAN probe here
// is the paper's explanation -- narrower effective SIMD shrinks the
// branch-free advantage -- by rerunning the suite with the vectorizer
// restricted per compilation unit. This binary reruns the key comparisons
// and reports the measured ordering so the qualitative Figure 10 claims
// (MultiFloats fastest everywhere; CAMPARY competitive only at 1-2 terms;
// software FPUs flat across precision) can be checked on this machine too.

#include <cstdio>
#include <string_view>

#include "paper_reference.hpp"
#include "suite.hpp"

using namespace mf::bench;

int main(int argc, char** argv) {
    SuiteOptions opts = parse_options(argc, argv);
    // This binary re-measures the whole Figure 9 suite; default to short
    // runs so the all-benches sweep stays tractable (pass --full to match
    // the fig9 binaries' timing).
    bool full = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--full") full = true;
    }
    if (!full) {
        opts.min_time = 0.05;
        opts.ops_budget = 1.5e6;
    }
    std::printf("Figure 10 (Apple M3) substitution run -- see header comment.\n");

    const Kernel kernels[4] = {Kernel::Axpy, Kernel::Dot, Kernel::Gemv, Kernel::Gemm};
    const paper::RefTable* refs[4] = {&paper::kM3Axpy, &paper::kM3Dot, &paper::kM3Gemv,
                                      &paper::kM3Gemm};
    bool ordering_holds = true;
    for (int k = 0; k < 4; ++k) {
        const Table t = run_kernel_table(kernels[k], opts);
        t.print();
        paper::print_ref(*refs[k]);
        for (std::size_t c = 0; c < t.columns.size(); ++c) {
            const double best = t.best_excluding(0, c);
            if (t.cells[0][c].available && t.cells[0][c].gops < best) {
                ordering_holds = false;
                std::printf("  !! ordering violated at %s %s\n", kernel_name(kernels[k]),
                            t.columns[c].c_str());
            }
        }
    }
    std::printf("\nQualitative Figure 10 claim (MultiFloats fastest at every kernel and\n"
                "precision) on this machine: %s\n",
                ordering_holds ? "HOLDS" : "VIOLATED (see above)");
    return ordering_holds ? 0 : 1;
}
