#pragma once
// The paper's §5 evaluation suite: AXPY / DOT / GEMV / GEMM across every
// library and precision level (Figures 8-10). Each fig* binary calls into
// this translation unit so all figures share one measurement methodology.

#include <string>

#include "harness.hpp"

namespace mf::bench {

enum class Kernel { Axpy, Dot, Gemv, Gemm };

[[nodiscard]] const char* kernel_name(Kernel k);

struct SuiteOptions {
    double min_time = 0.15;    ///< seconds of repetitions per measurement
    double ops_budget = 4e6;   ///< target extended-precision ops per repetition
    bool verbose = false;      ///< print per-measurement progress
};

/// Run one kernel across all libraries x {53, 103, 156, 208}-bit precisions
/// and return the paper-style table (Fig 9/10 layout).
[[nodiscard]] Table run_kernel_table(Kernel k, const SuiteOptions& opts);

/// Fig 11 layout: MultiFloat<float, N> for N = 1..4 across all kernels.
[[nodiscard]] Table run_float_proxy_table(const SuiteOptions& opts);

/// Shared driver for the fig9_* binaries: measure one kernel, print our
/// table, the paper's reference tables (Zen 5 + M3), and a shape comparison
/// (our speedup over the next-best library vs. the paper's). Returns 0.
int fig9_main(Kernel k, int argc, char** argv);

/// Parse common CLI flags (-v verbose, --quick shorter runs).
[[nodiscard]] SuiteOptions parse_options(int argc, char** argv);

}  // namespace mf::bench
