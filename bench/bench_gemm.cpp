// GEMM engine comparison: the untiled ikj sweep (planar::gemm) vs the tiled
// driver (simd::gemm_tiled) vs the packed cache-blocked engine
// (blas::gemm_packed), with machine-readable output (BENCH_gemm.json).
//
// All three compute bit-identical results (the conformance tier enforces
// it), so this benchmark isolates pure data-movement/scheduling effects:
// tiling reuses B rows from cache, packing additionally linearizes A and B
// into contiguous aligned panels and holds the C micro-tile in registers
// across the whole k extent. The headline comparison is Float64x2 at 512^3
// (the paper's L3-resident GEMM regime); smaller dims and longer expansions
// chart where each engine's overheads amortize. See EXPERIMENTS.md for the
// analysis of these numbers on the CI machine (single core, FP-port-bound).
//
// Timings use median-of-K (bench::median_time): these records feed the
// BENCH_*.json trajectories, where run-to-run robustness beats peak
// flattery. The JSON is stamped with git SHA / compiler / thread count /
// active backend (harness.cpp, via mf::telemetry::build_info()).
//
//   usage: bench_gemm [--quick] [output.json]     (default BENCH_gemm.json)

#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "blas/blas.hpp"
#include "guard/guard.hpp"
#include "harness.hpp"
#include "simd/simd.hpp"

namespace {

using namespace mf;

// Native flops per one extended-precision op (mul + add); same accounting as
// bench_simd.cpp (eft gate costs of the shipped networks).
constexpr double flops_per_op(int n_limbs) {
    switch (n_limbs) {
        case 2: return 29.0;
        case 3: return 150.0;
        case 4: return 289.0;
        default: return 2.0;
    }
}

/// Launder a size through a volatile so the trip counts are runtime values
/// for every engine alike (no constant-propagated specializations).
std::size_t runtime_size(std::size_t v) {
    volatile std::size_t s = v;
    return s;
}

template <FloatingPoint T, int N>
planar::Vector<T, N> random_planar(std::size_t n, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    planar::Vector<T, N> v(n);
    for (std::size_t i = 0; i < n; ++i) {
        v.set(i, MultiFloat<T, N>(static_cast<T>(bench::fill_value(rng))));
    }
    return v;
}

void report(bench::JsonReport& out, const char* kernel, const char* type,
            int limbs, int width, double secs, double ops, std::size_t dim) {
    const double ns = secs / ops * 1e9;
    const double gflops = ops * flops_per_op(limbs) / secs / 1e9;
    std::printf("  %-11s %-7s N=%d  %4zu^3  w=%-2d  %8.3f ns/op  %8.3f GFLOP-equiv/s\n",
                kernel, type, limbs, dim, width, ns, gflops);
    out.add({kernel, type, limbs,
             simd::backend_name(simd::active_backend()), width, ns, gflops, dim});
}

/// One (type, N, n) cube through all three engines. C accumulates across
/// reps for tiled/packed (their contract is C += A B) -- harmless for
/// timing, and zeroing inside the lambda would bill the sweep's hidden
/// zero-pass to the wrong engine.
template <FloatingPoint T, int N>
void run_cube(bench::JsonReport& out, const char* type_name, std::size_t dim,
              double min_time) {
    const std::size_t n = runtime_size(dim);
    const double ops = double(n) * double(n) * double(n);
    const auto a = random_planar<T, N>(n * n, 3);
    const auto b = random_planar<T, N>(n * n, 4);
    planar::Vector<T, N> c(n * n);
    const int width = simd::active_width<T>();

    const double ts = bench::median_time(
        [&] { planar::gemm(a, b, c, n, n, n); }, min_time);
    report(out, "gemm_sweep", type_name, N, width, ts, ops, n);

    const double tt = bench::median_time(
        [&] {
            simd::gemm_tiled(planar::matrix_view(a, n, n),
                             planar::matrix_view(b, n, n),
                             planar::matrix_view(c, n, n));
        },
        min_time);
    report(out, "gemm_tiled", type_name, N, width, tt, ops, n);

    const double tp = bench::median_time(
        [&] {
            blas::gemm_packed(planar::matrix_view(a, n, n),
                              planar::matrix_view(b, n, n),
                              planar::matrix_view(c, n, n));
        },
        min_time);
    report(out, "gemm_packed", type_name, N, width, tp, ops, n);

    std::printf("  %-11s %-7s N=%d  %4zu^3  tiled/sweep %.3fx  packed/tiled %.3fx\n",
                "(speedup)", type_name, N, n, ts / tt, tt / tp);
}

}  // namespace

int main(int argc, char** argv) {
    // A perturbed FP environment would invalidate every number this harness
    // records (and the bit-identity claim above); the sentinel makes the run
    // fail loudly (or self-correct, under enforce) instead.
    MF_GUARD_SENTINEL("bench.bench_gemm");
    bool quick = false;
    std::string path = "BENCH_gemm.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else {
            path = argv[i];
        }
    }
    // Default (widest-detected) backend: the engines' relative standing is
    // what this benchmark tracks; the per-backend spread is bench_simd's job.
    std::printf("bench_gemm: sweep vs tiled vs packed (backend %s)%s\n",
                simd::backend_name(simd::active_backend()),
                quick ? " [quick]" : "");
    bench::JsonReport out;
    out.bench = "gemm_engines";
    const double min_time = quick ? 0.05 : 0.25;

    run_cube<double, 2>(out, "double", 128, min_time);
    run_cube<double, 2>(out, "double", 256, min_time);
    if (!quick) {
        run_cube<double, 2>(out, "double", 512, min_time);  // headline cube
    }
    run_cube<double, 3>(out, "double", quick ? 96 : 160, min_time);
    run_cube<double, 4>(out, "double", quick ? 64 : 128, min_time);
    run_cube<float, 2>(out, "float", quick ? 128 : 256, min_time);

    if (!out.write(path)) return 1;
    std::printf("bench_gemm: wrote %s\n", path.c_str());
    return 0;
}
