// Ablation: memory layout. The same branch-free networks run over
// array-of-structs (AoS) vectors -- pack-vectorized through a per-block limb
// transpose (mf::blas -> simd::axpy_aos/dot_aos) -- and over planar
// structure-of-arrays (SoA) vectors, where packs load limb planes directly
// (src/blas/planar.hpp -> mf::simd). The SoA uplift isolates the layout
// cost: it is pure marshalling, since both sides execute the identical pack
// networks. Branchy baselines (QD, CAMPARY) cannot be laid out either way,
// because their control flow diverges per element.

#include <cstdio>
#include <random>
#include <vector>

#include "blas/kernels.hpp"
#include "blas/planar.hpp"
#include "harness.hpp"

using namespace mf;

namespace {

template <int N>
void run() {
    const std::size_t n = 1 << 15;
    std::mt19937_64 rng(1);
    std::uniform_real_distribution<double> u(1.0, 2.0);
    planar::Vector<double, N> x(n);
    planar::Vector<double, N> y(n);
    std::vector<MultiFloat<double, N>> xa(n);
    std::vector<MultiFloat<double, N>> ya(n);
    for (std::size_t i = 0; i < n; ++i) {
        const MultiFloat<double, N> v(u(rng));
        const MultiFloat<double, N> w(u(rng));
        x.set(i, v);
        y.set(i, w);
        xa[i] = v;
        ya[i] = w;
    }
    const MultiFloat<double, N> alpha(1.5);

    const double t_axpy_aos = bench::best_time([&] {
        blas::axpy<MultiFloat<double, N>>(alpha, blas::view(xa), blas::view(ya));
    });
    const double t_axpy_soa = bench::best_time([&] { planar::axpy(alpha, x, y); });
    volatile double sink = 0.0;
    const double t_dot_aos = bench::best_time([&] {
        sink = sink + static_cast<double>(
                          blas::dot<MultiFloat<double, N>>(blas::view(xa), blas::view(ya))
                              .to_float());
    });
    const double t_dot_soa = bench::best_time(
        [&] { sink = sink + static_cast<double>(planar::dot(x, y).to_float()); });

    const double scale = static_cast<double>(n) / 1e6;
    std::printf("N=%d  AXPY: AoS %8.2f Mop/s | SoA %8.2f Mop/s | uplift %.2fx\n", N,
                scale / t_axpy_aos, scale / t_axpy_soa, t_axpy_aos / t_axpy_soa);
    std::printf("N=%d  DOT : AoS %8.2f Mop/s | SoA %8.2f Mop/s | uplift %.2fx\n", N,
                scale / t_dot_aos, scale / t_dot_soa, t_dot_aos / t_dot_soa);
}

}  // namespace

int main() {
    std::printf("Ablation: AoS (pack via limb transpose) vs SoA (direct pack loads)\n"
                "layouts for the branch-free kernels. The uplift is the marshalling\n"
                "cost the planar layout removes.\n\n");
    run<2>();
    run<3>();
    run<4>();
    return 0;
}
