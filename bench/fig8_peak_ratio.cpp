// Regenerates Figure 8: the ratio of MultiFloats' peak performance over the
// next-best multiprecision library, per kernel and precision level -- plus
// the abstract's headline per-library peak speedups ("up to 11.7x over QD,
// 34.4x over CAMPARY, 35.6x over MPFR, 41.4x over FLINT").
//
// Flags: -v (per-measurement progress), --quick (shorter runs).

#include <cstdio>

#include "paper_reference.hpp"
#include "suite.hpp"

using namespace mf::bench;

int main(int argc, char** argv) {
    SuiteOptions opts = parse_options(argc, argv);
    std::printf("Regenerating Figure 8 (speedup over next-best library).\n");
    std::printf("Single-core run; compare against the paper's ratios, not GOp/s.\n\n");

    const Kernel kernels[4] = {Kernel::Axpy, Kernel::Dot, Kernel::Gemv, Kernel::Gemm};
    const paper::RefTable* zen5[4] = {&paper::kZen5Axpy, &paper::kZen5Dot,
                                      &paper::kZen5Gemv, &paper::kZen5Gemm};
    const paper::RefTable* m3[4] = {&paper::kM3Axpy, &paper::kM3Dot, &paper::kM3Gemv,
                                    &paper::kM3Gemm};

    Table tables[4] = {run_kernel_table(kernels[0], opts), run_kernel_table(kernels[1], opts),
                       run_kernel_table(kernels[2], opts), run_kernel_table(kernels[3], opts)};

    std::printf("\nFigure 8: MultiFloats peak / next-best library (ratio > 1 means we win)\n");
    std::printf("%-8s%-10s%12s%14s%12s\n", "kernel", "precision", "measured",
                "paper(Zen5)", "paper(M3)");
    for (int k = 0; k < 4; ++k) {
        for (std::size_t c = 0; c < tables[k].columns.size(); ++c) {
            const double best = tables[k].best_excluding(0, c);
            const double ours = tables[k].cells[0][c].gops;
            std::printf("%-8s%-10s%11.2fx%13.2fx%11.2fx\n", kernel_name(kernels[k]),
                        tables[k].columns[c].c_str(), best > 0 ? ours / best : 0.0,
                        paper::ref_ratio(*zen5[k], static_cast<int>(c)),
                        paper::ref_ratio(*m3[k], static_cast<int>(c)));
        }
    }

    // Headline per-library peaks (abstract): max over kernels x precisions of
    // ours / library.
    std::printf("\nHeadline peak speedups (abstract: 11.7x QD, 34.4x CAMPARY, 35.6x MPFR)\n");
    const char* vs[3] = {"QD", "CAMPARY", "BigFloat (MPFR-like)"};
    const std::size_t row_of[3] = {3, 4, 2};
    for (int i = 0; i < 3; ++i) {
        double peak = 0.0;
        for (const auto& t : tables) {
            for (std::size_t c = 0; c < t.columns.size(); ++c) {
                const auto& them = t.cells[row_of[i]][c];
                const auto& us = t.cells[0][c];
                if (them.available && us.available && them.gops > 0) {
                    peak = std::max(peak, us.gops / them.gops);
                }
            }
        }
        std::printf("  vs %-22s: %.1fx\n", vs[i], peak);
    }
    return 0;
}
