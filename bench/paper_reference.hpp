#pragma once
// Reference numbers transcribed from the paper's Figures 8-11 so benchmark
// output is self-interpreting: we print our measured table next to the
// paper's, and compare SHAPE (who wins, by roughly what factor) rather than
// absolute GOp/s -- the paper measured a 16-core AMD Zen 5 and a 12-core
// Apple M3 Pro; this reproduction runs on whatever single core it gets.

#include <array>
#include <string_view>

namespace mf::bench::paper {

struct RefTable {
    std::string_view machine;
    std::string_view kernel;
    // rows: MultiFloats, GMP, MPFR, FLINT, Boost.MP, QD, CAMPARY, libquadmath
    // cols: 53 / 103 / 156 / 208 bit. -1 == N/A.
    std::array<std::array<double, 4>, 8> gops;
};

inline constexpr std::array<std::string_view, 8> kRefRows = {
    "MultiFloats (ours)", "GMP", "MPFR", "FLINT", "Boost.Multiprecision",
    "QD", "CAMPARY", "libquadmath"};

// Figure 9: AMD Zen 5 (Ryzen 9 9950X, 16 cores).
inline constexpr RefTable kZen5Axpy = {
    "AMD Zen 5",
    "AXPY",
    {{{135.22, 35.35, 11.32, 5.60},
      {0.67, 0.64, 0.63, 0.63},
      {1.45, 1.13, 0.75, 0.50},
      {1.39, 1.01, 0.86, 0.79},
      {1.33, 0.61, 0.36, 0.33},
      {-1, 24.13, -1, 0.50},
      {133.80, 32.44, 0.35, 0.24},
      {-1, 1.05, -1, -1}}}};

inline constexpr RefTable kZen5Dot = {
    "AMD Zen 5",
    "DOT",
    {{{117.35, 30.87, 11.75, 5.77},
      {0.65, 0.64, 0.64, 0.63},
      {1.44, 1.16, 0.78, 0.55},
      {1.62, 1.21, 1.00, 0.92},
      {1.40, 0.63, 0.34, 0.32},
      {-1, 4.66, -1, 0.51},
      {52.84, 5.40, 0.36, 0.25},
      {-1, 1.13, -1, -1}}}};

inline constexpr RefTable kZen5Gemv = {
    "AMD Zen 5",
    "GEMV",
    {{{225.18, 38.87, 12.14, 5.86},
      {0.66, 0.66, 0.66, 0.64},
      {1.51, 1.21, 0.79, 0.59},
      {1.63, 1.22, 0.98, 0.90},
      {1.34, 0.63, 0.38, 0.33},
      {-1, 4.68, -1, 0.51},
      {58.65, 5.32, 0.36, 0.25},
      {-1, 1.12, -1, -1}}}};

inline constexpr RefTable kZen5Gemm = {
    "AMD Zen 5",
    "GEMM",
    {{{328.98, 42.18, 12.34, 5.93},
      {0.62, 0.61, 0.61, 0.60},
      {1.50, 1.18, 0.79, 0.55},
      {1.61, 1.22, 1.01, 0.94},
      {1.30, 0.63, 0.37, 0.31},
      {-1, 26.47, -1, 0.51},
      {310.29, 37.42, 0.36, 0.25},
      {-1, 1.13, -1, -1}}}};

// Figure 10: Apple M3 Pro (12 cores).
inline constexpr RefTable kM3Axpy = {
    "Apple M3",
    "AXPY",
    {{{15.12, 4.60, 1.47, 0.29},
      {0.15, 0.16, 0.16, 0.16},
      {0.69, 0.56, 0.41, 0.24},
      {0.29, 0.22, 0.19, 0.18},
      {0.59, 0.33, 0.18, 0.15},
      {-1, 2.40, -1, 0.17},
      {14.93, 3.75, 0.27, 0.16},
      {-1, -1, -1, -1}}}};

inline constexpr RefTable kM3Dot = {
    "Apple M3",
    "DOT",
    {{{12.50, 1.19, 0.52, 0.31},
      {0.16, 0.16, 0.16, 0.16},
      {0.73, 0.66, 0.43, 0.25},
      {0.44, 0.30, 0.27, 0.23},
      {0.62, 0.34, 0.18, 0.15},
      {-1, 1.16, -1, 0.17},
      {6.81, 0.94, 0.24, 0.16},
      {-1, -1, -1, -1}}}};

inline constexpr RefTable kM3Gemv = {
    "Apple M3",
    "GEMV",
    {{{15.59, 1.26, 0.51, 0.34},
      {0.16, 0.16, 0.16, 0.16},
      {0.78, 0.68, 0.42, 0.25},
      {0.45, 0.32, 0.27, 0.23},
      {0.59, 0.33, 0.18, 0.15},
      {-1, 1.16, -1, 0.17},
      {8.95, 0.95, 0.25, 0.14},
      {-1, -1, -1, -1}}}};

inline constexpr RefTable kM3Gemm = {
    "Apple M3",
    "GEMM",
    {{{46.53, 6.78, 2.02, 0.98},
      {0.16, 0.16, 0.16, 0.16},
      {0.84, 0.69, 0.45, 0.25},
      {0.48, 0.32, 0.27, 0.25},
      {0.61, 0.32, 0.18, 0.14},
      {-1, 2.76, -1, 0.17},
      {41.10, 4.77, 0.27, 0.19},
      {-1, -1, -1, -1}}}};

// Figure 11: AMD RDNA3 GPU (RX 7900 XTX), T = float base type.
// rows: AXPY, DOT, GEMV, GEMM; cols: 1..4 terms.
inline constexpr std::array<std::array<double, 4>, 4> kRdna3 = {
    {{44.25, 21.63, 15.77, 9.71},
     {84.83, 56.72, 38.14, 28.44},
     {170.77, 92.37, 28.42, 31.92},
     {466.43, 277.37, 170.50, 81.11}}};

/// Render a reference table in the same layout as our measured tables.
void print_ref(const RefTable& t);

/// Paper ratio of MultiFloats over the best competing library for a column.
[[nodiscard]] double ref_ratio(const RefTable& t, int col);

}  // namespace mf::bench::paper
