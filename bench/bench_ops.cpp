// Per-operation microbenchmarks (google-benchmark): latency of the dependent
// chain and throughput of independent streams for every arithmetic kernel
// and number type. Supports the §5 discussion ("each extended-precision
// operation consists of several dozen to several hundred native FLOPs").

#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "baselines/campary/campary.hpp"
#include "baselines/qd/dd_real.hpp"
#include "baselines/qd/qd_real.hpp"
#include "bigfloat/precfloat.hpp"
#include "mf/multifloats.hpp"

using mf::exp;
using mf::sin;

namespace {

template <typename V>
std::vector<V> operands(std::size_t n, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::vector<V> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        v.emplace_back(1.0 + static_cast<double>(rng() >> 12) * 0x1p-52);
    }
    return v;
}

// --- dependent-chain latency -------------------------------------------------

template <typename V>
void BM_add_latency(benchmark::State& state) {
    const auto xs = operands<V>(256, 1);
    V acc(1.0);
    std::size_t i = 0;
    for (auto _ : state) {
        acc = acc + xs[i++ & 255];
        benchmark::DoNotOptimize(acc);
    }
}

template <typename V>
void BM_mul_latency(benchmark::State& state) {
    const auto xs = operands<V>(256, 2);
    V acc(1.0);
    std::size_t i = 0;
    for (auto _ : state) {
        acc = acc * xs[i++ & 255];
        benchmark::DoNotOptimize(acc);
        // Keep the chain in [1, 2) so no overflow over long runs.
        if ((i & 63) == 0) acc = V(1.5);
    }
}

// --- independent-stream throughput -------------------------------------------

template <typename V>
void BM_add_throughput(benchmark::State& state) {
    const auto xs = operands<V>(1024, 3);
    const auto ys = operands<V>(1024, 4);
    std::vector<V> zs(1024, V(0.0));
    for (auto _ : state) {
        for (std::size_t i = 0; i < 1024; ++i) zs[i] = xs[i] + ys[i];
        benchmark::DoNotOptimize(zs.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}

template <typename V>
void BM_mul_throughput(benchmark::State& state) {
    const auto xs = operands<V>(1024, 5);
    const auto ys = operands<V>(1024, 6);
    std::vector<V> zs(1024, V(0.0));
    for (auto _ : state) {
        for (std::size_t i = 0; i < 1024; ++i) zs[i] = xs[i] * ys[i];
        benchmark::DoNotOptimize(zs.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}

template <typename V>
void BM_div_throughput(benchmark::State& state) {
    const auto xs = operands<V>(256, 7);
    const auto ys = operands<V>(256, 8);
    std::vector<V> zs(256, V(0.0));
    for (auto _ : state) {
        for (std::size_t i = 0; i < 256; ++i) zs[i] = xs[i] / ys[i];
        benchmark::DoNotOptimize(zs.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}

template <typename V>
void BM_sqrt_throughput(benchmark::State& state) {
    using std::sqrt;  // ADL picks the type's own sqrt for class types
    const auto xs = operands<V>(256, 9);
    std::vector<V> zs(256, V(0.0));
    for (auto _ : state) {
        for (std::size_t i = 0; i < 256; ++i) zs[i] = sqrt(xs[i]);
        benchmark::DoNotOptimize(zs.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}

#define MF_BENCH_TYPE(V, tag)                                       \
    BENCHMARK(BM_add_latency<V>)->Name("add_latency/" tag);         \
    BENCHMARK(BM_mul_latency<V>)->Name("mul_latency/" tag);         \
    BENCHMARK(BM_add_throughput<V>)->Name("add_throughput/" tag);   \
    BENCHMARK(BM_mul_throughput<V>)->Name("mul_throughput/" tag);   \
    BENCHMARK(BM_div_throughput<V>)->Name("div_throughput/" tag);   \
    BENCHMARK(BM_sqrt_throughput<V>)->Name("sqrt_throughput/" tag)

// --- transcendental throughput (library extensions) --------------------------

template <typename V>
void BM_exp_throughput(benchmark::State& state) {
    const auto xs = operands<V>(64, 10);
    std::vector<V> zs(64, V(0.0));
    for (auto _ : state) {
        for (std::size_t i = 0; i < 64; ++i) zs[i] = exp(xs[i]);
        benchmark::DoNotOptimize(zs.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}

template <typename V>
void BM_sin_throughput(benchmark::State& state) {
    const auto xs = operands<V>(64, 11);
    std::vector<V> zs(64, V(0.0));
    for (auto _ : state) {
        for (std::size_t i = 0; i < 64; ++i) zs[i] = sin(xs[i]);
        benchmark::DoNotOptimize(zs.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}

#define MF_BENCH_ELEM(V, tag)                                      \
    BENCHMARK(BM_exp_throughput<V>)->Name("exp_throughput/" tag);  \
    BENCHMARK(BM_sin_throughput<V>)->Name("sin_throughput/" tag)

MF_BENCH_ELEM(mf::Float64x2, "MultiFloat<double,2>");
MF_BENCH_ELEM(mf::Float64x3, "MultiFloat<double,3>");
MF_BENCH_ELEM(mf::Float64x4, "MultiFloat<double,4>");

MF_BENCH_TYPE(double, "double");
MF_BENCH_TYPE(mf::Float64x2, "MultiFloat<double,2>");
MF_BENCH_TYPE(mf::Float64x3, "MultiFloat<double,3>");
MF_BENCH_TYPE(mf::Float64x4, "MultiFloat<double,4>");
MF_BENCH_TYPE(mf::Float32x4, "MultiFloat<float,4>");
MF_BENCH_TYPE(mf::qd::dd_real, "qd::dd_real");
MF_BENCH_TYPE(mf::qd::qd_real, "qd::qd_real");
MF_BENCH_TYPE(mf::campary::Expansion<2>, "campary::Expansion<2>");
MF_BENCH_TYPE(mf::campary::Expansion<4>, "campary::Expansion<4>");
MF_BENCH_TYPE(mf::big::PrecFloat<103>, "BigFloat<103>");
MF_BENCH_TYPE(mf::big::PrecFloat<208>, "BigFloat<208>");

}  // namespace

BENCHMARK_MAIN();
