// Solving a notoriously ill-conditioned linear system: the n x n Hilbert
// matrix (condition number ~ e^{3.5 n}). Gaussian elimination in double
// collapses around n = 12-13; the same elimination code templated on
// Float64x4 keeps solving far beyond. This is the paper's §1 motivation
// ("extended precision rarely employed because it is orders of magnitude
// slower") made concrete: the kernel code is IDENTICAL, only the number type
// changes.

#include <cmath>
#include <cstdio>
#include <vector>

#include "mf/multifloats.hpp"

namespace {

// abs for the scalar instantiation (expansions find mf::abs via ADL).
double abs(double v) { return std::fabs(v); }

/// Dense LU with partial pivoting; returns false on a vanishing pivot.
template <typename V>
bool solve(std::vector<V> a, std::vector<V> b, int n, std::vector<V>& x) {
    for (int k = 0; k < n; ++k) {
        // Partial pivoting with exact comparisons.
        int piv = k;
        for (int i = k + 1; i < n; ++i) {
            if (abs(a[i * n + k]) > abs(a[piv * n + k])) piv = i;
        }
        if (a[piv * n + k] == V(0.0)) return false;
        if (piv != k) {
            for (int j = 0; j < n; ++j) std::swap(a[k * n + j], a[piv * n + j]);
            std::swap(b[k], b[piv]);
        }
        const V inv = V(1.0) / a[k * n + k];
        for (int i = k + 1; i < n; ++i) {
            const V f = a[i * n + k] * inv;
            for (int j = k; j < n; ++j) a[i * n + j] -= f * a[k * n + j];
            b[i] -= f * b[k];
        }
    }
    x.assign(static_cast<std::size_t>(n), V(0.0));
    for (int i = n - 1; i >= 0; --i) {
        V acc = b[i];
        for (int j = i + 1; j < n; ++j) acc -= a[i * n + j] * x[j];
        x[i] = acc / a[i * n + i];
    }
    return true;
}

/// Hilbert system H x = b with b = H * ones, so the exact solution is all
/// ones. Entries 1/(i+j+1) are formed at the working precision.
template <typename V>
double solve_hilbert(int n) {
    std::vector<V> h;
    h.reserve(static_cast<std::size_t>(n) * n);
    std::vector<V> b(static_cast<std::size_t>(n), V(0.0));
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            const V entry = V(1.0) / V(static_cast<double>(i + j + 1));
            h.push_back(entry);
            b[i] += entry;
        }
    }
    std::vector<V> x;
    if (!solve<V>(h, b, n, x)) return std::numeric_limits<double>::infinity();
    double worst = 0.0;
    for (int i = 0; i < n; ++i) {
        double xi;
        if constexpr (std::is_same_v<V, double>) {
            xi = x[static_cast<std::size_t>(i)];
        } else {
            xi = x[static_cast<std::size_t>(i)].to_float();
        }
        worst = std::max(worst, std::fabs(xi - 1.0));
    }
    return worst;
}

}  // namespace

int main() {
    std::printf("Hilbert system H x = H*ones: worst |x_i - 1| by working precision\n");
    std::printf("(cond(H_n) ~ e^{3.5n}: n=13 is ~1e18, beyond double entirely)\n\n");
    std::printf("%4s %14s %14s %14s\n", "n", "double", "Float64x2", "Float64x4");
    for (int n : {6, 8, 10, 12, 14, 16, 20, 24}) {
        const double e1 = solve_hilbert<double>(n);
        const double e2 = solve_hilbert<mf::Float64x2>(n);
        const double e4 = solve_hilbert<mf::Float64x4>(n);
        std::printf("%4d %14.2e %14.2e %14.2e\n", n, e1, e2, e4);
    }
    std::printf("\nSame elimination code for all three columns; only the number type\n"
                "changed. Branch-free arithmetic keeps the extended columns fast.\n");
    return 0;
}
