// The paper's motivating scenario (§1): at condition numbers around 1e16 and
// beyond, double-precision results lose every correct digit. This example
// builds dot products with tunable condition number (the classic
// Ogita-Rump-Oishi generator) and compares plain double, double-double
// (Float64x2), and octuple precision (Float64x4) against the exact value.

#include <cmath>
#include <cstdio>
#include <random>
#include <span>
#include <vector>

#include "bigfloat/bigfloat.hpp"
#include "blas/kernels.hpp"
#include "mf/multifloats.hpp"

using mf::big::BigFloat;

namespace {

/// Ogita-Rump-Oishi GenDot: x, y (length 2n) whose exact dot product is O(1)
/// while the terms reach 2^b, giving condition number ~ 2^(2b).
void make_ill_conditioned(int n, double target_cond_log10, std::uint64_t seed,
                          std::vector<double>& x, std::vector<double>& y) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    const int b = static_cast<int>(target_cond_log10 * std::log2(10.0) / 2.0);
    x.clear();
    y.clear();
    // First half: both factors at exponents up to b (huge terms).
    BigFloat acc;
    for (int i = 0; i < n; ++i) {
        const int e = (i == 0) ? b : static_cast<int>(rng() % static_cast<unsigned>(b + 1));
        x.push_back(std::ldexp(u(rng), e / 2));
        y.push_back(std::ldexp(u(rng), e - e / 2));
        acc = acc + BigFloat::from_double(x.back()) * BigFloat::from_double(y.back());
    }
    // Second half: y_i chosen so the running sum collapses toward O(1).
    for (int i = 0; i < n; ++i) {
        const int e = b - b * (i + 1) / n;  // b -> 0
        x.push_back(std::ldexp(u(rng), e / 2) + 1.0);
        const double target = std::ldexp(u(rng), e - e / 2);
        // y_i = (target - acc) / x_i, rounded to double: the product then
        // cancels acc down to ~target.
        const BigFloat yi = BigFloat::div(
            BigFloat::from_double(target) - acc, BigFloat::from_double(x.back()), 53);
        y.push_back(yi.to_double());
        acc = acc + BigFloat::from_double(x.back()) * BigFloat::from_double(y.back());
    }
}

BigFloat exact_dot(std::span<const double> x, std::span<const double> y) {
    BigFloat acc;
    for (std::size_t i = 0; i < x.size(); ++i) {
        acc = acc + BigFloat::from_double(x[i]) * BigFloat::from_double(y[i]);
    }
    return acc;
}

template <typename V>
double computed_dot(std::span<const double> x, std::span<const double> y) {
    std::vector<V> xv(x.begin(), x.end());
    std::vector<V> yv(y.begin(), y.end());
    const V r = mf::blas::dot<V>(mf::blas::view(xv), mf::blas::view(yv));
    if constexpr (std::is_same_v<V, double>) {
        return r;
    } else {
        return r.to_float();
    }
}

double digits_correct(double got, const BigFloat& want) {
    const BigFloat err = (BigFloat::from_double(got) - want).abs();
    if (err.is_zero()) return 17.0;
    if (want.is_zero()) return 0.0;
    const double rel = std::abs(BigFloat::div(err, want.abs(), 64).to_double());
    return std::max(0.0, -std::log10(rel));
}

}  // namespace

int main() {
    std::printf("Ill-conditioned dot products: correct decimal digits vs condition number\n");
    std::printf("(the paper's kappa ~ 1e10..1e20 regime, §1)\n\n");
    std::printf("%12s %10s %14s %14s\n", "cond", "double", "Float64x2", "Float64x4");
    for (double c10 : {4.0, 8.0, 12.0, 16.0, 20.0, 24.0, 28.0, 32.0}) {
        std::vector<double> x;
        std::vector<double> y;
        make_ill_conditioned(200, c10, 7, x, y);
        const BigFloat want = exact_dot(x, y);
        const double d1 = digits_correct(computed_dot<double>(x, y), want);
        const double d2 = digits_correct(computed_dot<mf::Float64x2>(x, y), want);
        const double d4 = digits_correct(computed_dot<mf::Float64x4>(x, y), want);
        std::printf("%12.0e %10.1f %14.1f %14.1f\n", std::pow(10.0, c10), d1, d2, d4);
    }
    std::printf(
        "\n(digits are capped by the final rounding to double for display;\n"
        " the Float64x4 computation itself carries ~64 decimal digits)\n");
    return 0;
}
