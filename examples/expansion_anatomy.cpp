// Regenerates the paper's Figure 1: the anatomy of a floating-point
// expansion. A high-precision constant C is decomposed into machine-precision
// terms by round-and-subtract (Eq. 6); we show the limbs, the exponent gap
// between them, the nonoverlap invariant (Eq. 8), and the "extra implicit
// bit" the sign provides when a limb rounds up instead of down.

#include <cmath>
#include <cstdio>

#include "mf/multifloats.hpp"

using namespace mf;

namespace {

template <int N>
void dissect(const char* label, const MultiFloat<double, N>& x) {
    std::printf("%s = %s\n", label, to_string(x).c_str());
    for (int i = 0; i < N; ++i) {
        const double l = x.limb[i];
        if (l == 0.0) {
            std::printf("  limb[%d] = 0\n", i);
            continue;
        }
        std::printf("  limb[%d] = %+.17e   exponent %4d", i, l, std::ilogb(l));
        if (i > 0 && x.limb[i - 1] != 0.0) {
            const int gap = std::ilogb(x.limb[i - 1]) - std::ilogb(l);
            std::printf("   gap %3d bits (>= 53 required)", gap);
            if (std::signbit(l) != std::signbit(x.limb[i - 1])) {
                std::printf("  <- sign differs: previous limb rounded UP;\n"
                            "     this limb stores the complement (Figure 1's"
                            " extra implicit bit)");
            }
        }
        std::printf("\n");
    }
    std::printf("  strictly nonoverlapping (Eq. 8): %s\n\n",
                is_nonoverlapping(x) ? "yes" : "NO");
}

}  // namespace

int main() {
    std::printf("Figure 1: decomposing high-precision constants into "
                "nonoverlapping expansions\n\n");

    // pi: each limb extends the previous by 53+ bits.
    const auto pi = from_string<double, 4>(
        "3.14159265358979323846264338327950288419716939937510582097494459");
    dissect("pi", pi);

    // A constant engineered so the leading limb rounds UP: the second limb
    // comes out negative and its sign bit buys one extra bit of precision
    // (the final panel of Figure 1).
    const auto near_tie = from_string<double, 3>(
        "1.00000000000000011102230246251565404236316680908203125"
        "000000000000000000001");
    dissect("near-tie constant", near_tie);

    // The naive OVERLAPPING decomposition of the same constant wastes bits:
    // chop the mantissa without rounding, and adjacent terms share bit
    // positions (the middle panel of Figure 1).
    std::printf("overlapping (chopped) decomposition of pi, for contrast:\n");
    double rest = 3.14159265358979323846;
    double chopped[3];
    for (int i = 0; i < 3; ++i) {
        // Truncate to 40 bits instead of rounding to 53: deliberately wasteful.
        const int e = std::ilogb(rest);
        chopped[i] = std::ldexp(std::trunc(std::ldexp(rest, 40 - 1 - e)), e - 40 + 1);
        rest -= chopped[i];
    }
    for (int i = 0; i < 3; ++i) {
        std::printf("  term[%d] = %+.17e   exponent %4d%s\n", i, chopped[i],
                    std::ilogb(chopped[i]),
                    i > 0 ? "   gap 40 bits < 53: bits redundantly covered" : "");
    }
    MultiFloat<double, 3> overlapping({chopped[0], chopped[1], chopped[2]});
    std::printf("  strictly nonoverlapping (Eq. 8): %s\n",
                is_nonoverlapping(overlapping) ? "yes" : "NO (that's the point)");

    // Effective precision: N*53 + N - 1 bits (Eq. 7).
    std::printf("\neffective precision of the 4-term expansion: %d bits "
                "(4*53 + 3), ~%d decimal digits\n",
                MultiFloat<double, 4>::precision,
                std::numeric_limits<MultiFloat<double, 4>>::digits10);
    return 0;
}
