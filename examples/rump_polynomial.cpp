// Rump's infamous expression (1988):
//
//   f(a, b) = 333.75 b^6 + a^2 (11 a^2 b^2 - b^6 - 121 b^4 - 2) + 5.5 b^8
//             + a / (2b),   at a = 77617, b = 33096.
//
// The true value is -0.827396..., but the computation needs ~122 bits to
// resolve the cancellation: double returns garbage, and quadruple-class
// precision (Float64x2, 107 bits) famously returns +1.172603... -- all
// digits plausible, sign WRONG. Octuple precision (Float64x4) resolves it.

#include <cstdio>

#include "mf/multifloats.hpp"

namespace {

template <typename V>
V rump(const V& a, const V& b) {
    const V a2 = a * a;
    const V b2 = b * b;
    const V b4 = b2 * b2;
    const V b6 = b4 * b2;
    const V b8 = b4 * b4;
    return V(333.75) * b6 + a2 * (V(11.0) * a2 * b2 - b6 - V(121.0) * b4 - V(2.0)) +
           V(5.5) * b8 + a / (V(2.0) * b);
}

}  // namespace

int main() {
    std::printf("Rump's expression at (77617, 33096): the classic sign-flip bug\n\n");

    const double d = rump<double>(77617.0, 33096.0);
    std::printf("double:     %.17g   <- catastrophic cancellation, garbage\n", d);

    const auto q = rump<mf::Float64x2>(mf::Float64x2(77617.0), mf::Float64x2(33096.0));
    std::printf("Float64x2:  %s   <- the FAMOUS wrong answer: every digit\n"
                "            looks plausible and the sign is flipped (107 bits\n"
                "            is just short of the ~122 the cancellation needs)\n",
                mf::to_string(q, 20).c_str());

    const auto o = rump<mf::Float64x4>(mf::Float64x4(77617.0), mf::Float64x4(33096.0));
    std::printf("Float64x4:  %s   <- correct\n", mf::to_string(o, 40).c_str());

    std::printf("reference:  -8.2739605994682136814116509547981629e-1\n");

    std::printf("\nsign(f) via double:    %+d\n", d > 0 ? 1 : -1);
    std::printf("sign(f) via Float64x2: %+d   (wrong: needs more bits)\n",
                q > mf::Float64x2(0.0) ? 1 : -1);
    std::printf("sign(f) via Float64x4: %+d   (correct)\n",
                o > mf::Float64x4(0.0) ? 1 : -1);
    std::printf("\nMoral (paper §1): 'just use more precision' only works if the\n"
                "extended precision is cheap enough to use everywhere -- which is\n"
                "what branch-free expansion arithmetic provides.\n");
    return 0;
}
