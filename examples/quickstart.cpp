// Quickstart: the five-minute tour of the public API.
//
//   $ cmake --build build --target quickstart && ./build/examples/quickstart

#include <iostream>

#include "mf/multifloats.hpp"

int main() {
    using mf::Float64x4;  // MultiFloat<double, 4>: ~octuple precision (215 bits)

    // Construction: machine numbers embed exactly; decimal strings are
    // parsed with correct rounding at full extended precision.
    const Float64x4 a(2.0);
    const Float64x4 pi = mf::from_string<double, 4>(
        "3.14159265358979323846264338327950288419716939937510582097494459");

    // Arithmetic: +, -, *, /, sqrt -- all branch-free FPAN algorithms.
    const Float64x4 root2 = mf::sqrt(a);
    const Float64x4 circle = pi * root2 * root2;  // pi * (sqrt 2)^2 == 2 pi

    std::cout << "sqrt(2)       = " << root2 << '\n';
    std::cout << "pi*sqrt(2)^2  = " << circle << '\n';
    std::cout << "2*pi          = " << pi * Float64x4(2.0) << '\n';

    // The representation: a nonoverlapping expansion of four doubles whose
    // exact sum is the value. Each limb picks up where the previous one's
    // precision ends.
    std::cout << "\nlimbs of sqrt(2):\n";
    for (int i = 0; i < 4; ++i) {
        std::cout << "  limb[" << i << "] = " << root2.limb[i] << '\n';
    }

    // Precision: (2^0.5)^2 - 2 at octuple precision.
    const Float64x4 err = root2 * root2 - a;
    std::cout << "\nsqrt(2)^2 - 2 = " << err << "  (double would give "
              << (std::sqrt(2.0) * std::sqrt(2.0) - 2.0) << ")\n";

    // Exact comparisons, even between different representations.
    const Float64x4 third = Float64x4(1.0) / Float64x4(3.0);
    std::cout << "\n1/3 * 3 == 1 ? " << std::boolalpha
              << (third * Float64x4(3.0) == Float64x4(1.0)) << '\n';
    std::cout << "1/3 < 0.3334 ? " << (third < Float64x4(0.3334)) << '\n';

    // Interop with machine precision.
    const double approx = root2.to_float();
    std::cout << "\nto_float(sqrt 2) = " << approx << " (nearest double)\n";
    return 0;
}
