// Radix-2 FFT at extended precision: forward transform then inverse, and the
// round-trip error tells you how much precision the twiddle arithmetic ate.
// Spectral methods iterate FFTs thousands of times, so this error compounds
// -- one of the places the paper's "fast extended precision" pays off.
//
// The SAME templated FFT runs over std::complex<double> and over
// mf::Complex<double, 3> (sextuple precision). Twiddles are exp(-2 pi i k/len)
// with len a power of two, so k/len is an exact dyadic rational: the extended
// run feeds sin/cos an exact angle at full working precision.

#include <cmath>
#include <complex>
#include <cstdio>
#include <random>
#include <vector>

#include "mf/multifloats.hpp"

namespace {

std::complex<double> make_twiddle(int sign, double frac, std::complex<double>*) {
    const double ang = sign * 2.0 * 3.141592653589793 * frac;
    return {std::cos(ang), std::sin(ang)};
}

template <int N>
mf::Complex<double, N> make_twiddle(int sign, double frac, mf::Complex<double, N>*) {
    // frac = k / len is exact; the angle is formed at full working precision.
    const auto ang = mf::mul(mf::ldexp(mf::pi<double, N>(), 1),
                             mf::MultiFloat<double, N>(sign * frac));
    return {mf::cos(ang), mf::sin(ang)};
}

/// In-place iterative radix-2 DIT FFT; sign = -1 forward, +1 inverse.
template <typename C>
void fft(std::vector<C>& a, int sign) {
    const std::size_t n = a.size();
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1) j ^= bit;
        j ^= bit;
        if (i < j) std::swap(a[i], a[j]);
    }
    for (std::size_t len = 2; len <= n; len <<= 1) {
        for (std::size_t i = 0; i < n; i += len) {
            for (std::size_t k = 0; k < len / 2; ++k) {
                const double frac =
                    static_cast<double>(k) / static_cast<double>(len);  // exact
                const C w = make_twiddle(sign, frac, static_cast<C*>(nullptr));
                const C u = a[i + k];
                const C v = a[i + k + len / 2] * w;
                a[i + k] = u + v;
                a[i + k + len / 2] = u - v;
            }
        }
    }
}

}  // namespace

int main() {
    const std::size_t n = 256;
    std::mt19937_64 rng(7);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    std::vector<double> re(n);
    std::vector<double> im(n);
    for (std::size_t i = 0; i < n; ++i) {
        re[i] = u(rng);
        im[i] = u(rng);
    }

    // --- double ---------------------------------------------------------
    std::vector<std::complex<double>> zd(n);
    for (std::size_t i = 0; i < n; ++i) zd[i] = {re[i], im[i]};
    fft(zd, -1);
    fft(zd, +1);
    double worst_d = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const auto back = zd[i] / static_cast<double>(n);
        worst_d = std::max(worst_d, std::abs(back.real() - re[i]));
        worst_d = std::max(worst_d, std::abs(back.imag() - im[i]));
    }

    // --- Float64x3 (sextuple precision) ----------------------------------
    using C3 = mf::Complex<double, 3>;
    std::vector<C3> z3(n);
    for (std::size_t i = 0; i < n; ++i) z3[i] = C3(re[i], im[i]);
    fft(z3, -1);
    fft(z3, +1);
    const auto inv_n = mf::recip(mf::MultiFloat<double, 3>(static_cast<double>(n)));
    // Measure the residual IN the extended domain: inputs are exact there.
    double worst_3 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const auto dr = mf::sub(mf::mul(z3[i].re, inv_n),
                                mf::MultiFloat<double, 3>(re[i]));
        const auto di = mf::sub(mf::mul(z3[i].im, inv_n),
                                mf::MultiFloat<double, 3>(im[i]));
        worst_3 = std::max(worst_3, std::abs(dr.limb[0]));
        worst_3 = std::max(worst_3, std::abs(di.limb[0]));
    }

    std::printf("FFT -> IFFT round trip, n = %zu, worst componentwise residual:\n", n);
    std::printf("  std::complex<double>     : %.3e\n", worst_d);
    std::printf("  mf::Complex<double, 3>   : %.3e   (~%d extra decimal digits)\n",
                worst_3, static_cast<int>(std::log10(worst_d / worst_3)));
    std::printf("\nEvery twiddle, butterfly, and normalization above ran through the\n"
                "branch-free expansion kernels; the residual sits at the sextuple-\n"
                "precision noise floor instead of double's.\n");
    return worst_3 < worst_d * 1e-20 ? 0 : 1;
}
