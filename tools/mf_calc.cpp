// mf_calc: a tiny octuple-precision RPN calculator driving the public API --
// handy for poking at the library from the shell.
//
//   $ mf_calc 2 sqrt        -> 1.4142135623730950488016887242096980785696...
//   $ mf_calc 1 3 / 3 '*'   -> 1
//   $ mf_calc 1 1e-40 +     -> 1.0000000000000000000000000000000000000001e+0
//
// Tokens: decimal numbers, + - x / sqrt recip neg abs ('x' or '*' multiply).
// `--metrics PATH` ('-' = stdout) dumps the telemetry exposition at exit --
// the quickest way to see which kernels a given expression exercised.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "guard/guard.hpp"
#include "mf/multifloats.hpp"
#include "simd/backend.hpp"
#include "simd/dispatch.hpp"
#include "telemetry/telemetry.hpp"

using MF = mf::MultiFloat<double, 4>;

int main(int argc, char** argv) {
    // FP-environment sentinel (MF_GUARD_POLICY): a host shell that launched
    // us with FTZ or directed rounding would silently corrupt every digit
    // printed below.
    MF_GUARD_SENTINEL("tool.mf_calc");
    std::string metrics_path;
    std::vector<MF> stack;
    const auto pop = [&]() {
        if (stack.empty()) {
            std::fprintf(stderr, "stack underflow\n");
            std::exit(1);
        }
        MF v = stack.back();
        stack.pop_back();
        return v;
    };
    for (int i = 1; i < argc; ++i) {
        const std::string tok = argv[i];
        if (tok == "--metrics" && i + 1 < argc) {
            metrics_path = argv[++i];
        } else if (tok == "+") {
            const MF b = pop();
            const MF a = pop();
            stack.push_back(a + b);
        } else if (tok == "-") {
            const MF b = pop();
            const MF a = pop();
            stack.push_back(a - b);
        } else if (tok == "x" || tok == "*") {
            const MF b = pop();
            const MF a = pop();
            stack.push_back(a * b);
        } else if (tok == "/") {
            const MF b = pop();
            const MF a = pop();
            stack.push_back(a / b);
        } else if (tok == "sqrt") {
            stack.push_back(mf::sqrt(pop()));
        } else if (tok == "recip") {
            stack.push_back(mf::recip(pop()));
        } else if (tok == "neg") {
            stack.push_back(-pop());
        } else if (tok == "abs") {
            stack.push_back(mf::abs(pop()));
        } else {
            stack.push_back(mf::from_string<double, 4>(tok));
        }
    }
    if (stack.empty()) {
        // Banner only on the no-input path: tool_mf_calc_rpn anchors its
        // PASS_REGULAR_EXPRESSION at the start of RPN output.
        std::printf("usage: mf_calc <rpn tokens>   e.g.  mf_calc 2 sqrt\n");
        std::printf("SIMD backend: %s (pack width %d x double, %d x float)\n",
                    mf::simd::backend_name(mf::simd::active_backend()),
                    mf::simd::active_width<double>(),
                    mf::simd::active_width<float>());
        if (!metrics_path.empty()) mf::telemetry::write_exposition(metrics_path);
        return 0;
    }
    for (const MF& v : stack) {
        std::printf("%s\n", mf::to_string(v).c_str());
        std::printf("  limbs: [%.17g, %.17g, %.17g, %.17g]\n", v.limb[0], v.limb[1],
                    v.limb[2], v.limb[3]);
    }
    // Metric dump comes last so RPN output ordering (and the tests anchored
    // to it) is unchanged; the exit code never depends on the dump.
    if (!metrics_path.empty()) mf::telemetry::write_exposition(metrics_path);
    return 0;
}
