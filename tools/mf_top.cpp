// mf_top: the library's metric viewer -- `top` for mf::telemetry.
//
// Two modes:
//
//   mf_top [--n SIZE] [--reps R] [--metrics PATH] [--trace PATH]
//     Run a traced double x 4 tiled GEMM (the flagship multicore x SIMD
//     workload), then print a ranked counter table, write the Prometheus
//     exposition (--metrics, "-" = stdout, default) and the chrome://tracing
//     span JSON (--trace, default mf_top_trace.json). Load the trace into
//     chrome://tracing or https://ui.perfetto.dev to see the per-thread
//     row-tile timeline.
//
//   mf_top --from FILE
//     No workload: parse an exposition file previously dumped by another
//     tool (mf_fuzz/mf_calc --metrics) and render the same ranked table.
//
// Exit status is 0 unless an output file cannot be written.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "blas/planar.hpp"
#include "simd/backend.hpp"
#include "simd/tiling.hpp"
#include "telemetry/telemetry.hpp"

namespace {

struct Row {
    std::string name;
    std::uint64_t value;
};

void print_table(const char* heading, std::vector<Row> rows) {
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Row& a, const Row& b) { return a.value > b.value; });
    std::size_t w = std::strlen("metric");
    for (const Row& r : rows) w = std::max(w, r.name.size());
    std::printf("%s\n", heading);
    std::printf("  %-*s  %20s\n", static_cast<int>(w), "metric", "value");
    for (const Row& r : rows) {
        std::printf("  %-*s  %20" PRIu64 "\n", static_cast<int>(w), r.name.c_str(),
                    r.value);
    }
}

/// Parse `name value` sample lines out of Prometheus exposition text
/// (comment lines start with '#'; histogram series parse like counters,
/// which is exactly what a ranked table wants).
bool table_from_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "mf_top: cannot read %s\n", path.c_str());
        return false;
    }
    std::vector<Row> rows;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') continue;
        const std::size_t sp = line.rfind(' ');
        if (sp == std::string::npos || sp + 1 >= line.size()) continue;
        rows.push_back(Row{line.substr(0, sp),
                           std::strtoull(line.c_str() + sp + 1, nullptr, 10)});
    }
    print_table(("metrics from " + path).c_str(), std::move(rows));
    return true;
}

void usage() {
    std::printf(
        "usage: mf_top [--n SIZE] [--reps R] [--metrics PATH] [--trace PATH]\n"
        "       mf_top --from FILE\n"
        "  --n SIZE       GEMM dimension (n x n matrices, default 128)\n"
        "  --reps R       repeat the GEMM R times (default 1)\n"
        "  --metrics PATH write Prometheus exposition to PATH ('-' = stdout)\n"
        "  --trace PATH   write chrome://tracing span JSON to PATH\n"
        "                 (default mf_top_trace.json)\n"
        "  --from FILE    render a ranked table from an exposition file\n");
}

}  // namespace

int main(int argc, char** argv) {
    std::size_t n = 128;
    int reps = 1;
    std::string metrics_path = "-";
    std::string trace_path = "mf_top_trace.json";
    std::string from_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_val = i + 1 < argc;
        if (arg == "--n" && has_val) {
            n = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--reps" && has_val) {
            reps = std::atoi(argv[++i]);
        } else if (arg == "--metrics" && has_val) {
            metrics_path = argv[++i];
        } else if (arg == "--trace" && has_val) {
            trace_path = argv[++i];
        } else if (arg == "--from" && has_val) {
            from_path = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "mf_top: unknown argument '%s'\n", arg.c_str());
            usage();
            return 2;
        }
    }
    if (!from_path.empty()) return table_from_file(from_path) ? 0 : 1;
    if (n == 0) n = 1;

    using namespace mf;
    telemetry::Registry::instance().set_trace_enabled(true);

    // Deterministic well-scaled operands: no special values, every renorm
    // and dispatch counter below reflects the workload, not input luck.
    planar::Vector<double, 4> a(n * n), b(n * n), c(n * n);
    std::uint64_t s = 0x9e3779b97f4a7c15ull;
    const auto next = [&s] {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        return static_cast<double>(s >> 11) / 9007199254740992.0 - 0.5;
    };
    for (std::size_t i = 0; i < n * n; ++i) {
        a.set(i, MultiFloat<double, 4>(next()));
        b.set(i, MultiFloat<double, 4>(next()));
    }
    for (int r = 0; r < reps; ++r) {
        simd::gemm_tiled(planar::matrix_view(a, n, n), planar::matrix_view(b, n, n),
                         planar::matrix_view(c, n, n));
    }
    // Fold the result into a checksum so the whole computation is observable
    // (and undead-code-eliminable).
    double checksum = 0;
    for (std::size_t i = 0; i < n * n; ++i) checksum += c.get(i).limb[0];

    const telemetry::BuildInfo info = telemetry::build_info();
    const telemetry::Snapshot snap = telemetry::Registry::instance().snapshot();
    std::printf("mf_top: gemm double x 4, n=%zu, reps=%d, checksum %.6g\n", n, reps,
                checksum);
    std::printf("build: sha=%s threads=%d backend=%s\n", info.git_sha.c_str(),
                info.threads, info.backend.c_str());
    std::printf("spans recorded: %zu\n\n", snap.spans.size());
    std::vector<Row> rows;
    for (const telemetry::CounterSnap& cs : snap.counters) {
        rows.push_back(Row{cs.name, cs.value});
    }
    print_table("counters (ranked)", std::move(rows));
    std::printf("\n");

    bool ok = telemetry::write_chrome_trace(trace_path);
    std::fprintf(stderr, "mf_top: trace -> %s\n", trace_path.c_str());
    ok = telemetry::write_exposition(metrics_path) && ok;
    return ok ? 0 : 1;
}
