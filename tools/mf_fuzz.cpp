// mf_fuzz: oracle-driven differential fuzzing CLI for the mf::check layer.
//
// Hammers the extended-precision kernels with structure-aware adversarial
// inputs, checks every in-domain sample against the exact BigFloat oracle
// and the paper's error-bound table, diffs the scalar kernels against every
// compiled SIMD backend (and sequential GEMM against the tiled/parallel
// one), and emits CHECK_*.json telemetry in the BENCH_*.json style.
//
// Usage:
//   mf_fuzz [--op add|sub|mul|div|sqrt|all] [--type double|float|all]
//           [--limbs 2|3|4|all] [--iters K] [--seed S] [--backend NAME]
//           [--json PATH] [--corpus FILE] [--write-corpus FILE]
//           [--metrics PATH] [--bound-domain-only] [--no-diff] [--self-test]
//
// Iteration count resolution: --iters, else the MF_FUZZ_ITERS environment
// variable, else 20000. Exit status: 0 clean, 1 conformance/diff failure,
// 2 usage error.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "guard/guard.hpp"
#include "simd/simd.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace mf;
using namespace mf::check;

struct Options {
    std::string op = "all";
    std::string type = "all";
    std::string limbs = "all";
    std::uint64_t iters = 20000;
    std::uint64_t seed = 20250807;
    std::string backend;       // restrict the differ to one backend
    std::string json_path;     // write a ConformanceReport JSON
    std::string corpus_path;   // replay this corpus before random fuzzing
    std::string write_corpus;  // append worst counterexamples here
    std::string metrics_path;  // dump telemetry exposition at exit ('-' = stdout)
    bool full_domain = true;   // subnormals / near-overflow / specials on
    bool diff = true;
    bool self_test = false;
    // --inject env,alloc,thread: with --self-test, run the mf::guard
    // fault-injection matrix for the listed classes instead of the
    // broken-kernel conformance self-test.
    bool inject_env = false;
    bool inject_alloc = false;
    bool inject_thread = false;
    bool inject_any = false;
};

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--op add|sub|mul|div|sqrt|all] [--type double|float|all]\n"
                 "          [--limbs 2|3|4|all] [--iters K] [--seed S] [--backend NAME]\n"
                 "          [--json PATH] [--corpus FILE] [--write-corpus FILE]\n"
                 "          [--metrics PATH] [--bound-domain-only] [--no-diff] "
                 "[--self-test]\n"
                 "          [--inject env,alloc,thread]   (requires --self-test: "
                 "run the fault matrix)\n",
                 argv0);
    return 2;
}

bool parse_u64(const char* s, std::uint64_t* out) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (!end || *end != '\0' || end == s) return false;
    *out = v;
    return true;
}

/// Per-(op, type, N) seed: reproducible, decorrelated across runs.
std::uint64_t derive_seed(std::uint64_t seed, Op op, int type_idx, int n) {
    const std::uint64_t k =
        (static_cast<std::uint64_t>(op) * 2 + static_cast<std::uint64_t>(type_idx)) * 8 +
        static_cast<std::uint64_t>(n);
    return seed ^ (0x9E3779B97F4A7C15ull * (k + 1));
}

template <FloatingPoint T, int N>
void print_counterexample(const char* tag, Op op, const MultiFloat<T, N>& x,
                          const MultiFloat<T, N>& y) {
    std::printf("  %s: %s", tag, op_name(op));
    std::printf("  x =");
    for (int i = 0; i < N; ++i) std::printf(" %a", static_cast<double>(x.limb[i]));
    if (!op_is_unary(op)) {
        std::printf("  y =");
        for (int i = 0; i < N; ++i) std::printf(" %a", static_cast<double>(y.limb[i]));
    }
    std::printf("\n");
}

/// One conformance run: corpus replay first, then random fuzzing; on a bound
/// violation the worst counterexample is shrunk to a minimal witness.
template <FloatingPoint T, int N>
RunStats fuzz_one(Op op, const Options& opt, const std::vector<CorpusEntry>& corpus,
                  std::vector<CorpusEntry>* out_corpus) {
    GenConfig cfg;
    cfg.subnormals = opt.full_domain;
    cfg.near_overflow = opt.full_domain;
    cfg.specials = opt.full_domain;
    const int type_idx = sizeof(T) == 8 ? 0 : 1;
    Counterexample<T, N> worst;
    RunStats s = run_conformance<T, N>(op, derive_seed(opt.seed, op, type_idx, N),
                                       opt.iters, cfg, &worst);
    const std::uint64_t replayed = replay_corpus<T, N>(corpus, op, &s, &worst);
    if (replayed != 0) {
        std::printf("  [%s %s N=%d] corpus: replayed %" PRIu64 " entries\n", op_name(op),
                    s.type.c_str(), N, replayed);
    }
    if (s.violations != 0 && worst.valid) {
        print_counterexample("worst violation", op, worst.x, worst.y);
        const int bound = s.bound;
        const auto still_fails = [&](const MultiFloat<T, N>& x, const MultiFloat<T, N>& y) {
            if (!bound_domain(op, x, y)) return false;
            const MultiFloat<T, N> z = apply_op(op, x, y);
            const big::BigFloat want = oracle(op, x, y);
            if (want.is_zero()) return !exact(z).is_zero();
            return rel_err_log2(z, want) > -static_cast<double>(bound);
        };
        if (still_fails(worst.x, worst.y)) {
            auto [sx, sy] = shrink(worst.x, worst.y, still_fails);
            print_counterexample("shrunk to", op, sx, sy);
            if (out_corpus) out_corpus->push_back(make_entry(op, sx, sy));
        } else if (out_corpus) {
            out_corpus->push_back(make_entry(op, worst.x, worst.y));
        }
    } else if (out_corpus && worst.valid) {
        // No failure: seed the corpus with the worst-slack sample anyway, so
        // the hardest input this run found stays replayed forever.
        out_corpus->push_back(make_entry(op, worst.x, worst.y));
    }
    return s;
}

/// Fault-injection self-test: hand the runner a kernel that drops the last
/// limb of every result and verify (a) the violation is caught, and (b) the
/// shrinker reduces the counterexample to a minimal witness of <= N nonzero
/// limbs. Returns true on success.
template <FloatingPoint T, int N>
bool self_test_one() {
    using MFt = MultiFloat<T, N>;
    const auto broken = [](Op o, const MFt& x, const MFt& y) {
        MFt z = apply_op(o, x, y);
        z.limb[N - 1] = T(0);  // injected fault: ~2^-((N-1)p) relative error
        return z;
    };
    Counterexample<T, N> worst;
    RunStats s = run_conformance_with<T, N>(broken, Op::add, /*seed=*/42,
                                            /*iters=*/20000, GenConfig{}, &worst);
    const char* type = sizeof(T) == 8 ? "double" : "float";
    if (s.violations == 0 || !worst.valid) {
        std::fprintf(stderr, "self-test %s N=%d: injected fault NOT detected\n", type, N);
        return false;
    }
    const int bound = s.bound;
    const auto still_fails = [&](const MFt& x, const MFt& y) {
        if (!bound_domain(Op::add, x, y)) return false;
        const MFt z = broken(Op::add, x, y);
        const big::BigFloat want = oracle(Op::add, x, y);
        if (want.is_zero()) return !exact(z).is_zero();
        return rel_err_log2(z, want) > -static_cast<double>(bound);
    };
    if (!still_fails(worst.x, worst.y)) {
        std::fprintf(stderr, "self-test %s N=%d: worst counterexample does not replay\n",
                     type, N);
        return false;
    }
    auto [sx, sy] = shrink(worst.x, worst.y, still_fails);
    const int size = shrink_size(sx, sy);
    if (!still_fails(sx, sy) || !shrink_is_minimal(sx, sy, still_fails) || size > N) {
        std::fprintf(stderr, "self-test %s N=%d: shrink failed (size %d, minimal %d)\n",
                     type, N, size, int(shrink_is_minimal(sx, sy, still_fails)));
        return false;
    }
    std::printf("self-test %s N=%d: fault caught after %" PRIu64
                " violations, shrunk to %d-limb minimal witness\n",
                type, N, s.violations, size);
    print_counterexample("witness", Op::add, sx, sy);
    return true;
}

bool run_self_test() {
    bool ok = true;
    ok = self_test_one<double, 2>() && ok;
    ok = self_test_one<double, 3>() && ok;
    ok = self_test_one<double, 4>() && ok;
    ok = self_test_one<float, 2>() && ok;
    return ok;
}

/// Parse the --inject class list ("env,alloc,thread"). Returns false on an
/// unknown class name.
bool parse_inject(const char* v, Options* opt) {
    std::string s = v;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        const std::size_t comma = s.find(',', pos);
        const std::string cls =
            s.substr(pos, (comma == std::string::npos ? s.size() : comma) - pos);
        if (cls == "env") {
            opt->inject_env = true;
        } else if (cls == "alloc") {
            opt->inject_alloc = true;
        } else if (cls == "thread") {
            opt->inject_thread = true;
        } else {
            return false;
        }
        if (comma == std::string::npos) break;
        pos = comma + 1;
    }
    opt->inject_any = opt->inject_env || opt->inject_alloc || opt->inject_thread;
    return opt->inject_any;
}

/// Fault-injection matrix (--inject ... --self-test): every armed fault must
/// be detected or absorbed per the DESIGN.md §12 contract.
bool run_inject_matrix(const Options& opt) {
    RobustnessOptions ro;
    ro.env = opt.inject_env;
    ro.alloc = opt.inject_alloc;
    ro.thread = opt.inject_thread;
    ro.seed = opt.seed;
    std::printf("mf_fuzz: fault-injection matrix (env=%d alloc=%d thread=%d)\n",
                int(ro.env), int(ro.alloc), int(ro.thread));
    const std::vector<FaultCase> cases = run_fault_matrix(ro);
    print_fault_matrix(cases);
    const bool ok = fault_matrix_clean(cases);
    std::printf("mf_fuzz: fault matrix %s (%zu cases)\n",
                ok ? "clean" : "FAIL", cases.size());
    return ok;
}

bool want(const std::string& sel, const char* name) { return sel == "all" || sel == name; }

}  // namespace

int main(int argc, char** argv) {
    // A hostile FP environment would make every oracle comparison below
    // meaningless; the sentinel detects it up front (and under
    // MF_GUARD_POLICY=enforce pins the whole run to the nominal one).
    MF_GUARD_SENTINEL("tool.mf_fuzz");
    Options opt;
    if (const char* env = std::getenv("MF_FUZZ_ITERS")) {
        if (!parse_u64(env, &opt.iters)) {
            std::fprintf(stderr, "mf_fuzz: bad MF_FUZZ_ITERS '%s'\n", env);
            return 2;
        }
    }
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
        if (a == "--op") {
            const char* v = next();
            Op dummy;
            if (!v || (std::strcmp(v, "all") != 0 && !parse_op(v, &dummy)))
                return usage(argv[0]);
            opt.op = v;
        } else if (a == "--type") {
            const char* v = next();
            if (!v || (std::strcmp(v, "all") != 0 && std::strcmp(v, "double") != 0 &&
                       std::strcmp(v, "float") != 0))
                return usage(argv[0]);
            opt.type = v;
        } else if (a == "--limbs") {
            const char* v = next();
            if (!v || (std::strcmp(v, "all") != 0 && std::strcmp(v, "2") != 0 &&
                       std::strcmp(v, "3") != 0 && std::strcmp(v, "4") != 0))
                return usage(argv[0]);
            opt.limbs = v;
        } else if (a == "--iters") {
            const char* v = next();
            if (!v || !parse_u64(v, &opt.iters)) return usage(argv[0]);
        } else if (a == "--seed") {
            const char* v = next();
            if (!v || !parse_u64(v, &opt.seed)) return usage(argv[0]);
        } else if (a == "--backend") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            opt.backend = v;
        } else if (a == "--json") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            opt.json_path = v;
        } else if (a == "--corpus") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            opt.corpus_path = v;
        } else if (a == "--write-corpus") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            opt.write_corpus = v;
        } else if (a == "--metrics") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            opt.metrics_path = v;
        } else if (a == "--bound-domain-only") {
            opt.full_domain = false;
        } else if (a == "--no-diff") {
            opt.diff = false;
        } else if (a == "--self-test") {
            opt.self_test = true;
        } else if (a == "--inject") {
            const char* v = next();
            if (!v || !parse_inject(v, &opt)) return usage(argv[0]);
        } else {
            return usage(argv[0]);
        }
    }
    if (opt.inject_any && !opt.self_test) {
        std::fprintf(stderr, "mf_fuzz: --inject requires --self-test\n");
        return usage(argv[0]);
    }

    // Dump the process telemetry (op counts, renorm invocations, IEEE fixup
    // and non-finite events the fuzz run triggered) on every non-usage-error
    // exit path; the exit code never depends on the dump.
    const auto dump_metrics = [&opt] {
        if (!opt.metrics_path.empty()) telemetry::write_exposition(opt.metrics_path);
    };

    if (opt.self_test) {
        const bool ok = opt.inject_any ? run_inject_matrix(opt) : run_self_test();
        dump_metrics();
        return ok ? 0 : 1;
    }

    std::vector<CorpusEntry> corpus;
    if (!opt.corpus_path.empty() && !load_corpus(opt.corpus_path, &corpus)) {
        std::fprintf(stderr, "mf_fuzz: cannot read corpus %s\n", opt.corpus_path.c_str());
        return 2;
    }

    ConformanceReport report;
    report.seed = opt.seed;
    report.iters_per_run = opt.iters;
    report.backend = simd::backend_name(simd::active_backend());
    std::vector<CorpusEntry> found;
    std::vector<CorpusEntry>* out = opt.write_corpus.empty() ? nullptr : &found;

    std::printf("mf_fuzz: seed=%" PRIu64 " iters=%" PRIu64 " backend=%s domain=%s\n",
                opt.seed, opt.iters, report.backend.c_str(),
                opt.full_domain ? "full" : "bound-only");
    for (Op op : {Op::add, Op::sub, Op::mul, Op::div, Op::sqrt}) {
        if (!want(opt.op, op_name(op))) continue;
        if (want(opt.type, "double")) {
            if (want(opt.limbs, "2")) report.runs.push_back(fuzz_one<double, 2>(op, opt, corpus, out));
            if (want(opt.limbs, "3")) report.runs.push_back(fuzz_one<double, 3>(op, opt, corpus, out));
            if (want(opt.limbs, "4")) report.runs.push_back(fuzz_one<double, 4>(op, opt, corpus, out));
        }
        if (want(opt.type, "float")) {
            if (want(opt.limbs, "2")) report.runs.push_back(fuzz_one<float, 2>(op, opt, corpus, out));
            if (want(opt.limbs, "3")) report.runs.push_back(fuzz_one<float, 3>(op, opt, corpus, out));
            if (want(opt.limbs, "4")) report.runs.push_back(fuzz_one<float, 4>(op, opt, corpus, out));
        }
    }

    if (opt.diff) {
        GenConfig cfg;  // differ corpus stays bound-domain + specials: the
        cfg.specials = true;  // backends must agree bit-for-bit even on NaN/Inf
        const int rounds = static_cast<int>(std::min<std::uint64_t>(8, 2 + opt.iters / 8192));
        const std::vector<int> threads{1, 2, 7, 16};
        if (want(opt.type, "double")) {
            if (want(opt.limbs, "2")) {
                auto d = diff_backends<double, 2>(opt.seed, 192, rounds, cfg, opt.backend);
                report.diffs.insert(report.diffs.end(), d.begin(), d.end());
                auto g = diff_gemm_threads<double, 2>(opt.seed, 17, 9, 13, threads, cfg);
                report.diffs.insert(report.diffs.end(), g.begin(), g.end());
                // Packed engine: prime shapes + tiny blocks force edge
                // micro-tiles in every dimension.
                auto p = diff_gemm_packed<double, 2>(opt.seed, 17, 9, 13, threads,
                                                     cfg, mf::blas::BlockShape{8, 8, 16});
                report.diffs.insert(report.diffs.end(), p.begin(), p.end());
            }
            if (want(opt.limbs, "3")) {
                auto d = diff_backends<double, 3>(opt.seed, 192, rounds, cfg, opt.backend);
                report.diffs.insert(report.diffs.end(), d.begin(), d.end());
            }
            if (want(opt.limbs, "4")) {
                auto d = diff_backends<double, 4>(opt.seed, 192, rounds, cfg, opt.backend);
                report.diffs.insert(report.diffs.end(), d.begin(), d.end());
                auto g = diff_gemm_threads<double, 4>(opt.seed, 11, 7, 9, threads, cfg);
                report.diffs.insert(report.diffs.end(), g.begin(), g.end());
                auto p = diff_gemm_packed<double, 4>(opt.seed, 11, 7, 9, threads,
                                                     cfg, mf::blas::BlockShape{8, 8, 16});
                report.diffs.insert(report.diffs.end(), p.begin(), p.end());
            }
        }
        if (want(opt.type, "float")) {
            if (want(opt.limbs, "2")) {
                auto d = diff_backends<float, 2>(opt.seed, 192, rounds, cfg, opt.backend);
                report.diffs.insert(report.diffs.end(), d.begin(), d.end());
            }
            if (want(opt.limbs, "4")) {
                auto d = diff_backends<float, 4>(opt.seed, 192, rounds, cfg, opt.backend);
                report.diffs.insert(report.diffs.end(), d.begin(), d.end());
            }
        }
    }

    report.print();
    if (!opt.json_path.empty() && !report.write(opt.json_path)) return 2;
    if (out && !found.empty()) {
        if (!save_corpus(opt.write_corpus, found,
                         "worst-slack / shrunk-counterexample seeds from mf_fuzz")) {
            return 2;
        }
        std::printf("mf_fuzz: wrote %zu corpus entries to %s\n", found.size(),
                    opt.write_corpus.c_str());
    }
    dump_metrics();
    if (!report.clean()) {
        std::printf("mf_fuzz: FAIL\n");
        return 1;
    }
    std::printf("mf_fuzz: clean\n");
    return 0;
}
