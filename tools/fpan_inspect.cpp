// fpan_inspect: command-line companion to the paper's Figures 2-7.
//
//   fpan_inspect                 print all six networks (diagram, size/depth,
//                                paper comparison) and run the verification
//                                campaigns on each
//   fpan_inspect --trim          additionally run greedy gate minimization
//   fpan_inspect --search [it]   run the simulated-annealing search for the
//                                2-term addition network (paper §4.1)
//   fpan_inspect --exhaustive    run the heavyweight exhaustive campaigns

#include <cstdio>
#include <cstring>
#include <string>

#include "fpan/checker.hpp"
#include "fpan/library.hpp"
#include "fpan/search.hpp"

using namespace mf::fpan;

namespace {

struct PaperRef {
    const char* figure;
    int size;
    int depth;
};

PaperRef paper_ref(const std::string& name) {
    if (name == "add2") return {"Fig. 2", 6, 4};
    if (name == "add3") return {"Fig. 3", 14, 8};
    if (name == "add4") return {"Fig. 4", 26, 11};
    if (name == "mul2") return {"Fig. 5", 3, 3};
    if (name == "mul3") return {"Fig. 6", 12, 7};
    if (name == "mul4") return {"Fig. 7", 27, 10};
    return {"-", 0, 0};
}

void report(const Network& net, bool exhaustive) {
    const bool is_mul = net.name.rfind("mul", 0) == 0;
    const int n = net.name.back() - '0';
    const PaperRef ref = paper_ref(net.name);
    std::printf("%s\n", net.diagram().c_str());
    std::printf("  ours: size %d, depth %d | paper %s: size %d, depth %d\n",
                net.size(), net.depth(), ref.figure, ref.size, ref.depth);
    const int bound = is_mul ? paper_mul_bound_bits(n, 53) : paper_add_bound_bits(n, 53);
    const CheckResult r = is_mul ? check_mul_random(net, n, 100000, 2024, bound)
                                 : check_add_random(net, n, 100000, 2024, bound);
    std::printf("  randomized (p=53, %lld cases): %s, worst err 2^%.2f (bound 2^-%d)\n",
                r.cases, r.pass ? "PASS" : "FAIL", r.worst_err_log2, bound);
    if (exhaustive) {
        CheckResult e;
        if (n == 2) {
            e = is_mul ? check_mul_exhaustive(net, n, 3, 3, 5)
                       : check_add_exhaustive(net, n, 3, 3, 5);
        } else if (n == 3 && !is_mul) {
            e = check_add_exhaustive(net, n, 3, 1, 1);
        } else {
            std::printf("  exhaustive: skipped (state space too large for n=%d %s)\n",
                        n, is_mul ? "mul" : "add");
            std::printf("\n");
            return;
        }
        std::printf("  exhaustive (p=3, %lld cases): %s, worst overlap %d bits\n",
                    e.cases, e.pass ? "PASS" : "FAIL", e.worst_overlap_bits);
    }
    std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
    bool trim = false;
    bool exhaustive = false;
    long long search_iters = 0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--trim")) trim = true;
        if (!std::strcmp(argv[i], "--exhaustive")) exhaustive = true;
        if (!std::strcmp(argv[i], "--search")) {
            search_iters = 30000;
            if (i + 1 < argc && argv[i + 1][0] != '-') search_iters = std::atoll(argv[++i]);
        }
    }

    std::printf("=== FPAN library (reproductions of paper Figures 2-7) ===\n\n");
    for (const Network& net : paper_networks()) report(net, exhaustive);

    std::printf("=== Naive term-by-term sum (Eq. 9 strawman) ===\n");
    const Network naive = make_naive_add_network(2);
    const CheckResult bad = check_add_random(naive, 2, 2000, 5, paper_add_bound_bits(2, 53));
    std::printf("%s  -> %s after %lld cases (expected: FAIL; this is why FPANs exist)\n\n",
                naive.serialize().c_str(), bad.pass ? "PASS" : "FAIL", bad.cases);

    if (trim) {
        std::printf("=== Greedy gate minimization (paper search, deterministic half) ===\n");
        std::printf("Every removal must survive the verifier; the verifier's strength\n"
                    "decides how small you can (safely) go -- the paper's SMT lesson.\n\n");
        for (int n : {3, 4}) {
            TrimOptions o;
            o.n = n;
            o.exhaustive = n <= 3;
            const Network t = greedy_trim(make_add_network(n), o);
            std::printf("add%d: %d gates -> %d gates (paper: %d)\n  %s\n", n,
                        make_add_network(n).size(), t.size(), paper_ref("add" + std::to_string(n)).size,
                        t.serialize().c_str());
            // Adversarial audit with independent seeds: randomized-only
            // trimming (n = 4) overfits below the provable minimum, and an
            // independent campaign catches it.
            bool survived = true;
            for (std::uint64_t seed : {999ull, 777ull, 123456ull}) {
                const CheckResult audit =
                    check_add_random(t, n, 200000, seed, paper_add_bound_bits(n, 53));
                if (!audit.pass) {
                    std::printf("  !! independent seed %llu REFUTES the trimmed network "
                                "(overlap %d bits) -- overfit to the trim campaign\n",
                                static_cast<unsigned long long>(seed),
                                audit.worst_overlap_bits);
                    survived = false;
                    break;
                }
            }
            if (survived) {
                std::printf("  audit: survives 3x200k independent adversarial campaigns\n");
            }
            TrimOptions om;
            om.n = n;
            om.is_mul = true;
            om.exhaustive = false;
            const Network tm = greedy_trim(make_mul_network(n), om);
            std::printf("mul%d: %d gates -> %d gates (paper: %d)\n  %s\n", n,
                        make_mul_network(n).size(), tm.size(), paper_ref("mul" + std::to_string(n)).size,
                        tm.serialize().c_str());
        }
        std::printf("\nWider exhaustive windows certify larger minima: with a (2,2)-window\n"
                    "small-p exhaustion in the loop, add3 trims 18 -> 16 gates (certified\n"
                    "over 37M cases); the paper-size 14-gate candidate passes every\n"
                    "randomized campaign but fails the wider window -- only the paper's\n"
                    "SMT proof can settle it.\n\n");
    }

    if (search_iters > 0) {
        std::printf("=== Simulated-annealing search for add2 (paper §4.1) ===\n");
        SearchOptions opts;
        opts.n = 2;
        opts.iterations = search_iters;
        opts.seed = 2025;
        opts.progress = [](long long it, double cost, int size) {
            std::printf("  iter %lld: best cost %.1f (size %d)\n", it, cost, size);
        };
        const SearchOutcome out = anneal_add_network(opts);
        if (out.best) {
            std::printf("FOUND after %lld candidates: %s (size %d, depth %d; paper optimum: 6)\n",
                        out.candidates_checked, out.best->serialize().c_str(),
                        out.best->size(), out.best->depth());
        } else {
            std::printf("no passing network found in %lld iterations (try more)\n",
                        out.iterations);
        }
    }
    return 0;
}
